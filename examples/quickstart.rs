//! Quickstart — the paper's Figure 6 sample program, line for line.
//!
//! The original fragment creates a scope, registers the `elephants`
//! signal from §3.1 (an integer polled every 50 ms, displayed with
//! min 0 / max 40), starts polling, registers an I/O-driven
//! `read_program` callback that changes `elephants` when the client
//! sends control data, and enters `gtk_main()`.
//!
//! This example reproduces that structure on a virtual clock (so it
//! finishes instantly and deterministically), adds the second trace
//! visible in Figure 1, and writes the rendered widget to
//! `target/figures/figure1_widget.{ppm,svg}`.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use gctrl::{Oscillator, Waveform};
use gel::{Clock, MainLoop, TimeDelta, VirtualClock};
use gscope::{attach_scope, IntVar, Scope, SigConfig, SigSource};

fn main() {
    // int elephants;  (shared with the scope, §3.1)
    let elephants = IntVar::new(8);

    // scope = gtk_scope_new(name, width, height);
    let clock = VirtualClock::new();
    let mut scope = Scope::new("gscope", 300, 120, Arc::new(clock.clone()));

    // gtk_scope_signal_new(scope, elephants_sig);
    // GtkScopeSig { name: "elephants", INTEGER, min: 0, max: 40 }.
    scope
        .add_signal(
            "elephants",
            elephants.clone().into(),
            SigConfig::default()
                .with_range(0.0, 40.0)
                .with_show_value(true),
        )
        .expect("fresh signal name");

    // A second, FUNC-typed signal so the widget shows two traces like
    // Figure 1: a slow sine standing in for a load metric.
    let wave = Oscillator::new(Waveform::Sine, 0.2, 40.0).with_offset(50.0);
    let wave_clock = clock.clone();
    scope
        .add_signal(
            "load",
            SigSource::func(move || wave.sample(wave_clock.now().as_secs_f64())),
            SigConfig::default().with_show_value(true),
        )
        .expect("fresh signal name");

    // gtk_scope_set_polling_mode(scope, 50);  /* 50 ms */
    scope
        .set_polling_mode(TimeDelta::from_millis(50))
        .expect("valid period");
    // gtk_scope_start_polling(scope);
    scope.start();

    let scope = scope.into_shared();
    let mut ml = MainLoop::new(Arc::new(clock.clone()));
    attach_scope(&scope, &mut ml);

    // g_io_add_watch(..., read_program, fd): the paper's callback runs
    // when the client sends control data and flips `elephants`. Here
    // the "client" is a timer that sends one control message at t = 7 s.
    let elephants_ctl = elephants.clone();
    ml.add_oneshot(TimeDelta::from_secs(7), move |_tick| {
        // read_program(): control_info.elephants changed 8 -> 16.
        elephants_ctl.set(16);
        println!("read_program: elephants 8 -> 16");
    });

    // gtk_main();  — bounded here so the example terminates.
    let handle = ml.handle();
    ml.add_oneshot(TimeDelta::from_millis(14_950), move |_| handle.quit());
    ml.run();

    let guard = scope.lock();
    println!(
        "polled {} ticks over {}s of virtual time",
        guard.stats().ticks,
        clock.now().as_secs_f64()
    );
    println!(
        "elephants value readout: {:?}",
        guard.value_readout("elephants").unwrap()
    );

    let fb = grender::render_scope(&guard);
    fb.save_ppm("target/figures/figure1_widget.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/figure1_widget.svg",
        grender::render_scope_svg(&guard),
    )
    .expect("write figure");
    println!("wrote target/figures/figure1_widget.ppm and .svg");

    assert_eq!(guard.value_readout("elephants").unwrap(), Some(16.0));
    assert!(guard.stats().ticks >= 290);
}
