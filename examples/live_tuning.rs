//! Control parameters modifying a live system (§3.2, Figure 3) — one
//! of the paper's design goals: "Simplify modification of system
//! behavior in real-time."
//!
//! A PID controller drives a first-order thermal plant toward a
//! setpoint. The setpoint and the controller gains are exposed as
//! gscope control parameters; mid-run, "the user" (a timer standing in
//! for clicks in the Figure 3 window) retunes them through the
//! `ParamSet` API — the same programmatic interface the GUI uses — and
//! the scope shows the plant react instantly.
//!
//! Run with `cargo run --example live_tuning`. Writes
//! `target/figures/live_tuning.{ppm,svg}`.

use std::sync::Arc;

use gctrl::{Pid, PidConfig};
use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{FloatVar, ParamSet, ParamValue, Parameter, Scope, SigConfig};

fn main() {
    // The tunable state, shared between the "GUI" and the control loop.
    let setpoint = FloatVar::new(40.0);
    let kp = FloatVar::new(0.5);
    let ki = FloatVar::new(0.1);

    // The Figure 3 window contents (§3.2): read/write parameters with
    // ranges the GUI spinners respect.
    let params = ParamSet::new();
    params
        .add(Parameter::float("setpoint", setpoint.clone(), 0.0, 100.0))
        .expect("fresh parameter");
    params
        .add(Parameter::float("kp", kp.clone(), 0.0, 10.0))
        .expect("fresh parameter");
    params
        .add(Parameter::float("ki", ki.clone(), 0.0, 5.0))
        .expect("fresh parameter");
    params.on_change(|name, value| {
        println!("parameter window: {name} set to {:.2}", value.as_f64());
    });

    // Scope over the plant output and the setpoint.
    let clock = VirtualClock::new();
    let mut scope = Scope::new("PID tuning", 400, 140, Arc::new(clock.clone()));
    let temp = FloatVar::new(20.0);
    scope
        .add_signal(
            "temp",
            temp.clone().into(),
            SigConfig::default().with_show_value(true),
        )
        .expect("fresh signal");
    scope
        .add_signal(
            "setpoint",
            setpoint.clone().into(),
            SigConfig::default().with_color(gscope::Color::GRAY),
        )
        .expect("fresh signal");
    let period = TimeDelta::from_millis(50);
    scope.set_polling_mode(period).expect("valid period");
    scope.start();

    // The plant: y' = (u - (y - ambient)) / tau, run at 1 kHz.
    let mut y = 20.0f64;
    let mut pid = Pid::new(PidConfig {
        kp: kp.get(),
        ki: ki.get(),
        kd: 0.0,
        output_limit: 100.0,
    });

    let horizon = TimeStamp::from_secs(40);
    let mut t = TimeStamp::ZERO;
    let mut changed_setpoint = false;
    let mut retuned = false;
    while t < horizon {
        t += period;
        // Mid-run parameter changes through the ParamSet — exactly what
        // the Figure 3 window does on click.
        if !changed_setpoint && t >= TimeStamp::from_secs(15) {
            params
                .set("setpoint", ParamValue::Float(70.0))
                .expect("in range");
            changed_setpoint = true;
        }
        if !retuned && t >= TimeStamp::from_secs(25) {
            params.set("kp", ParamValue::Float(2.5)).expect("in range");
            params.set("ki", ParamValue::Float(0.8)).expect("in range");
            retuned = true;
        }
        // Controller + plant at 1 kHz between scope ticks, picking up
        // the shared gains each step (live retuning).
        let dt = 0.001;
        for _ in 0..(period.as_millis() as usize) {
            let mut cfg = pid.config();
            if (cfg.kp - kp.get()).abs() > 1e-12 || (cfg.ki - ki.get()).abs() > 1e-12 {
                cfg.kp = kp.get();
                cfg.ki = ki.get();
                pid = Pid::new(cfg);
            }
            let u = pid.update(setpoint.get() - y, dt).max(0.0);
            y += (u - (y - 20.0) * 0.5) * dt / 2.0;
        }
        temp.set(y);
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    println!(
        "final: temp={:.2} setpoint={:.1} (kp={}, ki={})",
        y,
        setpoint.get(),
        kp.get(),
        ki.get()
    );

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/live_tuning.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/live_tuning.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");
    // Also regenerate the Figure 3 window with the *retuned* values.
    grender::render_param_window(&params)
        .save_ppm("target/figures/live_tuning_params.ppm")
        .expect("write figure");
    println!("wrote target/figures/live_tuning.{{ppm,svg}} and live_tuning_params.ppm");

    // The retuned controller must have pulled the plant to the new
    // setpoint.
    assert!((y - 70.0).abs() < 3.0, "plant at {y}, wanted ~70");
    assert_eq!(params.get("kp").unwrap(), ParamValue::Float(2.5));
}
