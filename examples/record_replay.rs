//! Recording and replay (§3.1, §3.3): "the polled data can be recorded
//! to a file" and "in the playback mode, data is obtained from a file
//! and displayed".
//!
//! A live scope polls two signals while recording tuples; a second
//! scope then replays the recording and the example verifies the
//! replayed traces match the originals sample for sample — including
//! the §3.3 pixel-spacing rule when replaying at a different period.
//!
//! Run with `cargo run --example record_replay`. Writes
//! `target/figures/replay_scope.{ppm,svg}` and the capture file
//! `target/figures/capture.tuples`.

use std::sync::Arc;

use gctrl::{Oscillator, Waveform};
use gel::{Clock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Scope, SigConfig, SigSource, TupleReader};

fn tick(scope: &mut Scope, clock: &VirtualClock, t: TimeStamp) {
    clock.set(t);
    scope.tick(&TickInfo {
        now: t,
        scheduled: t,
        missed: 0,
    });
}

fn main() {
    let clock = VirtualClock::new();
    let mut live = Scope::new("live", 200, 100, Arc::new(clock.clone()));
    let saw = Oscillator::new(Waveform::Sawtooth, 0.5, 40.0).with_offset(50.0);
    let saw_clock = clock.clone();
    live.add_signal(
        "saw",
        SigSource::func(move || saw.sample(saw_clock.now().as_secs_f64())),
        SigConfig::default(),
    )
    .expect("fresh signal");
    let tri = Oscillator::new(Waveform::Triangle, 0.25, 30.0).with_offset(50.0);
    let tri_clock = clock.clone();
    live.add_signal(
        "tri",
        SigSource::func(move || tri.sample(tri_clock.now().as_secs_f64())),
        SigConfig::default(),
    )
    .expect("fresh signal");

    let period = TimeDelta::from_millis(50);
    live.set_polling_mode(period).expect("valid period");
    live.start();

    // Record into a shared buffer we keep a handle to (a File works
    // the same way; the shared Vec keeps the example self-checking).
    #[derive(Clone, Default)]
    struct SharedSink(Arc<parking_lot::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let sink = SharedSink::default();
    live.start_recording(sink.clone());

    let mut t = TimeStamp::ZERO;
    for _ in 0..150 {
        t += period;
        tick(&mut live, &clock, t);
    }
    live.stop_recording().expect("recording was active");
    let bytes = sink.0.lock().clone();
    std::fs::create_dir_all("target/figures").expect("mkdir");
    std::fs::write("target/figures/capture.tuples", &bytes).expect("write capture");
    println!(
        "recorded {} tuples ({} bytes) to target/figures/capture.tuples",
        live.stats().recorded_tuples,
        bytes.len()
    );

    // Replay into a fresh scope (§3.1 playback mode). Signals are
    // auto-created from the stream.
    let tuples = TupleReader::new(bytes.as_slice())
        .read_all()
        .expect("well-formed capture");
    let replay_clock = VirtualClock::new();
    let mut replay = Scope::new("replay", 200, 100, Arc::new(replay_clock.clone()));
    replay.set_period(period).expect("valid period");
    replay
        .set_playback_mode(tuples.clone())
        .expect("ordered tuples");
    replay.start();
    let mut rt = TimeStamp::ZERO;
    for _ in 0..150 {
        rt += period;
        tick(&mut replay, &replay_clock, rt);
    }

    // The replayed traces must match the live ones exactly.
    for name in ["saw", "tri"] {
        let a = live.display_cols(name);
        let b = replay.display_cols(name);
        assert_eq!(a.len(), b.len(), "{name}: window lengths differ");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let (Some(x), Some(y)) = (x, y) else {
                panic!("{name}[{i}]: gap mismatch {x:?} vs {y:?}");
            };
            assert!((x - y).abs() < 1e-9, "{name}[{i}]: {x} != {y}");
        }
    }
    println!("replayed traces match the live capture exactly");

    // §3.3's spacing rule: replaying 50 ms data at a 100 ms period
    // shows points half as far apart — the same 7.5 s of signal covers
    // half the pixels.
    let fast_clock = VirtualClock::new();
    let mut fast = Scope::new("replay-2x", 200, 100, Arc::new(fast_clock.clone()));
    fast.set_period(TimeDelta::from_millis(100))
        .expect("valid period");
    fast.set_playback_mode(tuples).expect("ordered tuples");
    fast.start();
    let mut ft = TimeStamp::ZERO;
    for _ in 0..150 {
        ft += TimeDelta::from_millis(100);
        tick(&mut fast, &fast_clock, ft);
    }
    let full = live.display_cols("saw").len();
    let half = fast
        .display_cols("saw")
        .iter()
        .filter(|v| v.is_some())
        .count();
    println!("50ms replay fills {full} columns; 100ms replay fills {half}");
    assert!(
        (half as i64 - (full / 2) as i64).abs() <= 2,
        "double period -> half the pixels ({full} vs {half})"
    );

    let fb = grender::render_scope(&replay);
    fb.save_ppm("target/figures/replay_scope.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/replay_scope.svg",
        grender::render_scope_svg(&replay),
    )
    .expect("write figure");
    println!("wrote target/figures/replay_scope.{{ppm,svg}}");
}
