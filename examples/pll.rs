//! Visualizing a software phase-locked loop — the paper's "various
//! control algorithms such as a software implementation of a
//! phase-lock loop" (§1).
//!
//! A PLL centered at 50 Hz chases an input tone that starts at 50 Hz,
//! steps to 54 Hz, and carries additive noise. The scope watches the
//! loop's internals: frequency estimate, phase error (low-pass filtered
//! with the §3.1 α filter to tame the ripple), and the lock flag. A
//! second scope view renders the input's frequency-domain display
//! (§3.1's FFT view).
//!
//! Run with `cargo run --example pll`. Writes
//! `target/figures/pll_lock.{ppm,svg}` and `pll_spectrum.ppm`.

use std::sync::Arc;

use gctrl::{Noise, Oscillator, Pll, PllConfig, Waveform};
use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{BoolVar, FloatVar, Scope, SigConfig, SigSource};

fn main() {
    let mut pll = Pll::new(PllConfig {
        center_freq: 50.0,
        bandwidth: 4.0,
        ..Default::default()
    });
    let mut noise = Noise::new(42, 0.15, 0.0);

    let clock = VirtualClock::new();
    let mut scope = Scope::new("software PLL", 400, 140, Arc::new(clock.clone()));
    let freq = FloatVar::new(50.0);
    let err = FloatVar::new(0.0);
    let locked = BoolVar::new(false);
    let input_var = FloatVar::new(0.0);
    scope
        .add_signal(
            "freq.hz",
            freq.clone().into(),
            SigConfig::default()
                .with_range(45.0, 60.0)
                .with_show_value(true),
        )
        .expect("fresh signal");
    scope
        .add_signal(
            "phase.err",
            err.clone().into(),
            // §3.1's low-pass filter knocks the detector ripple down.
            SigConfig::default().with_range(-1.0, 1.0).with_filter(0.8),
        )
        .expect("fresh signal");
    scope
        .add_signal(
            "locked",
            SigSource::Bool(locked.clone()),
            SigConfig::default()
                .with_range(0.0, 1.2)
                .with_show_value(true),
        )
        .expect("fresh signal");
    scope
        .add_signal(
            "input",
            input_var.clone().into(),
            SigConfig::default().with_range(-1.5, 1.5),
        )
        .expect("fresh signal");

    let period = TimeDelta::from_millis(25);
    scope.set_polling_mode(period).expect("valid period");
    scope.start();

    // The loop itself runs at 2 kHz; the scope samples its state at
    // 40 Hz — the §4.5 point that scope polling is far slower than the
    // signal computation it observes.
    let dt = 0.0005;
    let horizon = TimeStamp::from_secs(10);
    let mut t = TimeStamp::ZERO;
    let mut lock_events = 0u32;
    let mut was_locked = false;
    while t < horizon {
        t += period;
        let step_freq = if t < TimeStamp::from_secs(5) {
            50.0
        } else {
            54.0
        };
        let osc = Oscillator::new(Waveform::Sine, step_freq, 1.0);
        let steps = (period.as_secs_f64() / dt) as usize;
        let t0 = t.as_secs_f64() - period.as_secs_f64();
        let mut out = pll.step(osc.sample(t0) + noise.next(), dt);
        for i in 1..steps {
            out = pll.step(osc.sample(t0 + i as f64 * dt) + noise.next(), dt);
        }
        freq.set(out.frequency);
        err.set(out.phase_error);
        input_var.set(osc.sample(t.as_secs_f64()));
        locked.set(out.locked);
        if out.locked && !was_locked {
            lock_events += 1;
            println!(
                "t={:.2}s: acquired lock at {:.2} Hz",
                t.as_secs_f64(),
                out.frequency
            );
        }
        was_locked = out.locked;
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    println!(
        "final frequency estimate {:.2} Hz (input ended at 54 Hz), locked: {}",
        pll.frequency(),
        pll.is_locked()
    );

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/pll_lock.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/pll_lock.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");

    // Frequency-domain view of the input trace (§3.1).
    let spec = grender::render_spectrum(&scope, "input", 128, gdsp::SpectrumConfig::default())
        .expect("spectrum renders");
    spec.save_ppm("target/figures/pll_spectrum.ppm")
        .expect("write figure");
    println!("wrote target/figures/pll_lock.{{ppm,svg}} and pll_spectrum.ppm");

    assert!((pll.frequency() - 54.0).abs() < 1.0, "PLL tracked the step");
    assert!(lock_events >= 1, "lock acquired at least once");
}
