//! Visualizing a proportion-period CPU scheduler — the paper's first
//! named application (§1): "we use gscope to view dynamically changing
//! process proportions as assigned by a CPU proportion-period
//! scheduler".
//!
//! Three real-rate tasks (video, audio, network) run under the
//! feedback-driven allocator from `rrsched`. As §4.2 prescribes for
//! periodic signals, the scope polling period is set equal to the task
//! period, "since the signal is held between process periods". Midway
//! through, the video consumer's rate doubles (a user switches to a
//! higher frame rate) and the proportions visibly re-converge.
//!
//! Run with `cargo run --example scheduler`. Writes
//! `target/figures/scheduler_proportions.{ppm,svg}`.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{FloatVar, Scope, SigConfig};
use rrsched::{SchedConfig, Scheduler, Task};

fn main() {
    let mut sched = Scheduler::new(SchedConfig::default());
    // Video: 30 items/s × 10 ms CPU each → needs 30%.
    let video = sched.add_task(Task::new(
        "video",
        TimeDelta::from_millis(100),
        0.010,
        30.0,
        30.0,
    ));
    // Audio: 100 items/s × 0.5 ms each → needs 5%.
    let audio = sched.add_task(Task::new(
        "audio",
        TimeDelta::from_millis(100),
        0.0005,
        100.0,
        50.0,
    ));
    // Network: 200 packets/s × 1 ms each → needs 20%.
    let net = sched.add_task(Task::new(
        "net",
        TimeDelta::from_millis(100),
        0.001,
        200.0,
        100.0,
    ));

    let clock = VirtualClock::new();
    let mut scope = Scope::new("rrsched proportions", 400, 140, Arc::new(clock.clone()));
    // Proportions displayed as percent: the 0-100 y ruler is exact.
    let vars: Vec<(usize, FloatVar, &str)> = vec![
        (video, FloatVar::new(0.0), "video"),
        (audio, FloatVar::new(0.0), "audio"),
        (net, FloatVar::new(0.0), "net"),
    ];
    for (_, var, name) in &vars {
        scope
            .add_signal(
                format!("{name}.prop"),
                var.clone().into(),
                SigConfig::default().with_show_value(true),
            )
            .expect("fresh signal");
    }
    let fill_var = FloatVar::new(50.0);
    scope
        .add_signal(
            "video.fill",
            fill_var.clone().into(),
            SigConfig::default().with_filter(0.3),
        )
        .expect("fresh signal");

    // §4.2: scope polling period == process period (100 ms).
    let period = TimeDelta::from_millis(100);
    scope.set_polling_mode(period).expect("valid period");
    scope.start();

    let horizon = TimeStamp::from_secs(40);
    let mut t = TimeStamp::ZERO;
    let mut switched = false;
    while t < horizon {
        t += period;
        sched.run_until(t);
        if !switched && t >= TimeStamp::from_secs(20) {
            // The user doubles the video frame rate.
            sched.task_mut(video).set_consume_rate(60.0);
            switched = true;
            println!("t=20s: video rate 30 -> 60 items/s");
        }
        for (id, var, _) in &vars {
            var.set(sched.task(*id).proportion() * 100.0);
        }
        fill_var.set(sched.task(video).fill() * 100.0);
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    for (id, _, name) in &vars {
        println!(
            "{name}: proportion {:.1}% (equilibrium {:.1}%), fill {:.2}, underruns {}",
            sched.task(*id).proportion() * 100.0,
            sched.task(*id).equilibrium_proportion() * 100.0,
            sched.task(*id).fill(),
            sched.task(*id).underruns(),
        );
    }

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/scheduler_proportions.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/scheduler_proportions.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");
    println!("wrote target/figures/scheduler_proportions.{{ppm,svg}}");

    // The allocator found each task's need, and the doubled video rate
    // roughly doubled its share.
    let vp = sched.task(video).proportion();
    assert!((vp - 0.6).abs() < 0.1, "video proportion {vp}");
    assert!(sched.total_proportion() <= 0.96);
}
