//! A quality-adaptive streaming media player — the paper's second
//! named application (§1): gscope was used for "visualizing and
//! debugging ... a quality-adaptive streaming media player", citing
//! Krasic et al.'s *The Case for Streaming Multimedia with TCP*.
//!
//! The player streams video over a simulated TCP connection that shares
//! a bottleneck with background elephants. Its adaptation loop — pick
//! the highest quality level the measured goodput sustains, bounded by
//! playout-buffer hysteresis — is exactly the kind of time-sensitive
//! feedback the scope exists to make visible: when background load
//! arrives mid-run, the throughput trace sags, the quality staircase
//! steps down, and the buffer absorbs the transient without a stall.
//!
//! Scope signals: playout buffer (seconds), quality level, goodput
//! (Mbit/s via §4.2 Rate aggregation), and the stream's CWND.
//!
//! Run with `cargo run --example media_player`. Writes
//! `target/figures/media_player.{ppm,svg}`.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, FloatVar, IntVar, Scope, SigConfig, SigSource};
use netsim::{NetConfig, Network, QueueKind};

/// Encoded quality levels in Mbit/s (SPEG-style scalable layers).
const LEVELS_MBPS: [f64; 5] = [0.3, 0.8, 1.5, 2.5, 4.0];
/// Playout-buffer hysteresis: drop below, raise above (seconds).
const LOW_WATER_S: f64 = 2.0;
const HIGH_WATER_S: f64 = 6.0;
/// Background congestion arrives here.
const LOAD_AT_S: u64 = 25;
const DURATION_S: u64 = 60;

struct Player {
    /// Playout buffer in seconds of video.
    buffer_s: f64,
    /// Current quality level index.
    level: usize,
    /// Rebuffering events.
    stalls: u64,
    /// Bytes received but not yet converted to buffered seconds.
    pending_bits: f64,
}

impl Player {
    fn new() -> Self {
        Player {
            buffer_s: 0.0,
            level: 2,
            stalls: 0,
            pending_bits: 0.0,
        }
    }

    /// Feeds `bits` received this interval and plays `dt` seconds.
    fn advance(&mut self, bits: f64, dt: f64) {
        self.pending_bits += bits;
        let rate = LEVELS_MBPS[self.level] * 1e6;
        // Received bits become buffered playback time at the current
        // encoding rate.
        self.buffer_s += self.pending_bits / rate;
        self.pending_bits = 0.0;
        // Playback drains the buffer (only while it has content).
        if self.buffer_s > 0.0 {
            let played = dt.min(self.buffer_s);
            if played < dt {
                self.stalls += 1;
            }
            self.buffer_s -= played;
        } else {
            self.stalls += 1;
        }
        self.buffer_s = self.buffer_s.min(12.0);
    }

    /// The adaptation decision, once per second.
    fn adapt(&mut self, goodput_bps: f64) {
        let sustainable = LEVELS_MBPS
            .iter()
            .rposition(|&mbps| mbps * 1e6 < goodput_bps * 0.85)
            .unwrap_or(0);
        if self.buffer_s < LOW_WATER_S {
            // Draining: step down promptly.
            self.level = self.level.saturating_sub(1).min(sustainable);
        } else if self.buffer_s > HIGH_WATER_S && sustainable > self.level {
            // Comfortable: step up one level at a time.
            self.level += 1;
        } else {
            self.level = self.level.min(sustainable);
        }
    }
}

fn main() {
    let mut net = Network::new(NetConfig {
        queue: QueueKind::DropTail { capacity: 50 },
        ..NetConfig::default()
    });
    // The media stream (SACK, as a modern streaming stack would use).
    let stream = net.add_tcp_flow_with(false, true);
    net.start_flow(stream);
    // Background elephants, idle until LOAD_AT_S.
    let elephants: Vec<usize> = (0..6).map(|_| net.add_tcp_flow(false)).collect();

    let clock = VirtualClock::new();
    let mut scope = Scope::new("media player", 300, 140, Arc::new(clock.clone()));
    let buffer_var = FloatVar::new(0.0);
    let quality_var = IntVar::new(2);
    scope
        .add_signal(
            "buffer.s",
            buffer_var.clone().into(),
            SigConfig::default()
                .with_range(0.0, 12.0)
                .with_show_value(true),
        )
        .expect("fresh signal");
    scope
        .add_signal(
            "quality",
            quality_var.clone().into(),
            SigConfig::default()
                .with_range(0.0, 4.5)
                .with_show_value(true),
        )
        .expect("fresh signal");
    // Goodput via Rate aggregation (§4.2): the player pushes one event
    // per delivered packet interval carrying the bit count.
    scope
        .add_signal(
            "goodput.mbps",
            SigSource::Events,
            SigConfig::default()
                .with_range(0.0, 12.0)
                .with_aggregation(Aggregation::SampleHold),
        )
        .expect("fresh signal");
    let goodput_sink = scope.event_sink("goodput.mbps").expect("exists");
    let cwnd_var = FloatVar::new(2.0);
    scope
        .add_signal(
            "cwnd",
            cwnd_var.clone().into(),
            SigConfig::default().with_range(0.0, 64.0),
        )
        .expect("fresh signal");
    let period = TimeDelta::from_millis(200);
    scope.set_polling_mode(period).expect("valid period");
    scope.start();

    let mut player = Player::new();
    let mut last_delivered = 0u64;
    let bits_per_packet = net.config().packet_size as f64 * 8.0;
    let mut loaded = false;
    let mut t = TimeStamp::ZERO;
    let mut min_quality_after_load = usize::MAX;
    let mut tick_count = 0u64;
    while t < TimeStamp::from_secs(DURATION_S) {
        t += period;
        if !loaded && t >= TimeStamp::from_secs(LOAD_AT_S) {
            for (i, &e) in elephants.iter().enumerate() {
                net.start_flow_at(e, t + TimeDelta::from_millis(100 * i as u64));
            }
            loaded = true;
            println!("t={LOAD_AT_S}s: 6 background elephants join the bottleneck");
        }
        net.run_until(t);
        let delivered = net.flow_delivered(stream);
        let new_bits = (delivered - last_delivered) as f64 * bits_per_packet;
        last_delivered = delivered;
        let goodput_bps = new_bits / period.as_secs_f64();
        player.advance(new_bits, period.as_secs_f64());
        tick_count += 1;
        if tick_count.is_multiple_of(5) {
            // Adapt once per simulated second.
            player.adapt(goodput_bps);
        }
        if loaded {
            min_quality_after_load = min_quality_after_load.min(player.level);
        }
        buffer_var.set(player.buffer_s);
        quality_var.set(player.level as i64);
        goodput_sink.push(goodput_bps / 1e6);
        cwnd_var.set(net.cwnd(stream));
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    println!(
        "end of stream: quality level {}, buffer {:.1}s, stalls {} (startup fill excluded: {})",
        player.level,
        player.buffer_s,
        player.stalls,
        player.stalls.saturating_sub(5),
    );
    println!(
        "quality floor under load: level {min_quality_after_load} \
         (started at 2, peak 4)"
    );

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/media_player.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/media_player.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");
    println!("wrote target/figures/media_player.{{ppm,svg}}");

    // The adaptive behaviour the scope makes visible, asserted: the
    // player adapts down under load instead of stalling.
    assert!(
        min_quality_after_load < 4,
        "background load must force an adaptation"
    );
    assert!(
        player.stalls <= 6,
        "adaptation should avoid mid-stream rebuffering (stalls {})",
        player.stalls
    );
    assert!(player.buffer_s > 0.5, "buffer recovered by end of run");
}
