//! Recreating the paper's debugging anecdote (§2): "a TCP variant that
//! we have implemented for low-latency TCP streaming initially showed
//! significant unexpected timeouts that we finally traced to an
//! interaction with the SACK implementation."
//!
//! The scope is the debugging instrument: a `timeouts` counter signal
//! (§4.2 event aggregation over timeout events) and the probe flow's
//! CWND are displayed for two variants of the same workload — one with
//! scoreboard (SACK) recovery, one degraded to Reno go-back-N. The
//! timeout staircase that is flat for SACK and climbing for Reno is
//! precisely the visual cue the authors describe following.
//!
//! Run with `cargo run --example sack_debugging`. Writes
//! `target/figures/sack_debug_{reno,sack}.ppm`.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, FloatVar, Scope, SigConfig, SigSource};
use netsim::{NetConfig, Network, QueueKind};

const FLOWS: usize = 16;
const SECONDS: u64 = 30;
const PERIOD_MS: u64 = 100;

struct Observation {
    total_timeouts: u64,
    staircase: Vec<f64>,
}

fn observe(sack: bool, figure: &str) -> Observation {
    let mut net = Network::new(NetConfig {
        queue: QueueKind::DropTail { capacity: 50 },
        ..NetConfig::default()
    });
    let flows: Vec<usize> = (0..FLOWS)
        .map(|_| net.add_tcp_flow_with(false, sack))
        .collect();
    for (i, &f) in flows.iter().enumerate() {
        net.start_flow_at(f, TimeStamp::from_millis(50 * i as u64));
    }

    let clock = VirtualClock::new();
    let mut scope = Scope::new(
        if sack {
            "variant: SACK"
        } else {
            "variant: Reno"
        },
        300,
        120,
        Arc::new(clock.clone()),
    );
    // The cumulative timeout count: the "unexpected timeouts" signal the
    // authors watched. Sample-and-hold over pushed events.
    scope
        .add_signal(
            "timeouts",
            SigSource::Events,
            SigConfig::default()
                .with_range(0.0, 60.0)
                .with_aggregation(Aggregation::Maximum)
                .with_show_value(true),
        )
        .expect("fresh signal");
    let timeout_sink = scope.event_sink("timeouts").expect("exists");
    // The probe flow's CWND for the visual correlation.
    let cwnd = FloatVar::new(2.0);
    scope
        .add_signal(
            "CWND",
            cwnd.clone().into(),
            SigConfig::default().with_range(0.0, 64.0),
        )
        .expect("fresh signal");
    scope
        .set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .expect("valid period");
    scope.start();

    let probe = flows[0];
    let mut staircase = Vec::new();
    let mut t = TimeStamp::ZERO;
    while t < TimeStamp::from_secs(SECONDS) {
        t += TimeDelta::from_millis(PERIOD_MS);
        net.run_until(t);
        let total: u64 = flows.iter().map(|&f| net.flow_stats(f).timeouts).sum();
        timeout_sink.push(total as f64);
        cwnd.set(net.cwnd(probe));
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
        staircase.push(total as f64);
    }

    grender::render_scope(&scope)
        .save_ppm(format!("target/figures/{figure}.ppm"))
        .expect("write figure");

    Observation {
        total_timeouts: staircase.last().copied().unwrap_or(0.0) as u64,
        staircase,
    }
}

fn main() {
    println!("reproducing the paper's SACK debugging session (§2):\n");

    let reno = observe(false, "sack_debug_reno");
    println!(
        "variant A (recovery degraded to go-back-N): timeout counter climbs to {}",
        reno.total_timeouts
    );
    let sack = observe(true, "sack_debug_sack");
    println!(
        "variant B (SACK scoreboard recovery):       timeout counter climbs to {}",
        sack.total_timeouts
    );

    // The visual diagnosis, in numbers: the staircases separate early
    // and keep diverging — the cue that points at loss recovery.
    let mid = reno.staircase.len() / 2;
    println!(
        "\nat t={}s the scope already shows {} vs {} timeouts — the trace that",
        SECONDS / 2,
        reno.staircase[mid],
        sack.staircase[mid]
    );
    println!("\"would have been hard to determine otherwise\" (§2).");
    println!("wrote target/figures/sack_debug_reno.ppm and sack_debug_sack.ppm");

    assert!(
        sack.total_timeouts < reno.total_timeouts,
        "the debugging signal must separate the variants"
    );
    assert!(
        reno.staircase.windows(2).all(|w| w[1] >= w[0]),
        "cumulative counter is monotone"
    );
}
