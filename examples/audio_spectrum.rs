//! Buffered high-rate signals — the §4.5 audio scenario.
//!
//! The paper notes gscope's 100 Hz polling ceiling makes it
//! inappropriate for "real-time low-delay display of ... 8 KHz audio
//! signals", and prescribes the fix: "the audio signal could be read
//! from the audio device and buffered by an application and gscope can
//! display the signal with some delay using buffered signals."
//!
//! A synthetic 8 kHz "phone line" (a 440 Hz tone plus a DTMF burst and
//! noise) is produced by a driver thread into the scope-wide buffer;
//! the scope drains it with a 250 ms delay, displaying the per-interval
//! RMS-ish envelope via aggregation, and renders the frequency-domain
//! view where both tones are visible.
//!
//! Run with `cargo run --example audio_spectrum`. Writes
//! `target/figures/audio_scope.{ppm,svg}` and `audio_spectrum.ppm`.

use std::sync::Arc;

use gctrl::{Noise, Oscillator, Waveform};
use gdsp::{peak_bin, SpectrumConfig};
use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, Scope, SigConfig, SigSource};

/// Audio sample rate (the paper's phone-line example).
const RATE_HZ: u64 = 8_000;
/// Scope polling period; far below the audio rate, as §4.5 discusses.
const PERIOD_MS: u64 = 20;

fn main() {
    let clock = VirtualClock::new();
    let mut scope = Scope::new("phone line", 300, 120, Arc::new(clock.clone()));
    scope.set_delay(TimeDelta::from_millis(250));
    // The raw samples, displayed with delay (sample-and-hold shows the
    // last sample of each interval).
    scope
        .add_signal(
            "audio",
            SigSource::Buffer,
            SigConfig::default().with_range(-2.0, 2.0),
        )
        .expect("fresh signal");
    // The peak amplitude per polling interval (§4.2 Maximum
    // aggregation): an envelope meter.
    scope
        .add_signal(
            "peak",
            SigSource::Buffer,
            SigConfig::default()
                .with_range(0.0, 2.0)
                .with_aggregation(Aggregation::Maximum)
                .with_show_value(true),
        )
        .expect("fresh signal");
    scope
        .set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .expect("valid period");
    scope.start();

    // The "device driver" (§4.2 Buffering): produces 8 kHz samples into
    // the scope-wide buffer with timestamps. Virtual time makes this
    // deterministic; a real deployment would run it in a thread exactly
    // the same way (ScopeBuffer is thread-safe).
    let buffer = scope.buffer().clone();
    let tone = Oscillator::new(Waveform::Sine, 440.0, 1.0);
    let dtmf_low = Oscillator::new(Waveform::Sine, 770.0, 0.6);
    let dtmf_high = Oscillator::new(Waveform::Sine, 1336.0, 0.6);
    let mut noise = Noise::new(7, 0.05, 0.0);
    let total = TimeStamp::from_secs(4);
    let dt_us = 1_000_000 / RATE_HZ;
    let mut produced = 0u64;
    let mut t = TimeStamp::ZERO;
    while t < total {
        t += TimeDelta::from_micros(dt_us);
        let secs = t.as_secs_f64();
        // DTMF "5" pressed between 1.5 s and 2.5 s.
        let mut v = tone.sample(secs) + noise.next();
        if (1.5..2.5).contains(&secs) {
            v += dtmf_low.sample(secs) + dtmf_high.sample(secs);
        }
        buffer.push_sample("audio", t, v);
        buffer.push_sample("peak", t, v.abs());
        produced += 2;
    }
    println!("driver produced {produced} buffered samples at {RATE_HZ} Hz (x2 signals)");

    // Display loop: drain with delay.
    let mut now = TimeStamp::ZERO;
    let horizon = total + TimeDelta::from_millis(500);
    while now < horizon {
        now += TimeDelta::from_millis(PERIOD_MS);
        clock.set(now);
        scope.tick(&TickInfo {
            now,
            scheduled: now,
            missed: 0,
        });
    }

    println!(
        "late drops: {} (delay was generous), buffer leftover: {}",
        scope.buffer().late_drops(),
        scope.buffer().len()
    );

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/audio_scope.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/audio_scope.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");

    // Frequency view over the displayed (decimated) audio trace. The
    // scope samples at 50 Hz, so the display-domain spectrum shows the
    // *aliased* image of the tones — §4.5's precise point about why raw
    // high-rate display needs the buffered path. The envelope signal,
    // in contrast, cleanly shows the DTMF burst.
    let spec = grender::render_spectrum(&scope, "audio", 128, SpectrumConfig::default())
        .expect("spectrum renders");
    spec.save_ppm("target/figures/audio_spectrum.ppm")
        .expect("write figure");
    println!("wrote target/figures/audio_scope.{{ppm,svg}} and audio_spectrum.ppm");

    // The envelope must show the DTMF burst: peak ~2.2 during the
    // burst vs ~1.05 outside it.
    let window = scope.display_cols("peak");
    let max_peak = window.iter().flatten().fold(0.0f64, f64::max);
    assert!(
        max_peak > 1.5,
        "DTMF burst visible in envelope ({max_peak})"
    );
    let bins = scope
        .spectrum(
            "peak",
            64,
            SpectrumConfig {
                remove_dc: true,
                ..Default::default()
            },
        )
        .expect("spectrum");
    let _ = peak_bin(&bins);
    assert_eq!(scope.buffer().late_drops(), 0);
}
