//! Distributed visualization (§4.4): remote clients stream signals to
//! a scope server over TCP.
//!
//! Two "machines" (threads in this demo) run mxtraf-style monitors and
//! stream `BUFFER` tuples — connections/sec on one, latency on the
//! other — to a central gscope server, which correlates them "within a
//! single scope" with a user-specified delay. Data arriving after the
//! delay is dropped, and the example demonstrates that too.
//!
//! Run with `cargo run --example distributed`. Writes
//! `target/figures/distributed_scope.{ppm,svg}`.

use std::sync::Arc;
use std::time::Duration;

use gel::{Clock, SystemClock, TickInfo, TimeDelta, TimeStamp};
use gnet::{ScopeClient, ScopeServer};
use gscope::{Scope, SigConfig, SigSource};

fn main() {
    // The display side: a scope whose clock all timestamps refer to
    // (the paper assumes distributed clocks are correlated).
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let mut scope = Scope::new("distributed mxtraf", 300, 120, Arc::clone(&clock));
    scope.set_delay(TimeDelta::from_millis(300));
    for (name, max) in [("conn.rate", 200.0), ("latency.ms", 100.0)] {
        scope
            .add_signal(
                name,
                SigSource::Buffer,
                SigConfig::default()
                    .with_range(0.0, max)
                    .with_show_value(true),
            )
            .expect("fresh signal");
    }
    scope
        .set_polling_mode(TimeDelta::from_millis(20))
        .expect("valid period");
    scope.start();
    let scope = scope.into_shared();

    let mut server = ScopeServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    server.add_scope(Arc::clone(&scope));
    let addr = server.local_addr().expect("bound socket");
    println!("scope server listening on {addr}");

    // "Machine" A: a web-server monitor streaming connections/sec.
    let clock_a = Arc::clone(&clock);
    let a = std::thread::spawn(move || {
        let mut client = ScopeClient::connect(addr).expect("connect");
        for i in 0..60u64 {
            let t = clock_a.now();
            let rate = 120.0 + 60.0 * (i as f64 / 8.0).sin();
            client.send_at(t, "conn.rate", rate);
            let _ = client.pump();
            std::thread::sleep(Duration::from_millis(10));
        }
        client.flush_blocking().expect("drain");
        client.stats()
    });

    // "Machine" B: a network monitor streaming request latency.
    let clock_b = Arc::clone(&clock);
    let b = std::thread::spawn(move || {
        let mut client = ScopeClient::connect(addr).expect("connect");
        for i in 0..60u64 {
            let t = clock_b.now();
            let latency = 30.0 + (i % 10) as f64 * 4.0;
            client.send_at(t, "latency.ms", latency);
            let _ = client.pump();
            std::thread::sleep(Duration::from_millis(10));
        }
        // One hopelessly stale tuple: timestamped in the distant past,
        // far beyond the scope's 300 ms delay window.
        client.send_at(TimeStamp::ZERO, "latency.ms", 9999.0);
        client.flush_blocking().expect("drain");
        client.stats()
    });

    // The display loop: poll the server and tick the scope, §4.3's
    // single-threaded I/O-driven style, for ~900 ms of wall time.
    let deadline = clock.now() + TimeDelta::from_millis(900);
    let mut next_tick = clock.now() + TimeDelta::from_millis(20);
    while clock.now() < deadline {
        let _ = server.poll();
        let now = clock.now();
        if now >= next_tick {
            scope.lock().tick(&TickInfo {
                now,
                scheduled: next_tick,
                missed: 0,
            });
            next_tick += TimeDelta::from_millis(20);
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats_a = a.join().expect("client A");
    let stats_b = b.join().expect("client B");
    let sstats = server.stats();
    let guard = scope.lock();
    println!(
        "client A queued {} tuples, client B queued {}",
        stats_a.tuples_queued, stats_b.tuples_queued
    );
    println!(
        "server: {} connections, {} tuples received, {} parse errors",
        sstats.connections, sstats.tuples_received, sstats.parse_errors
    );
    println!(
        "scope buffer: {} accepted, {} late-dropped (the stale tuple)",
        guard.buffer().total_inserted(),
        guard.buffer().late_drops()
    );
    println!(
        "latest readouts: conn.rate={:?} latency.ms={:?}",
        guard.value_readout("conn.rate").unwrap(),
        guard.value_readout("latency.ms").unwrap()
    );

    let fb = grender::render_scope(&guard);
    fb.save_ppm("target/figures/distributed_scope.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/distributed_scope.svg",
        grender::render_scope_svg(&guard),
    )
    .expect("write figure");
    println!("wrote target/figures/distributed_scope.{{ppm,svg}}");

    assert_eq!(sstats.connections, 2);
    assert_eq!(sstats.tuples_received, 121, "60 + 60 + 1 stale");
    assert_eq!(
        guard.buffer().late_drops(),
        1,
        "the stale tuple was dropped"
    );
    assert!(guard.value_readout("conn.rate").unwrap().is_some());
}
