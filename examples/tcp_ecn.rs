//! The paper's showcase experiment (§2, Figures 4 and 5): TCP vs ECN
//! congestion-window behaviour under a changing number of long-lived
//! flows.
//!
//! An `mxtraf`-style workload drives 8 elephants through a congested
//! 10 Mbit/s router, doubles them to 16 "roughly half way through the
//! x-axis", and a gscope displays two signals exactly as in the paper:
//!
//! * `elephants` — the number of long-lived flows (min 0, max 40, as in
//!   the §3.1 listing),
//! * `CWND` — the congestion window of one (arbitrarily chosen)
//!   long-lived flow, in packets.
//!
//! Figure 4 (DropTail, standard TCP): the CWND trace repeatedly
//! collapses to 1 — each touch of the floor is a retransmission
//! timeout. Figure 5 (RED router, ECN flows): the window oscillates
//! but never reaches 1.
//!
//! Run with `cargo run --example tcp_ecn`. Writes
//! `target/figures/figure4_tcp.{ppm,svg}` and `figure5_ecn.{ppm,svg}`.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{IntVar, Scope, SigConfig, SigSource};
use netsim::{Mxtraf, MxtrafConfig, NetConfig, QueueKind};

/// Seconds of simulated time per run.
const DURATION_S: u64 = 60;
/// The elephants count doubles at this point (mid-x-axis, as in the
/// paper).
const SWITCH_S: u64 = 30;
/// Scope polling period: 100 ms per pixel over a 600-pixel canvas
/// covers the full 60 s run.
const PERIOD_MS: u64 = 100;
/// The CWND probe samples the simulator at this finer granularity and
/// pushes events; the scope's Minimum aggregation (§4.2) reduces each
/// 100 ms interval, so a CWND=1 dip lasting one RTT is never missed.
const PROBE_MS: u64 = 10;

struct RunSummary {
    timeouts: u64,
    min_cwnd: f64,
    drops: u64,
    marks: u64,
}

fn run(ecn: bool, figure: &str, title: &str) -> RunSummary {
    let cfg = MxtrafConfig {
        ecn,
        net: NetConfig {
            queue: if ecn {
                QueueKind::red_default(100)
            } else {
                QueueKind::DropTail { capacity: 50 }
            },
            ..NetConfig::default()
        },
        initial_elephants: 8,
        max_elephants: 16,
        ..MxtrafConfig::default()
    };
    let mut traffic = Mxtraf::new(cfg);

    // The scope, with the paper's two signals. The probe watches
    // elephant 0 (the "arbitrarily chosen long-lived flow").
    let clock = VirtualClock::new();
    let mut scope = Scope::new(title, 600, 150, Arc::new(clock.clone()));
    let elephants_var = IntVar::new(8);
    scope
        .add_signal(
            "elephants",
            elephants_var.clone().into(),
            SigConfig::default()
                .with_range(0.0, 40.0)
                .with_color(gscope::Color::YELLOW)
                .with_show_value(true),
        )
        .unwrap();
    // CWND is read through a FUNC signal in the paper (get_cwnd(fd)).
    // The simulator advances in bursts between scope ticks, so the
    // probe pushes fine-grained samples as events and the signal's
    // Minimum aggregation (§4.2) reduces each polling interval — a
    // CWND=1 dip lasting a single RTT still reaches the display.
    scope
        .add_signal(
            "CWND",
            SigSource::Events,
            SigConfig::default()
                .with_range(0.0, 64.0)
                .with_color(gscope::Color::GREEN)
                .with_aggregation(gscope::Aggregation::Minimum)
                .with_show_value(true),
        )
        .unwrap();
    let cwnd_sink = scope.event_sink("CWND").unwrap();
    scope
        .set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .unwrap();
    scope.start();

    // Lock-step the simulator, the probes, and the scope tick.
    let probe = traffic.elephant_flow(0);
    let mut min_cwnd = f64::INFINITY;
    let horizon = TimeStamp::from_secs(DURATION_S);
    let period = TimeDelta::from_millis(PERIOD_MS);
    let warmup = TimeDelta::from_secs(5);
    let mut t = TimeStamp::ZERO;
    // Let the flows leave slow-start before the visible window.
    traffic.run_until(TimeStamp::ZERO + warmup);
    while t < horizon {
        let tick_end = t + period;
        // Fine-grained probe between scope ticks.
        while t < tick_end {
            t += TimeDelta::from_millis(PROBE_MS);
            traffic.run_until(t + warmup);
            let cwnd = traffic.net().cwnd(probe);
            cwnd_sink.push(cwnd);
            if t > TimeStamp::from_secs(2) {
                min_cwnd = min_cwnd.min(cwnd);
            }
        }
        if t == TimeStamp::from_secs(SWITCH_S) {
            traffic.set_elephants(16);
            elephants_var.set(16);
        }
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    let fb = grender::render_scope(&scope);
    fb.save_ppm(format!("target/figures/{figure}.ppm")).unwrap();
    std::fs::write(
        format!("target/figures/{figure}.svg"),
        grender::render_scope_svg(&scope),
    )
    .unwrap();

    RunSummary {
        timeouts: traffic.total_timeouts(),
        min_cwnd,
        drops: traffic.net().queue_stats().dropped,
        marks: traffic.net().queue_stats().marked,
    }
}

fn main() {
    println!(
        "mxtraf TCP-vs-ECN experiment: 8 -> 16 elephants at t={SWITCH_S}s, {DURATION_S}s total\n"
    );

    let tcp = run(false, "figure4_tcp", "mxtraf TCP (DropTail)");
    println!("Figure 4 (TCP, DropTail):");
    println!("  router drops:      {}", tcp.drops);
    println!("  probe flow CWND min: {:.1} packets", tcp.min_cwnd);
    println!(
        "  elephant timeouts: {}  <- each one is a CWND collapse to 1",
        tcp.timeouts
    );

    let ecn = run(true, "figure5_ecn", "mxtraf ECN (RED)");
    println!("\nFigure 5 (ECN, RED):");
    println!("  router drops:      {}", ecn.drops);
    println!("  router CE marks:   {}", ecn.marks);
    println!("  probe flow CWND min: {:.1} packets", ecn.min_cwnd);
    println!("  elephant timeouts: {}", ecn.timeouts);

    println!("\nwrote target/figures/figure4_tcp.* and figure5_ecn.*");

    // The paper's qualitative claims, asserted.
    assert!(
        tcp.timeouts > 0,
        "TCP through a congested DropTail router must suffer timeouts"
    );
    assert_eq!(ecn.timeouts, 0, "ECN flows must not time out");
    assert!(ecn.marks > 0, "the RED router must be marking");
    assert!(
        tcp.min_cwnd <= 1.0,
        "the TCP probe's CWND trace must touch 1 (got {})",
        tcp.min_cwnd
    );
    assert!(
        ecn.min_cwnd > 1.0,
        "the ECN probe's CWND never collapses to 1 (got {})",
        ecn.min_cwnd
    );
    println!("\nqualitative checks passed: TCP hits CWND=1 via timeouts; ECN never does");
}
