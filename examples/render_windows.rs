//! Regenerates Figure 2 (the signal-parameters window) and Figure 3
//! (the application/control-parameters window).
//!
//! Figure 2 is what right-clicking a signal name opens: the signal's
//! `GtkScopeSig` fields — name, color, min, max, line mode, hidden,
//! filter α — plus this implementation's aggregation mode. Figure 3 is
//! the application-wide control-parameter window with two parameters,
//! matching the paper's screenshot.
//!
//! Run with `cargo run --example render_windows`. Writes
//! `target/figures/figure2_signal_params.{ppm,svg}` and
//! `figure3_control_params.{ppm,svg}`.

use std::sync::Arc;

use gel::VirtualClock;
use gscope::{BoolVar, Color, IntVar, LineMode, ParamSet, ParamValue, Parameter, Scope, SigConfig};

fn main() {
    // A scope holding a CWND-like signal configured the way Figure 2
    // shows it.
    let clock = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("windows", 300, 100, clock);
    scope
        .add_signal(
            "CWND",
            IntVar::new(12).into(),
            SigConfig::default()
                .with_color(Color::GREEN)
                .with_range(0.0, 64.0)
                .with_line(LineMode::Line)
                .with_filter(0.25),
        )
        .expect("fresh signal");

    let fb = grender::render_signal_window(&scope, "CWND").expect("signal exists");
    fb.save_ppm("target/figures/figure2_signal_params.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/figure2_signal_params.svg",
        grender::render_signal_window_svg(&scope, "CWND").expect("signal exists"),
    )
    .expect("write figure");
    println!("wrote target/figures/figure2_signal_params.{{ppm,svg}}");

    // Figure 3: the control-parameter window with two application
    // parameters (§3.2) — the mxtraf elephants knob and an ECN toggle.
    let params = ParamSet::new();
    let elephants = IntVar::new(8);
    let ecn = BoolVar::new(false);
    params
        .add(Parameter::int("elephants", elephants.clone(), 0, 40))
        .expect("fresh parameter");
    params
        .add(Parameter::bool("ecn_enabled", ecn.clone()))
        .expect("fresh parameter");

    // Parameters are read/write: the GUI (or this program) modifies
    // application behaviour live.
    params
        .set("elephants", ParamValue::Int(16))
        .expect("in range");
    params
        .set("ecn_enabled", ParamValue::Bool(true))
        .expect("bool");
    assert_eq!(elephants.get(), 16, "write reached the application");
    assert!(ecn.get());

    let fb = grender::render_param_window(&params);
    fb.save_ppm("target/figures/figure3_control_params.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/figure3_control_params.svg",
        grender::render_param_window_svg(&params),
    )
    .expect("write figure");
    println!("wrote target/figures/figure3_control_params.{{ppm,svg}}");
}
