//! Oscilloscope triggers and envelopes — §6's future work, working.
//!
//! "Gscope currently does not have support for repeating waveforms.
//! Thus, many oscilloscope features such as triggers that stabilize
//! repeating waveforms or waveform envelop generation are not
//! implemented in Gscope." Both are implemented here: a rising-edge
//! trigger freezes a repeating waveform on screen (the display window
//! always ends at the most recent trigger point), and the envelope
//! accumulates the per-pixel min/max band of a jittery signal across
//! sweeps.
//!
//! Run with `cargo run --example triggers`. Writes
//! `target/figures/trigger_stabilized.{ppm,svg}` and
//! `trigger_free_running.ppm`.

use std::sync::Arc;

use gctrl::{Noise, Oscillator, Waveform};
use gel::{Clock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Scope, SigConfig, SigSource, Trigger, TriggerMode};

fn build_scope(clock: &VirtualClock) -> Scope {
    let mut scope = Scope::new("trigger demo", 200, 120, Arc::new(clock.clone()));
    // A 2.5 Hz square wave sampled at 50 ms: exactly 8 samples per
    // cycle, so an untriggered strip chart shows it crawling; the
    // trigger pins it.
    let square = Oscillator::new(Waveform::Square, 2.5, 35.0).with_offset(50.0);
    let mut jitter = Noise::new(11, 2.0, 0.3);
    let sq_clock = clock.clone();
    scope
        .add_signal(
            "square",
            SigSource::func(move || square.sample(sq_clock.now().as_secs_f64()) + jitter.next()),
            SigConfig::default(),
        )
        .expect("fresh signal");
    scope
        .set_polling_mode(TimeDelta::from_millis(50))
        .expect("valid period");
    scope.start();
    scope
}

fn drive(scope: &mut Scope, clock: &VirtualClock, from_ms: u64, ticks: u64) -> u64 {
    for i in 1..=ticks {
        let t = TimeStamp::from_millis(from_ms + 50 * i);
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
    from_ms + 50 * ticks
}

fn main() {
    let clock = VirtualClock::new();
    let mut scope = build_scope(&clock);
    let mut t = drive(&mut scope, &clock, 0, 400);

    // Free-running snapshot: the sweep ends wherever the last poll
    // happened to land in the cycle.
    let free = grender::render_scope(&scope);
    free.save_ppm("target/figures/trigger_free_running.ppm")
        .expect("write figure");
    let free_window = scope.display_cols("square").to_vec();

    // Install a rising-edge trigger with hysteresis; the display now
    // always ends at the most recent upward crossing of 50.
    scope
        .set_trigger(
            "square",
            Trigger::rising(50.0)
                .with_hysteresis(10.0)
                .with_mode(TriggerMode::Auto),
        )
        .expect("signal exists");
    scope.enable_envelope("square").expect("signal exists");

    // Several more sweeps: each render is aligned to the same phase,
    // and the envelope accumulates the jitter band.
    let mut last_end: Option<f64> = None;
    for sweep in 0..6 {
        t = drive(&mut scope, &clock, t, 40);
        let window = scope.display_cols("square");
        let end = window.iter().rev().flatten().next();
        if let (Some(prev), Some(cur)) = (last_end, end) {
            // Trigger stabilization: the final displayed sample always
            // sits just above the trigger level (±jitter).
            assert!(
                (cur - prev).abs() < 20.0,
                "sweep {sweep}: aligned ends {prev:.1} vs {cur:.1}"
            );
        }
        last_end = end;
    }
    println!(
        "trigger-aligned display: window ends at {:.1} (trigger level 50, high state ~85)",
        last_end.unwrap()
    );

    let env = scope.envelope("square").expect("enabled");
    println!("envelope accumulated over {} sweeps", env.sweeps());
    // Pick a pixel mid-screen and report its band.
    let mid = env.width() / 2;
    if let Some((lo, hi)) = env.band(mid) {
        println!("envelope band at x={mid}: [{lo:.1}, {hi:.1}]");
        assert!(hi - lo >= 1.0, "jitter must open a visible band");
    }

    let fb = grender::render_scope(&scope);
    fb.save_ppm("target/figures/trigger_stabilized.ppm")
        .expect("write figure");
    std::fs::write(
        "target/figures/trigger_stabilized.svg",
        grender::render_scope_svg(&scope),
    )
    .expect("write figure");
    println!("wrote target/figures/trigger_free_running.ppm and trigger_stabilized.{{ppm,svg}}");

    // The free-running window ends at an arbitrary phase; asserting
    // inequality across renders would be flaky, but the two snapshots
    // must at least both be full-width.
    assert_eq!(free_window.len(), 200);
    assert!(free.width() > 0);
}
