//! `gscope-suite` — the umbrella crate of the gscope workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`); the library itself
//! only re-exports the workspace crates so examples and tests can name
//! everything through one dependency.
//!
//! The workspace reproduces *"Gscope: A Visualization Tool for
//! Time-Sensitive Software"* (Goel & Walpole, USENIX FREENIX 2002).
//! See the repository `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and number.

pub use gctrl;
pub use gdsp;
pub use gel;
pub use gnet;
pub use grender;
pub use gscope;
pub use loadmeter;
pub use netsim;
pub use rrsched;
