//! Concurrency stress for the event loop: many threads hammering a
//! running loop through its handle while sources churn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gel::{Continue, MainLoop, Quantizer, SystemClock, TimeDelta};

#[test]
fn concurrent_invokes_source_churn_and_quit() {
    let clock = Arc::new(SystemClock::new());
    let mut ml = MainLoop::with_quantizer(
        Arc::clone(&clock) as Arc<dyn gel::Clock>,
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    let tick_count = Arc::new(AtomicU64::new(0));
    let tc = Arc::clone(&tick_count);
    ml.add_timeout(
        TimeDelta::from_millis(2),
        Box::new(move |_| {
            tc.fetch_add(1, Ordering::SeqCst);
            Continue::Keep
        }),
    );
    let handle = ml.handle();
    let invokes_run = Arc::new(AtomicU64::new(0));

    // 8 threads, each sending 50 invokes that add-and-remove sources.
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let h = handle.clone();
        let counter = Arc::clone(&invokes_run);
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let c2 = Arc::clone(&counter);
                h.invoke(move |ml| {
                    c2.fetch_add(1, Ordering::SeqCst);
                    // Churn: install a short-lived source and a stale
                    // removal to exercise slot reuse under load.
                    let id =
                        ml.add_timeout(TimeDelta::from_millis(1), Box::new(|_| Continue::Remove));
                    if (t + i) % 3 == 0 {
                        ml.remove_source(id);
                    }
                });
                if i % 10 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    let quitter = {
        let h = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(250));
            h.quit();
        })
    };
    ml.run();
    for th in threads {
        th.join().unwrap();
    }
    quitter.join().unwrap();

    assert_eq!(
        invokes_run.load(Ordering::SeqCst),
        8 * 50,
        "every cross-thread invoke ran exactly once"
    );
    assert!(
        tick_count.load(Ordering::SeqCst) >= 20,
        "the periodic source kept running under churn: {}",
        tick_count.load(Ordering::SeqCst)
    );
    // The loop is reusable after quit.
    let handle2 = ml.handle();
    ml.add_oneshot(TimeDelta::from_millis(5), move |_| handle2.quit());
    ml.run();
}

#[test]
fn invokes_sent_before_run_are_not_lost() {
    let clock = Arc::new(SystemClock::new());
    let mut ml = MainLoop::with_quantizer(
        Arc::clone(&clock) as Arc<dyn gel::Clock>,
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    let handle = ml.handle();
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..100 {
        let r = Arc::clone(&ran);
        handle.invoke(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    let h2 = handle.clone();
    handle.invoke(move |_| h2.quit());
    ml.run();
    assert_eq!(ran.load(Ordering::SeqCst), 100);
}
