//! Property-based invariants of the simulation substrates: the network
//! simulator, the scheduler, and the PLL must hold their conservation
//! and stability laws across randomized configurations.

use gel::{TimeDelta, TimeStamp};
use netsim::{NetConfig, Network, QueueKind};
use proptest::prelude::*;
use rrsched::{SchedConfig, Scheduler, Task};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- netsim conservation ----

    #[test]
    fn network_conserves_packets(
        flows in 1usize..10,
        capacity in 5usize..80,
        ecn in any::<bool>(),
        seed in 0u64..100,
        secs in 2u64..8,
    ) {
        let queue = if ecn {
            QueueKind::red_default(capacity)
        } else {
            QueueKind::DropTail { capacity }
        };
        let mut net = Network::new(NetConfig {
            queue,
            seed,
            ..NetConfig::default()
        });
        let ids: Vec<_> = (0..flows).map(|_| net.add_tcp_flow(ecn)).collect();
        for (i, &f) in ids.iter().enumerate() {
            net.start_flow_at(f, TimeStamp::from_millis(37 * i as u64));
        }
        net.run_until(TimeStamp::from_secs(secs));
        let qstats = net.queue_stats();
        // Queue occupancy never exceeds capacity.
        prop_assert!(net.queue_len() <= capacity + 1);
        prop_assert!(qstats.peak_len <= capacity + 1);
        for &f in &ids {
            let s = net.flow_stats(f);
            // A flow never has acked more than it sent.
            prop_assert!(s.packets_acked <= s.packets_sent);
            // In-order delivery at the receiver never exceeds sends.
            prop_assert!(net.flow_delivered(f) <= s.packets_sent);
            // cwnd stays within [1, MAX_WINDOW].
            let cwnd = net.cwnd(f);
            prop_assert!((1.0..=netsim::MAX_WINDOW + 0.001).contains(&cwnd),
                "cwnd {cwnd} out of range");
            // ECN flows never cut below 2 except via timeout, and
            // DropTail never marks.
            if !ecn {
                prop_assert_eq!(s.ecn_cuts, 0);
            }
        }
        if !ecn {
            prop_assert_eq!(qstats.marked, 0, "DropTail must not mark");
        }
        // Total deliveries are bounded by link capacity plus slack.
        let max_packets = (secs as f64 / net.config().serialization().as_secs_f64()) as u64 + 10;
        prop_assert!(net.delivered_packets() <= max_packets);
    }

    #[test]
    fn goodput_never_exceeds_link_capacity(
        flows in 1usize..12,
        secs in 3u64..10,
    ) {
        let mut net = Network::new(NetConfig::default());
        let ids: Vec<_> = (0..flows).map(|_| net.add_tcp_flow(false)).collect();
        for (i, &f) in ids.iter().enumerate() {
            net.start_flow_at(f, TimeStamp::from_millis(29 * i as u64));
        }
        net.run_until(TimeStamp::from_secs(secs));
        let delivered: u64 = ids.iter().map(|&f| net.flow_delivered(f)).sum();
        let goodput = net.goodput_bps(delivered, TimeDelta::from_secs(secs));
        prop_assert!(
            goodput <= net.config().bandwidth_bps as f64 * 1.02,
            "goodput {goodput} exceeds the 10 Mbit/s bottleneck"
        );
    }

    // ---- scheduler invariants ----

    #[test]
    fn scheduler_respects_capacity_and_bounds(
        task_params in proptest::collection::vec(
            (1u64..200, 1u64..50, 1.0..200.0f64, 2.0..100.0f64),
            1..6,
        ),
        secs in 5u64..20,
    ) {
        let mut sched = Scheduler::new(SchedConfig::default());
        for (i, &(period_ms, cpu_ms_tenths, rate, cap)) in task_params.iter().enumerate() {
            sched.add_task(Task::new(
                format!("t{i}"),
                TimeDelta::from_millis(period_ms),
                cpu_ms_tenths as f64 / 10_000.0,
                rate,
                cap,
            ));
        }
        sched.run_until(TimeStamp::from_secs(secs));
        prop_assert!(sched.total_proportion() <= 0.96);
        for t in sched.tasks() {
            prop_assert!((0.0..=1.0).contains(&t.proportion()));
            prop_assert!((0.0..=1.0).contains(&t.fill()));
        }
    }

    // ---- PLL stability ----

    #[test]
    fn pll_output_stays_bounded(
        freq in 30.0..80.0f64,
        noise_sigma in 0.0..0.4f64,
        seed in 0u64..50,
    ) {
        use gctrl::{Noise, Oscillator, Pll, PllConfig, Waveform};
        let mut pll = Pll::new(PllConfig::default());
        let osc = Oscillator::new(Waveform::Sine, freq, 1.0);
        let mut noise = Noise::new(seed, noise_sigma, 0.0);
        let dt = 0.0005;
        for i in 0..4000 {
            let out = pll.step(osc.sample(i as f64 * dt) + noise.next(), dt);
            prop_assert!(out.frequency.is_finite());
            prop_assert!(out.phase_error.is_finite());
            prop_assert!(out.phase_error.abs() <= std::f64::consts::PI + 1e-9);
            prop_assert!(out.nco.abs() <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn droptail_vs_red_loss_ordering() {
    // Deterministic crossover check: under identical load, RED+ECN
    // drops strictly fewer packets than DropTail of the same capacity.
    let run = |queue: QueueKind, ecn: bool| {
        let mut net = Network::new(NetConfig {
            queue,
            ..NetConfig::default()
        });
        for i in 0..12 {
            let f = net.add_tcp_flow(ecn);
            net.start_flow_at(f, TimeStamp::from_millis(50 * i));
        }
        net.run_until(TimeStamp::from_secs(20));
        net.queue_stats().dropped
    };
    let droptail = run(QueueKind::DropTail { capacity: 60 }, false);
    let red = run(QueueKind::red_default(60), true);
    assert!(
        red < droptail,
        "RED+ECN ({red}) must lose less than DropTail ({droptail})"
    );
}
