//! Property-based tests over the workspace's core invariants.

use gdsp::{dft_naive, fft, fft_real, ifft, Complex, LowPass};
use gel::{Quantizer, TimeDelta, TimeStamp};
use gscope::{Aggregation, EventAccumulator, History, Tuple, TupleReader, TupleWriter};
use proptest::prelude::*;

fn finite_value() -> impl Strategy<Value = f64> {
    prop_oneof![-1e9..1e9f64, Just(0.0), Just(-0.0), -1.0..1.0f64,]
}

proptest! {
    // ---- tuple format (§3.3) ----

    #[test]
    fn tuple_line_round_trips(
        ms in 0u64..10_000_000,
        us in 0u64..1000,
        value in finite_value(),
        name in "[a-zA-Z][a-zA-Z0-9_.]{0,12}",
    ) {
        let t = Tuple::new(
            TimeStamp::from_micros(ms * 1000 + us),
            value,
            name,
        );
        let parsed = Tuple::parse_line(&t.to_line(), 1).unwrap();
        prop_assert_eq!(parsed.time, t.time);
        prop_assert_eq!(parsed.name, t.name);
        // Values survive the default f64 formatting exactly.
        prop_assert_eq!(parsed.value.to_bits(), t.value.to_bits());
    }

    #[test]
    fn zero_alloc_codec_matches_legacy_format(
        ms in 0u64..10_000_000,
        us in 0u64..1000,
        value in finite_value(),
        name in proptest::option::of("[a-zA-Z][a-zA-Z0-9_.]{0,12}"),
    ) {
        // The buffer encoder must emit the exact bytes the historical
        // format!("{:.3} {} {}", ...) encoding produced, for named and
        // unnamed (single-signal, §3.3) tuples alike.
        let time = TimeStamp::from_micros(ms * 1000 + us);
        let legacy = match &name {
            Some(n) => format!("{:.3} {} {}", time.as_millis_f64(), value, n),
            None => format!("{:.3} {}", time.as_millis_f64(), value),
        };
        let mut buf = Vec::new();
        gscope::write_tuple_line(&mut buf, time, value, name.as_deref());
        prop_assert_eq!(std::str::from_utf8(&buf).unwrap(), legacy.as_str());

        // And the borrowing parse must agree with the owning parse.
        let raw = Tuple::parse_raw(&legacy, 1).unwrap();
        let owned = Tuple::parse_line(&legacy, 1).unwrap();
        prop_assert_eq!(raw.time, owned.time);
        prop_assert_eq!(raw.value.to_bits(), owned.value.to_bits());
        prop_assert_eq!(raw.name, owned.name());
        prop_assert_eq!(&raw.to_tuple(), &owned);
        // Round trip: time/value/name all survive exactly.
        prop_assert_eq!(owned.time, time);
        prop_assert_eq!(owned.value.to_bits(), value.to_bits());
        prop_assert_eq!(owned.name(), name.as_deref());
    }

    #[test]
    fn tuple_stream_round_trips(
        times in proptest::collection::vec(0u64..100_000, 1..40),
        values in proptest::collection::vec(finite_value(), 40),
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let tuples: Vec<Tuple> = sorted
            .iter()
            .zip(&values)
            .map(|(&ms, &v)| Tuple::new(TimeStamp::from_millis(ms), v, "s"))
            .collect();
        let mut w = TupleWriter::new(Vec::new());
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let bytes = w.into_inner();
        let got = TupleReader::new(bytes.as_slice()).read_all().unwrap();
        prop_assert_eq!(got, tuples);
    }

    // ---- low-pass filter (§3.1) ----

    #[test]
    fn filter_output_within_input_hull(
        alpha in 0.0..=1.0f64,
        xs in proptest::collection::vec(-1e6..1e6f64, 1..100),
    ) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut f = LowPass::new(alpha).unwrap();
        for y in f.feed_all(&xs) {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    #[test]
    fn filter_is_identity_at_alpha_zero(
        xs in proptest::collection::vec(-1e6..1e6f64, 1..50),
    ) {
        let mut f = LowPass::identity();
        prop_assert_eq!(f.feed_all(&xs), xs);
    }

    // ---- aggregation algebra (§4.2) ----

    #[test]
    fn aggregation_algebra(
        events in proptest::collection::vec(-1e5..1e5f64, 1..60),
        period_ms in 1u64..5_000,
    ) {
        let period = TimeDelta::from_millis(period_ms);
        let run = |agg: Aggregation| {
            let mut acc = EventAccumulator::new(agg);
            for &e in &events {
                acc.push(e);
            }
            acc.finish_interval(period).unwrap()
        };
        let sum = run(Aggregation::Sum);
        let avg = run(Aggregation::Average);
        let n = run(Aggregation::Events);
        let rate = run(Aggregation::Rate);
        let max = run(Aggregation::Maximum);
        let min = run(Aggregation::Minimum);
        let hold = run(Aggregation::SampleHold);
        let any = run(Aggregation::AnyEvent);
        prop_assert_eq!(n as usize, events.len());
        prop_assert_eq!(any, 1.0);
        prop_assert!((sum - avg * n).abs() <= 1e-6 * sum.abs().max(1.0));
        prop_assert!((rate * period.as_secs_f64() - sum).abs() <= 1e-6 * sum.abs().max(1.0));
        prop_assert!(max >= min);
        prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
        prop_assert_eq!(hold, *events.last().unwrap());
    }

    // ---- display history ----

    #[test]
    fn history_keeps_newest_columns(
        capacity in 1usize..64,
        values in proptest::collection::vec(finite_value(), 0..200),
    ) {
        let mut h = History::new(capacity);
        for &v in &values {
            h.push(Some(v));
        }
        prop_assert_eq!(h.len(), values.len().min(capacity));
        let stored = h.to_vec();
        let expected: Vec<Option<f64>> = values
            .iter()
            .skip(values.len().saturating_sub(capacity))
            .map(|&v| Some(v))
            .collect();
        prop_assert_eq!(stored, expected);
        prop_assert_eq!(h.total_pushed(), values.len() as u64);
    }

    // ---- timer quantization (§4.5) ----

    #[test]
    fn quantizer_is_monotone_and_idempotent(
        quantum_us in 1u64..1_000_000,
        a in 0u64..u64::MAX / 4,
        b in 0u64..u64::MAX / 4,
    ) {
        let q = Quantizer::new(TimeDelta::from_micros(quantum_us));
        let (ta, tb) = (TimeStamp::from_micros(a), TimeStamp::from_micros(b));
        let (ra, rb) = (q.round_up(ta), q.round_up(tb));
        prop_assert!(ra >= ta, "rounding never goes backwards");
        prop_assert!(ra.as_micros() - ta.as_micros() < quantum_us);
        prop_assert_eq!(q.round_up(ra), ra, "idempotent");
        if ta <= tb {
            prop_assert!(ra <= rb, "monotone");
        }
    }

    // ---- FFT (frequency view, §3.1) ----

    #[test]
    fn fft_round_trip_and_parseval(
        log_n in 1u32..8,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let xs: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let spec = fft_real(&xs).unwrap();
        // Parseval.
        let te: f64 = xs.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
        // Round trip.
        let mut buf: Vec<Complex> = spec;
        ifft(&mut buf).unwrap();
        for (orig, got) in xs.iter().zip(&buf) {
            prop_assert!((orig - got.re).abs() < 1e-8);
            prop_assert!(got.im.abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(
        log_n in 1u32..6,
        k in -5.0..5.0f64,
    ) {
        let n = 1usize << log_n;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64).sin(), 0.3)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.1 * i as f64, -1.0)).collect();
        let combined: Vec<Complex> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| *x + y.scale(k))
            .collect();
        let mut fa = a.clone();
        fft(&mut fa).unwrap();
        let mut fb = b.clone();
        fft(&mut fb).unwrap();
        let mut fc = combined;
        fft(&mut fc).unwrap();
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fc) {
            let expect = *x + y.scale(k);
            prop_assert!((expect.re - z.re).abs() < 1e-6 * (1.0 + expect.re.abs()));
            prop_assert!((expect.im - z.im).abs() < 1e-6 * (1.0 + expect.im.abs()));
        }
    }

    #[test]
    fn fft_matches_naive_dft(log_n in 1u32..6) {
        let n = 1usize << log_n;
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 1.3).sin()))
            .collect();
        let slow = dft_naive(&xs);
        let mut fast = xs;
        fft(&mut fast).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-7);
            prop_assert!((a.im - b.im).abs() < 1e-7);
        }
    }
}
