//! The incremental renderer's correctness oracle: a [`FrameCache`]
//! frame must be **byte-identical** to a cold full redraw
//! ([`grender::render_scope`]) after any interleaving of ticks,
//! hide-toggles, zoom/bias changes, resizes, and signal add/remove —
//! the full redraw defines the pixels, the cache only accelerates them.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use grender::FrameCache;
use gscope::{IntVar, Scope, SigConfig, Trigger};
use proptest::prelude::*;

struct Rig {
    scope: Scope,
    vars: Vec<IntVar>,
    ticks: u64,
}

impl Rig {
    fn new(width: usize, signals: usize) -> Rig {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("inc", width, 60, clock);
        let mut vars = Vec::new();
        for i in 0..signals {
            let v = IntVar::new(i as i64);
            scope
                .add_signal(
                    format!("s{i}"),
                    v.clone().into(),
                    SigConfig::default()
                        .with_range(0.0, 100.0)
                        .with_show_value(true),
                )
                .unwrap();
            vars.push(v);
        }
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        Rig {
            scope,
            vars,
            ticks: 0,
        }
    }

    fn tick(&mut self) {
        self.ticks += 1;
        for (i, v) in self.vars.iter().enumerate() {
            v.set(((self.ticks as i64 * (7 + i as i64 * 3)) % 100).abs());
        }
        let t = TimeStamp::from_millis(50 * self.ticks);
        self.scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
}

proptest! {
    /// N random ticks / hide-toggles / zoom and bias changes, checking
    /// after every step that the incremental frame equals a cold full
    /// redraw byte-for-byte.
    #[test]
    fn incremental_is_byte_identical_to_full_redraw(
        width in 20usize..70,
        ops in proptest::collection::vec((0u8..5, 0u8..4), 1..40),
    ) {
        let mut rig = Rig::new(width, 2);
        let mut cache = FrameCache::new();
        for &(op, arg) in &ops {
            match op {
                // Bias the mix toward ticks: they exercise the blit.
                0..=2 => {
                    for _ in 0..=arg {
                        rig.tick();
                    }
                }
                3 => {
                    let name = format!("s{}", arg as usize % 2);
                    rig.scope.signal_mut(&name).unwrap().toggle_hidden();
                }
                _ => {
                    rig.scope.set_zoom(1.0 + arg as f64).unwrap();
                    rig.scope.set_bias(arg as f64 * 0.1 - 0.2).unwrap();
                }
            }
            let full = grender::render_scope(&rig.scope);
            prop_assert_eq!(
                cache.render(&rig.scope),
                &full,
                "diverged after op {:?}",
                (op, arg)
            );
        }
        // The cache must actually have taken the fast path somewhere in
        // a tick-heavy run, not fallen back to full redraw throughout.
        if ops.iter().filter(|(op, _)| *op <= 2).count() > 10 {
            prop_assert!(cache.stats().incremental > 0);
        }
    }
}

#[test]
fn resize_invalidates_and_matches() {
    let mut rig = Rig::new(50, 2);
    let mut cache = FrameCache::new();
    for _ in 0..60 {
        rig.tick();
        cache.render(&rig.scope);
    }
    rig.scope.set_size(80, 70).unwrap();
    assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    rig.tick();
    assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    assert_eq!(cache.stats().full, 2, "resize forces a chrome rebuild");
}

#[test]
fn signal_add_and_remove_mid_sweep_match() {
    let mut rig = Rig::new(50, 2);
    let mut cache = FrameCache::new();
    for _ in 0..30 {
        rig.tick();
        cache.render(&rig.scope);
    }
    // Add a signal mid-sweep: widget grows a row, histories differ in
    // length from here on.
    let v = IntVar::new(42);
    rig.scope
        .add_signal("late", v.clone().into(), SigConfig::default())
        .unwrap();
    rig.vars.push(v);
    assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    for _ in 0..30 {
        rig.tick();
        assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    }
    rig.scope.remove_signal("s0").unwrap();
    rig.vars.remove(0);
    assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    for _ in 0..10 {
        rig.tick();
        assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    }
}

#[test]
fn trigger_and_envelope_fall_back_but_stay_identical() {
    let mut rig = Rig::new(40, 1);
    let mut cache = FrameCache::new();
    for _ in 0..50 {
        rig.tick();
        cache.render(&rig.scope);
    }
    rig.scope.set_trigger("s0", Trigger::rising(50.0)).unwrap();
    for _ in 0..10 {
        rig.tick();
        assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    }
    let inc_before = cache.stats().incremental;
    rig.scope.enable_envelope("s0").unwrap();
    for _ in 0..10 {
        rig.tick();
        assert_eq!(*cache.render(&rig.scope), grender::render_scope(&rig.scope));
    }
    assert_eq!(
        cache.stats().incremental,
        inc_before,
        "triggered/enveloped frames must not take the blit path"
    );
}
