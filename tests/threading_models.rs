//! Integration: the §4.3 threading models.
//!
//! "Gscope is thread-safe and can be used by both single-threaded and
//! multi-threaded applications. With multi-threaded applications,
//! typically Gscope is run in its own thread while the application
//! that is generating signals is run in a separate thread."

use std::sync::Arc;

use gel::{Clock, MainLoop, Quantizer, SystemClock, TimeDelta};
use gscope::{attach_scope, EventSink, FloatVar, IntVar, Scope, SigConfig, SigSource};

#[test]
fn scope_in_its_own_thread_application_in_another() {
    // Real clock, real threads: the scope loop runs independently and
    // the application mutates shared variables / pushes events.
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let counter = IntVar::new(0);
    let level = FloatVar::new(0.0);

    let mut scope = Scope::new("mt", 400, 60, Arc::clone(&clock));
    scope
        .add_signal(
            "counter",
            counter.clone().into(),
            SigConfig::default().with_range(0.0, 1e6),
        )
        .unwrap();
    scope
        .add_signal("level", level.clone().into(), SigConfig::default())
        .unwrap();
    scope
        .add_signal(
            "events",
            SigSource::Events,
            SigConfig::default().with_aggregation(gscope::Aggregation::Sum),
        )
        .unwrap();
    let sink: EventSink = scope.event_sink("events").unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(5)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    // The gscope thread (its own main loop, §4.3).
    let mut ml = MainLoop::with_quantizer(
        Arc::clone(&clock),
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    attach_scope(&scope, &mut ml);
    let handle = ml.handle();
    let scope_thread = std::thread::spawn(move || ml.run());

    // Two application threads generating signals concurrently.
    let c2 = counter.clone();
    let app1 = std::thread::spawn(move || {
        for i in 1..=2000 {
            c2.set(i);
            if i % 100 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    });
    let l2 = level.clone();
    let s2 = sink.clone();
    let app2 = std::thread::spawn(move || {
        for i in 0..2000 {
            l2.set((i as f64 / 100.0).sin() * 50.0 + 50.0);
            s2.push(1.0);
            if i % 100 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    });
    app1.join().unwrap();
    app2.join().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    handle.quit();
    scope_thread.join().unwrap();

    let guard = scope.lock();
    assert!(guard.stats().ticks >= 5, "scope polled while apps ran");
    assert_eq!(guard.value_readout("counter").unwrap(), Some(2000.0));
    // Every pushed event is accounted for exactly once: the Sum
    // aggregation over all displayed intervals plus whatever is still
    // pending equals 2000.
    let displayed: f64 = guard
        .signal("events")
        .unwrap()
        .history()
        .iter()
        .flatten()
        .sum();
    assert!(
        displayed <= 2000.0,
        "no event is double-counted ({displayed})"
    );
    assert!(displayed > 0.0, "events reached the display");
}

#[test]
fn single_threaded_io_driven_style() {
    // Everything on one thread: the application work is itself a
    // timeout source sharing the loop with the scope, as in Figure 6.
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let v = IntVar::new(0);
    let mut scope = Scope::new("st", 100, 60, Arc::clone(&clock));
    scope
        .add_signal("v", v.clone().into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(4)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let mut ml = MainLoop::with_quantizer(
        Arc::clone(&clock),
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    attach_scope(&scope, &mut ml);
    // "Application logic" as a non-blocking periodic callback.
    let v2 = v.clone();
    ml.add_timeout(
        TimeDelta::from_millis(2),
        Box::new(move |_| {
            v2.add(1);
            gel::Continue::Keep
        }),
    );
    let handle = ml.handle();
    ml.add_oneshot(TimeDelta::from_millis(80), move |_| handle.quit());
    ml.run();

    let guard = scope.lock();
    assert!(guard.stats().ticks >= 10);
    assert!(v.get() >= 20, "application callback ran interleaved");
    let window = guard.display_cols("v").to_vec();
    // The trace is non-decreasing (counter polled while incrementing).
    let values: Vec<f64> = window.iter().flatten().copied().collect();
    for pair in values.windows(2) {
        assert!(pair[1] >= pair[0]);
    }
}
