//! Integration: the Figures 4–5 pipeline — `netsim` traffic →
//! gscope signals → rendered widget — in miniature, asserting the
//! paper's qualitative claims end to end.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, IntVar, Scope, SigConfig, SigSource};
use netsim::{Mxtraf, MxtrafConfig, NetConfig, QueueKind};

struct MiniRun {
    min_cwnd_displayed: f64,
    timeouts: u64,
    marks: u64,
    drops: u64,
    trace_pixels: usize,
}

/// A 20-second miniature of the Figure 4/5 experiment.
fn mini_experiment(ecn: bool) -> MiniRun {
    let mut traffic = Mxtraf::new(MxtrafConfig {
        ecn,
        net: NetConfig {
            queue: if ecn {
                QueueKind::red_default(100)
            } else {
                QueueKind::DropTail { capacity: 50 }
            },
            ..NetConfig::default()
        },
        initial_elephants: 8,
        max_elephants: 16,
        ..MxtrafConfig::default()
    });

    let clock = VirtualClock::new();
    let mut scope = Scope::new("mini", 200, 80, Arc::new(clock.clone()));
    let elephants = IntVar::new(8);
    scope
        .add_signal(
            "elephants",
            elephants.clone().into(),
            SigConfig::default().with_range(0.0, 40.0),
        )
        .unwrap();
    scope
        .add_signal(
            "CWND",
            SigSource::Events,
            SigConfig::default()
                .with_range(0.0, 64.0)
                .with_aggregation(Aggregation::Minimum),
        )
        .unwrap();
    let sink = scope.event_sink("CWND").unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(100)).unwrap();
    scope.start();

    let probe = traffic.elephant_flow(0);
    let warmup = TimeDelta::from_secs(5);
    traffic.run_until(TimeStamp::ZERO + warmup);
    let mut t = TimeStamp::ZERO;
    let horizon = TimeStamp::from_secs(20);
    while t < horizon {
        let tick_end = t + TimeDelta::from_millis(100);
        while t < tick_end {
            t += TimeDelta::from_millis(10);
            traffic.run_until(t + warmup);
            sink.push(traffic.net().cwnd(probe));
        }
        if t == TimeStamp::from_secs(10) {
            traffic.set_elephants(16);
            elephants.set(16);
        }
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    // Render and count trace pixels so the whole pipeline is covered.
    let color = scope.signal("CWND").unwrap().color();
    let fb = grender::render_scope(&scope);
    let trace_pixels = fb.count_color(color);

    let window = scope.display_cols("CWND").to_vec();
    let min_cwnd_displayed = window
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    MiniRun {
        min_cwnd_displayed,
        timeouts: traffic.total_timeouts(),
        marks: traffic.net().queue_stats().marked,
        drops: traffic.net().queue_stats().dropped,
        trace_pixels,
    }
}

#[test]
fn figure4_shape_tcp_cwnd_collapses_to_one() {
    let run = mini_experiment(false);
    assert!(run.timeouts > 0, "DropTail congestion must cause timeouts");
    assert!(run.drops > 0);
    assert_eq!(run.marks, 0, "DropTail never marks");
    assert!(
        run.min_cwnd_displayed <= 1.0,
        "the displayed CWND trace must touch 1, got {}",
        run.min_cwnd_displayed
    );
    assert!(run.trace_pixels > 50, "trace must be drawn");
}

#[test]
fn figure5_shape_ecn_cwnd_never_reaches_one() {
    let run = mini_experiment(true);
    assert_eq!(run.timeouts, 0, "ECN flows must not time out");
    assert_eq!(run.drops, 0, "RED marking prevents overflow");
    assert!(run.marks > 0);
    assert!(
        run.min_cwnd_displayed > 1.0,
        "the displayed ECN CWND never touches 1, got {}",
        run.min_cwnd_displayed
    );
    assert!(run.trace_pixels > 50);
}

#[test]
fn ecn_achieves_comparable_goodput_with_fewer_losses() {
    // The paper's conclusion: "this experiment indicates that ECN can
    // potentially improve flow throughput" (timeouts hurt).
    let goodput = |ecn: bool| {
        let mut traffic = Mxtraf::new(MxtrafConfig {
            ecn,
            net: NetConfig {
                queue: if ecn {
                    QueueKind::red_default(100)
                } else {
                    QueueKind::DropTail { capacity: 50 }
                },
                ..NetConfig::default()
            },
            initial_elephants: 8,
            max_elephants: 8,
            ..MxtrafConfig::default()
        });
        traffic.run_until(TimeStamp::from_secs(30));
        let delivered: u64 = (0..8)
            .map(|i| traffic.net().flow_delivered(traffic.elephant_flow(i)))
            .sum();
        (delivered, traffic.total_timeouts())
    };
    let (tcp_delivered, tcp_timeouts) = goodput(false);
    let (ecn_delivered, ecn_timeouts) = goodput(true);
    assert!(tcp_timeouts > 0);
    assert_eq!(ecn_timeouts, 0);
    // ECN should not be materially worse, and typically better.
    assert!(
        ecn_delivered as f64 >= tcp_delivered as f64 * 0.9,
        "ECN goodput {ecn_delivered} vs TCP {tcp_delivered}"
    );
}
