//! Integration: the sharded streaming hub under pressure.
//!
//! - A subscriber behind a stalled link overflows its bounded output
//!   queue, is shed, and migrates to store-backed catch-up instead of
//!   growing the queue without bound; when the link drains it rejoins
//!   the live feed with no gap in the delivered tuple sequence.
//! - A population of netsim-shaped lossy subscribers soaks the hub:
//!   every byte on every wire stays protocol-clean and every queue
//!   stays within its configured bound.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use gel::TimeStamp;
use gnet::{HubConfig, ScopeClient, ScopeServer};
use gscope::Tuple;
use gstore::{Store, StoreConfig};
use netsim::{LinkClock, LinkConfig, SimConn};

fn tmp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gnet-hub-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drains `conn` into `sink`; returns bytes read this call.
fn drain(conn: &SimConn, buf: &mut [u8], sink: &mut Vec<u8>) -> usize {
    let mut total = 0;
    while let Ok(n) = conn.read_bytes(buf) {
        if n == 0 {
            break;
        }
        sink.extend_from_slice(&buf[..n]);
        total += n;
    }
    total
}

#[test]
fn slow_subscriber_migrates_to_store_catch_up() {
    let cfg = HubConfig {
        shards: 1,
        outbuf_cap: 16 << 10,
        ..HubConfig::default()
    };
    let outbuf_cap = cfg.outbuf_cap;
    let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).unwrap();
    let dir = tmp_store("catchup");
    server.set_store(Store::open(&dir, StoreConfig::default()).unwrap());
    let addr = server.local_addr().unwrap();

    // Subscriber behind a link whose send window is far smaller than
    // the data rate: writes stall, the queue fills, the hub must shed.
    let link = LinkConfig {
        buf_bytes: 2 << 10,
        ..LinkConfig::default()
    };
    let (server_end, client_end) = SimConn::pair(link, LinkClock::real());
    server.add_conn(Box::new(server_end));
    client_end.write_bytes(b"!sub\n").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && server.client_count() < 1 {
        server.poll();
    }
    for _ in 0..50 {
        server.poll();
    }

    let mut tx = ScopeClient::connect(addr).unwrap();
    let mut sent = 0u64;
    let total = 20_000u64;

    // Phase 1: flood without draining the subscriber. The queue is
    // bounded, so the hub must shed and demote the client.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut demoted = false;
    while Instant::now() < deadline && (!demoted || sent < total / 2) {
        for _ in 0..64 {
            if sent >= total {
                break;
            }
            tx.send_at(
                TimeStamp::from_micros(1_000 + sent * 10),
                "hub.flood",
                sent as f64,
            );
            sent += 1;
        }
        let _ = tx.pump();
        server.poll();
        let infos = server.client_stats();
        assert!(
            infos.iter().all(|c| c.queue_bytes <= outbuf_cap),
            "queue grew past its bound: {infos:?}"
        );
        if infos.iter().any(|c| c.catching_up) {
            demoted = true;
        }
    }
    assert!(demoted, "stalled subscriber was never demoted to catch-up");
    let stats = server.stats();
    assert!(stats.shed_events >= 1, "{stats:?}");
    assert!(stats.catch_ups_entered >= 1, "{stats:?}");

    // Phase 2: finish the flood while the subscriber drains. Catch-up
    // replays the shed span from the store, then hands back to live.
    let mut rx_bytes = Vec::new();
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        for _ in 0..64 {
            if sent >= total {
                break;
            }
            tx.send_at(
                TimeStamp::from_micros(1_000 + sent * 10),
                "hub.flood",
                sent as f64,
            );
            sent += 1;
        }
        let _ = tx.pump();
        server.poll();
        drain(&client_end, &mut buf, &mut rx_bytes);
        let infos = server.client_stats();
        assert!(infos.iter().all(|c| c.queue_bytes <= outbuf_cap));
        if sent >= total && infos.iter().all(|c| !c.catching_up) {
            // Fully caught up; a few more polls flush the tail.
            let mut quiet = 0;
            while quiet < 50 {
                server.poll();
                if drain(&client_end, &mut buf, &mut rx_bytes) == 0 {
                    quiet += 1;
                } else {
                    quiet = 0;
                }
            }
            break;
        }
    }
    let stats = server.stats();
    assert!(stats.catch_ups_completed >= 1, "{stats:?}");

    // The subscriber's view: live tuples, catch-up markers, and —
    // across the shed — no gap in the delivered sequence.
    let text = String::from_utf8(rx_bytes).unwrap();
    assert!(text.contains("!catchup-begin"), "missing begin marker");
    assert!(text.contains("!catchup-end"), "missing end marker");
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut delivered = 0u64;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let t = Tuple::parse_line(trimmed, 1).unwrap();
        delivered += 1;
        seen.insert(t.time.as_micros());
    }
    let expected: BTreeSet<u64> = (0..total).map(|i| 1_000 + i * 10).collect();
    let missing: Vec<u64> = expected.difference(&seen).take(10).copied().collect();
    assert!(
        missing.is_empty(),
        "gaps in delivered sequence (first 10): {missing:?}; got {} of {}",
        seen.len(),
        expected.len()
    );

    // Reconciliation identity, exact across shed → catch-up → rejoin:
    // every tuple ever queued toward the subscriber was either dropped
    // by a shed or written to the wire, so with the queue drained,
    // `tuples_out - tuples_shed` must equal the tuple lines the peer
    // actually read — duplicates from the catch-up overlap included.
    let infos = server.client_stats();
    let sub = infos.iter().find(|c| c.subscribed).unwrap();
    assert_eq!(sub.queue_tuples, 0, "queue not drained: {sub:?}");
    assert!(sub.tuples_shed > 0, "shed happened but nothing counted");
    assert_eq!(
        sub.tuples_out - sub.tuples_shed,
        delivered,
        "per-client accounting does not reconcile: {sub:?}"
    );
}

#[test]
fn lossy_netsim_population_stays_protocol_clean() {
    // Smoke-scale by default; the CI soak job turns it up via env.
    let clients: usize = std::env::var("GNET_SOAK_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let tuples: u64 = std::env::var("GNET_SOAK_TUPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);

    let cfg = HubConfig {
        shards: 4,
        ..HubConfig::default()
    };
    let outbuf_cap = cfg.outbuf_cap;
    let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let mut ends = Vec::with_capacity(clients);
    for i in 0..clients {
        let link = LinkConfig {
            loss_rate: 0.01,
            latency: gel::TimeDelta::from_micros(200),
            seed: i as u64 + 1,
            ..LinkConfig::default()
        };
        let (server_end, mut client_end) = SimConn::pair(link, LinkClock::real());
        client_end.set_label(format!("soak-{i}"));
        server.add_conn(Box::new(server_end));
        client_end.write_bytes(b"!sub\n").unwrap();
        ends.push(client_end);
    }
    // Barrier: every `!sub` line must have been *processed* before the
    // flood starts. The subscribe commands ride the same shaped links
    // as the data (latency + loss penalties), so merely counting
    // adopted connections would race a still-in-flight subscription —
    // and a tuple fanned out before a client subscribes is rightfully
    // never delivered to it (no store, no catch-up).
    let deadline = Instant::now() + Duration::from_secs(10);
    let subscribed = |server: &ScopeServer| {
        server
            .client_stats()
            .iter()
            .filter(|c| c.subscribed)
            .count()
    };
    while Instant::now() < deadline
        && (server.client_count() < clients || subscribed(&server) < clients)
    {
        server.poll();
    }
    assert_eq!(server.client_count(), clients);
    assert_eq!(subscribed(&server), clients, "subscriptions not all live");

    // One binary producer feeds the whole population.
    let mut tx = ScopeClient::connect_binary(addr).unwrap();
    let mut received: Vec<Vec<u8>> = vec![Vec::new(); clients];
    let mut buf = [0u8; 8192];
    let mut fed = 0u64;
    let mut max_queue = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for _ in 0..32 {
            if fed >= tuples {
                break;
            }
            tx.send_at(
                TimeStamp::from_micros(1_000 + fed * 100),
                "soak.sig",
                fed as f64,
            );
            fed += 1;
        }
        let _ = tx.pump();
        server.poll();
        for (end, sink) in ends.iter().zip(received.iter_mut()) {
            drain(end, &mut buf, sink);
        }
        for c in server.client_stats() {
            max_queue = max_queue.max(c.queue_bytes);
        }
        let newlines = |v: &Vec<u8>| v.iter().filter(|&&b| b == b'\n').count() as u64;
        if fed >= tuples && received.iter().all(|v| newlines(v) >= tuples) {
            break;
        }
        if Instant::now() >= deadline {
            let lag: Vec<usize> = received
                .iter()
                .enumerate()
                .filter(|(_, v)| newlines(v) < tuples)
                .map(|(i, _)| i)
                .collect();
            let suspect: Vec<_> = server
                .client_stats()
                .into_iter()
                .filter(|c| c.queue_bytes > 0 || c.tuples_out < tuples)
                .collect();
            panic!(
                "soak did not converge: fed={fed} min_rx={:?} laggards={lag:?} stats={:?} suspects={suspect:?}",
                received.iter().map(newlines).min(),
                server.stats()
            );
        }
    }

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    assert_eq!(stats.parse_errors, 0, "{stats:?}");
    assert_eq!(stats.tuples_received, tuples, "{stats:?}");
    assert!(max_queue <= outbuf_cap, "queue bound violated: {max_queue}");
    assert_eq!(stats.shed_events, 0, "unshaped load should never shed");

    // With no sheds and every queue drained, each subscriber's books
    // must balance exactly: queued == written == received.
    for c in server.client_stats() {
        if !c.subscribed {
            continue; // the producer connection queues nothing out
        }
        assert_eq!(
            c.tuples_out - c.tuples_shed - c.queue_tuples,
            tuples,
            "per-client accounting does not reconcile: {c:?}"
        );
    }

    // Every subscriber got every tuple, protocol-clean text.
    for (i, bytes) in received.iter().enumerate() {
        assert!(!bytes.contains(&0u8), "frame sentinel on text wire {i}");
        let text = std::str::from_utf8(bytes).unwrap();
        let mut times = BTreeSet::new();
        for line in text.lines() {
            let t = Tuple::parse_line(line, 1).unwrap();
            times.insert(t.time.as_micros());
        }
        assert_eq!(times.len() as u64, tuples, "client {i} missed tuples");
    }
}
