//! Self-scoping integration: a second scope watches the first scope's
//! own telemetry, live, through ordinary `FUNC` signals.
//!
//! This is the observability counterpart of the paper's §4.5
//! microbenchmarks — instead of measuring gscope's overhead offline,
//! the stack measures itself with the same machinery it offers
//! applications: the event loop and the primary scope record into a
//! shared `gtel` registry, and a meta-scope polls that registry via
//! [`gscope::metric_signal`].

use std::sync::Arc;

use gel::{Clock, MainLoop, TimeDelta, TimeStamp, VirtualClock};
use gscope::{
    attach_scope, metric_signal, IntVar, Scope, SigConfig, StatsExport, Tuple, TupleReader,
    TupleWriter,
};
use gtel::{HistogramStat, Registry};

const PERIOD_MS: u64 = 10;
const RUN_MS: u64 = 500;

#[test]
fn meta_scope_watches_primary_scope_live() {
    // One registry for the whole "process": loop + primary scope.
    let registry = Registry::shared();
    let clock = VirtualClock::new();

    // The application scope, watching an ordinary application signal.
    let app_var = IntVar::new(21);
    let mut primary = Scope::new("primary", 320, 120, Arc::new(clock.clone()));
    primary.set_telemetry(Arc::clone(&registry));
    primary
        .add_signal("app", app_var.clone().into(), SigConfig::default())
        .unwrap();
    primary
        .set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .unwrap();
    primary.start();
    let primary = primary.into_shared();

    // The loop records into the same registry; created before the
    // meta-scope so its metrics exist for metric_signal to find.
    let mut ml = MainLoop::new(Arc::new(clock.clone()));
    ml.set_telemetry(Arc::clone(&registry));

    // The meta-scope, watching the primary's telemetry. Its own
    // counters go to a private (default) registry so it does not
    // perturb the numbers it is displaying.
    let mut meta = Scope::new("meta", 320, 120, Arc::new(clock.clone()));
    meta.add_signal(
        "watched.ticks",
        metric_signal(&registry, "scope.ticks", HistogramStat::Count).unwrap(),
        SigConfig::default(),
    )
    .unwrap();
    meta.add_signal(
        "watched.poll_p99_ns",
        metric_signal(&registry, "scope.tick.poll_ns", HistogramStat::P99).unwrap(),
        SigConfig::default(),
    )
    .unwrap();
    meta.add_signal(
        "watched.loop_iters",
        metric_signal(&registry, "gel.loop.iterations", HistogramStat::Count).unwrap(),
        SigConfig::default(),
    )
    .unwrap();
    meta.set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .unwrap();
    meta.start();
    let meta = meta.into_shared();

    attach_scope(&primary, &mut ml);
    attach_scope(&meta, &mut ml);
    ml.run_until(TimeStamp::from_millis(RUN_MS));

    // The loop instrumented itself into the shared registry.
    let expected_ticks = RUN_MS / PERIOD_MS;
    assert!(
        registry.counter("gel.loop.iterations").get() >= expected_ticks,
        "loop iterations recorded"
    );
    assert!(registry.histogram("gel.tick.lateness_ns").count() > 0);
    assert!(registry.histogram("gel.loop.iteration_ns").count() > 0);

    // The primary scope instrumented itself too: one poll histogram
    // sample per tick, plus the per-signal breakdown.
    let polls = registry.histogram("scope.tick.poll_ns").count();
    assert!(
        polls >= expected_ticks - 2,
        "primary recorded its polls: {polls}"
    );
    assert!(registry.histogram("scope.signal.app.poll_ns").count() > 0);

    // And the meta-scope *displayed* those numbers as live signals.
    let guard = meta.lock();
    let watched_ticks = guard
        .value_readout("watched.ticks")
        .unwrap()
        .expect("meta scope polled the tick counter");
    assert!(
        watched_ticks >= (expected_ticks - 2) as f64,
        "non-trivial readout: {watched_ticks}"
    );
    let poll_p99 = guard
        .value_readout("watched.poll_p99_ns")
        .unwrap()
        .expect("meta scope polled the poll-latency histogram");
    assert!(poll_p99 > 0.0, "real (wall-clock) poll latency: {poll_p99}");
    let loop_iters = guard
        .value_readout("watched.loop_iters")
        .unwrap()
        .expect("meta scope polled the loop counter");
    assert!(loop_iters > 0.0);

    // The watched counter is monotone across the displayed history —
    // the meta-scope saw the primary making progress, not one frozen
    // sample.
    let history: Vec<f64> = guard
        .signal("watched.ticks")
        .unwrap()
        .history()
        .last_values(usize::MAX);
    assert!(
        history.len() > 5,
        "several samples displayed: {}",
        history.len()
    );
    assert!(
        history.windows(2).all(|w| w[0] <= w[1]),
        "tick counter is monotone in the display: {history:?}"
    );
    let growth = history.last().unwrap() - history.first().unwrap();
    assert!(growth > 0.0, "the displayed counter advanced: {history:?}");
}

#[test]
fn stats_export_round_trips_through_tuple_format() {
    // Drive a scope for a while, export its stats as §3.3 tuples,
    // write + re-read them through the tuple codec, and check the
    // stream carries the same numbers.
    let clock = VirtualClock::new();
    let var = IntVar::new(3);
    let mut scope = Scope::new("export", 160, 80, Arc::new(clock.clone()));
    scope
        .add_signal("v", var.into(), SigConfig::default())
        .unwrap();
    scope
        .set_polling_mode(TimeDelta::from_millis(PERIOD_MS))
        .unwrap();
    scope.start();
    let shared = scope.into_shared();
    let mut ml = MainLoop::new(Arc::new(clock.clone()));
    attach_scope(&shared, &mut ml);
    ml.run_until(TimeStamp::from_millis(200));

    let now = clock.now();
    let scope_tuples = shared.lock().stats().to_tuples(now);
    let loop_tuples = ml.stats().to_tuples(now);
    assert_eq!(scope_tuples.len(), 5);
    assert_eq!(loop_tuples.len(), 7);

    let mut w = TupleWriter::new(Vec::new());
    for t in scope_tuples.iter().chain(loop_tuples.iter()) {
        w.write_tuple(t).unwrap();
    }
    let bytes = w.into_inner();
    let round: Vec<Tuple> = TupleReader::new(bytes.as_slice()).read_all().unwrap();
    assert_eq!(round.len(), 12);

    let find = |name: &str| -> f64 {
        round
            .iter()
            .find(|t| t.name.as_deref() == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from stream"))
            .value
    };
    let ticks = find("scope.ticks");
    assert!(ticks >= 15.0, "scope ticked: {ticks}");
    assert_eq!(find("scope.recording_failed"), 0.0);
    assert!(find("loop.iterations") >= ticks, "loop drove the scope");
    assert!(round.iter().all(|t| t.time == now));
}
