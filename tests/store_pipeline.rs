//! Integration: the `gstore` recording pipeline end to end — a scope
//! records polled samples into a segmented store, a reader seeks into
//! the history without touching prior segments, the frames replay
//! through scope playback, and a late-joining display catches up from
//! a server-attached store.

use std::sync::Arc;

use gel::{Clock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gnet::ScopeServer;
use gscope::{IntVar, Scope, SigConfig, SigSource, TupleSource};
use gstore::{Store, StoreConfig, StoreReader};

fn tick_at(ms: u64) -> TickInfo {
    TickInfo {
        now: TimeStamp::from_millis(ms),
        scheduled: TimeStamp::from_millis(ms),
        missed: 0,
    }
}

/// Small segments so a short recording spans several files.
fn small_segments() -> StoreConfig {
    StoreConfig {
        block_bytes: 256,
        block_frames: 16,
        segment_bytes: 2048,
        ..StoreConfig::default()
    }
}

#[test]
fn scope_records_into_store_then_seeks_and_replays() {
    let dir = std::env::temp_dir().join(format!("gstore-pipeline-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Record: a polled counter, one sample per 50 ms tick, straight
    // into a store instead of a flat text file.
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("rec", 16, 60, Arc::clone(&clock));
    let v = IntVar::new(0);
    scope
        .add_signal("v", v.clone().into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    scope.start_recording_sink(Store::open(&dir, small_segments()).unwrap());
    for i in 0..600i64 {
        v.set(i);
        scope.tick(&tick_at(50 * (i as u64 + 1)));
    }
    assert_eq!(scope.stats().recorded_tuples, 600);
    assert!(scope.recording_error().is_none(), "recording stayed clean");
    let sink = scope.stop_recording().expect("recorder attached");
    assert!(scope.recording_error().is_none(), "flush succeeded");
    drop(sink);

    // Full scan: every recorded frame comes back, in order.
    let mut reader = StoreReader::open(&dir).unwrap();
    assert!(
        reader.segment_count() >= 4,
        "recording should span several segments, got {}",
        reader.segment_count()
    );
    let total_segments = reader.segment_count() as u64;
    let all = reader.collect_tuples().unwrap();
    assert_eq!(all.len(), 600);
    for (i, t) in all.iter().enumerate() {
        assert_eq!(t.time, TimeStamp::from_millis(50 * (i as u64 + 1)));
        assert_eq!(t.value, i as f64);
        assert_eq!(t.name.as_deref(), Some("v"));
    }

    // Seek to the last 5 s of a 30 s recording: the index walks
    // straight to the target segment — prior segments are never read.
    let mut reader = StoreReader::open(&dir).unwrap();
    reader.seek(TimeStamp::from_millis(25_000)).unwrap();
    let after_seek = reader.stats();
    assert_eq!(
        after_seek.segments_indexed, 1,
        "seek must index only the landing segment"
    );
    assert_eq!(after_seek.blocks_decoded, 0, "seek decodes nothing");
    assert!(after_seek.index_probes > 0, "seek is index-driven");

    let tail = reader.collect_tuples().unwrap();
    assert_eq!(tail.len(), 101, "frames at 25.000 s .. 30.000 s");
    assert_eq!(tail.first().unwrap().time, TimeStamp::from_millis(25_000));
    assert_eq!(tail.first().unwrap().value, 499.0);
    assert_eq!(tail.last().unwrap().value, 599.0);
    let done = reader.stats();
    assert!(
        done.segments_indexed < total_segments,
        "tail read must not index all {total_segments} segments \
         (indexed {})",
        done.segments_indexed
    );
    assert!(
        done.frames_decoded < 200,
        "tail read decodes near the seek target only, not the full \
         600-frame history (decoded {})",
        done.frames_decoded
    );

    // Replay the tail through scope playback: seek feeds
    // `set_playback_source` directly, so `replay --from T` never
    // materializes the skipped prefix.
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let mut replay = Scope::new("replay", 200, 60, clock);
    replay.set_period(TimeDelta::from_millis(50)).unwrap();
    let mut reader = StoreReader::open(&dir).unwrap();
    reader.seek(TimeStamp::from_millis(25_000)).unwrap();
    replay
        .set_playback_source(&mut reader as &mut dyn TupleSource)
        .unwrap();
    replay.start();
    let mut ticks = 0;
    while replay.playback_active() && ticks < 400 {
        ticks += 1;
        replay.tick(&tick_at(50 * ticks));
    }
    let cols: Vec<f64> = replay
        .display_cols("v")
        .to_vec()
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(
        cols.first(),
        Some(&499.0),
        "playback starts at the seek point"
    );
    assert_eq!(cols.last(), Some(&599.0), "playback reaches the end");
    for w in cols.windows(2) {
        assert!(w[1] >= w[0], "recorded ramp replays monotone");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_catch_up_replays_recent_window_from_store() {
    let dir = std::env::temp_dir().join(format!("gstore-pipeline-catchup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // History: 200 frames at 10 ms spacing, as the server's store tee
    // would have accumulated them.
    let mut store = Store::open(&dir, small_segments()).unwrap();
    for i in 1..=200u64 {
        store
            .append(TimeStamp::from_millis(10 * i), i as f64, Some("net.sig"))
            .unwrap();
    }

    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    server.set_store(store);

    // A display that joins late: catch-up replays only the last 500 ms
    // of history (51 frames: 1.500 s ..= 2.000 s), not all 200.
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("late", 200, 60, clock);
    scope
        .add_signal(
            "net.sig",
            SigSource::Buffer,
            SigConfig::default().with_range(0.0, 300.0),
        )
        .unwrap();
    scope.set_delay(TimeDelta::from_millis(500));
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let replayed = server.add_scope_with_catch_up(Arc::clone(&scope), TimeDelta::from_millis(500));
    assert_eq!(replayed, 51, "window covers 1.500 s ..= 2.000 s");
    assert_eq!(server.stats().catch_up_tuples, 51);
    assert_eq!(server.stats().store_errors, 0);

    // Drain the buffered history onto the display.
    {
        let mut guard = scope.lock();
        for i in 1..=60u64 {
            guard.tick(&tick_at(50 * i));
        }
    }
    let guard = scope.lock();
    let vals: Vec<f64> = guard
        .display_cols("net.sig")
        .to_vec()
        .into_iter()
        .flatten()
        .collect();
    assert!(!vals.is_empty(), "replayed history reaches the display");
    assert_eq!(*vals.last().unwrap(), 200.0, "newest stored frame visible");
    assert!(
        vals.iter().all(|&x| x >= 150.0),
        "only the window's frames were replayed (min {:?})",
        vals.iter().cloned().fold(f64::INFINITY, f64::min)
    );
    assert_eq!(guard.buffer().late_drops(), 0, "delay covered the window");

    let _ = std::fs::remove_dir_all(&dir);
}
