//! Failure injection: the library must degrade gracefully, not
//! corrupt state, when sinks fail, peers vanish, or inputs are hostile.

use std::io::Write;
use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{IntVar, Scope, ScopeError, SigConfig, SigSource, Tuple, TupleReader};

fn tick_at(ms: u64) -> TickInfo {
    TickInfo {
        now: TimeStamp::from_millis(ms),
        scheduled: TimeStamp::from_millis(ms),
        missed: 0,
    }
}

/// A writer that fails after `ok_writes` successful writes.
struct FailingSink {
    ok_writes: usize,
}

impl Write for FailingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.ok_writes == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "disk full",
            ));
        }
        self.ok_writes -= 1;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn recording_sink_failure_stops_recording_but_not_the_scope() {
    let clock = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("rec", 16, 60, clock);
    let v = IntVar::new(1);
    scope
        .add_signal("v", v.clone().into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    scope.start_recording(FailingSink { ok_writes: 3 });

    for i in 1..=10 {
        scope.tick(&tick_at(50 * i));
    }
    // Recording died early (a tuple may take several low-level writes),
    // with the error preserved…
    assert!(!scope.is_recording());
    assert!(scope.recording_error().unwrap().contains("disk full"));
    let recorded = scope.stats().recorded_tuples;
    assert!((1..=3).contains(&recorded), "recorded {recorded}");
    // …but polling continued unharmed.
    assert_eq!(scope.stats().ticks, 10);
    assert_eq!(scope.display_cols("v").to_vec().len(), 10);
    // A new recording can start afterwards.
    scope.start_recording(Vec::new());
    assert!(scope.is_recording());
    assert!(scope.recording_error().is_none());
}

#[test]
fn hostile_tuple_streams_are_rejected_precisely() {
    // Deep line numbers, NaN, infinities, negative time, huge values.
    let cases: &[(&str, usize)] = &[
        ("10 1 ok\n20 nan bad\n", 2),
        ("10 1 ok\n\n# c\n20 inf bad\n", 4),
        ("10 1 ok\n-1 1 bad\n", 2),
        ("10 1 ok\n20 2 n extra junk\n", 2),
    ];
    for (input, bad_line) in cases {
        let mut r = TupleReader::new(input.as_bytes());
        assert!(r.next_tuple().unwrap().is_some());
        let err = loop {
            match r.next_tuple() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("input {input:?} should fail"),
                Err(e) => break e,
            }
        };
        let ScopeError::TupleParse { line, .. } = err else {
            panic!("wrong error kind for {input:?}: {err}");
        };
        assert_eq!(line, *bad_line, "line number for {input:?}");
    }
}

#[test]
fn enormous_values_round_trip_without_panic() {
    for v in [f64::MAX, f64::MIN, f64::MIN_POSITIVE, -0.0] {
        let t = Tuple::new(TimeStamp::from_millis(1), v, "x");
        let parsed = Tuple::parse_line(&t.to_line(), 1).unwrap();
        assert_eq!(parsed.value.to_bits(), v.to_bits());
    }
}

#[test]
fn scope_survives_signal_removal_mid_playback() {
    let clock = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("pb", 16, 60, clock);
    scope.set_period(TimeDelta::from_millis(50)).unwrap();
    scope
        .set_playback_mode(vec![
            Tuple::new(TimeStamp::ZERO, 1.0, "a"),
            Tuple::new(TimeStamp::from_millis(200), 2.0, "a"),
            Tuple::new(TimeStamp::from_millis(400), 3.0, "b"),
        ])
        .unwrap();
    scope.start();
    scope.tick(&tick_at(50));
    scope.remove_signal("a").unwrap();
    // Remaining ticks must not panic; "b" still replays.
    for i in 2..=12 {
        scope.tick(&tick_at(50 * i));
    }
    assert!(scope.display_cols("b").to_vec().contains(&Some(3.0)));
}

#[test]
fn server_survives_client_that_sends_garbage_then_dies() {
    use gnet::ScopeServer;
    let clock = Arc::new(VirtualClock::new());
    let scope = Scope::new("garbage", 16, 60, clock).into_shared();
    scope.lock().set_delay(TimeDelta::from_secs(100));
    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    server.add_scope(Arc::clone(&scope));
    let addr = server.local_addr().unwrap();
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        // Binary junk including invalid UTF-8, then a valid line, then
        // a half line cut off by disconnect.
        s.write_all(b"\xff\xfe\x00garbage\n5 1 good\n999 incomple")
            .unwrap();
        s.flush().unwrap();
    } // disconnect
    for _ in 0..2000 {
        let _ = server.poll();
        if server.client_count() == 0 && server.stats().tuples_received == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let stats = server.stats();
    assert_eq!(stats.tuples_received, 1, "the one good line got through");
    assert!(stats.parse_errors >= 1);
    assert_eq!(stats.disconnects, 1);
    assert!(scope.lock().signal("good").is_some());
}

#[test]
fn event_loop_callback_panics_do_not_poison_shared_scope() {
    // A panicking application callback must not leave the scope mutex
    // poisoned (parking_lot mutexes do not poison) or the loop broken.
    let clock = Arc::new(VirtualClock::new());
    let scope = {
        let mut s = Scope::new("p", 16, 60, Arc::clone(&clock) as Arc<dyn gel::Clock>);
        s.add_signal("v", IntVar::new(1).into(), SigConfig::default())
            .unwrap();
        s.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        s.start();
        s.into_shared()
    };
    let scope2 = Arc::clone(&scope);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _guard = scope2.lock();
        panic!("application bug");
    }));
    assert!(result.is_err());
    // The scope is still usable.
    scope.lock().tick(&tick_at(50));
    assert_eq!(scope.lock().stats().ticks, 1);
}

#[test]
fn buffer_signal_with_no_producer_shows_gaps_not_garbage() {
    let clock = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("empty", 8, 60, clock);
    scope
        .add_signal("quiet", SigSource::Buffer, SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    for i in 1..=8 {
        scope.tick(&tick_at(50 * i));
    }
    let window = scope.display_cols("quiet").to_vec();
    assert_eq!(window.len(), 8);
    assert!(window.iter().all(|v| v.is_none()), "all columns blank");
    assert_eq!(scope.value_readout("quiet").unwrap(), None);
}

#[test]
fn zero_and_negative_parameter_edge_cases() {
    let clock = Arc::new(VirtualClock::new());
    let mut scope = Scope::new("edge", 8, 60, clock);
    assert!(matches!(
        scope.set_polling_mode(TimeDelta::ZERO),
        Err(ScopeError::OutOfRange { .. })
    ));
    assert!(scope.set_zoom(f64::INFINITY).is_err());
    assert!(scope.set_bias(f64::NAN).is_err());
    // Config with NaN range is rejected at add time.
    let err = scope
        .add_signal(
            "bad",
            IntVar::new(0).into(),
            SigConfig::default().with_range(f64::NAN, 10.0),
        )
        .unwrap_err();
    assert!(matches!(err, ScopeError::OutOfRange { .. }));
    assert_eq!(scope.signal_count(), 0, "failed add leaves no residue");
}
