//! Integration: cross-process causality over a shaped netsim link.
//!
//! Two "processes" share one test. The hub runs the real pipeline —
//! `ScopeServer` → `Scope` → `FrameCache` — on the local wire clock.
//! The producer is hand-rolled on top of a `SimConn` whose wire clock
//! runs `SKEW_US` fast, so every timestamp it quotes (PONG legs,
//! origin `send_us`, flush span bounds) is wrong by a known constant
//! that the hub's estimator must recover through a link with real
//! latency and jitter.
//!
//! Asserts the tentpole acceptance criteria end to end:
//! - the negotiated PING/PONG exchange converges on the true skew
//!   with an error bound at the link-delay scale, far below the skew
//!   it corrects;
//! - per-stage lateness deltas (Wire → Parse → Route → Push → Drain →
//!   Render) telescope to the e2e total within the quoted clock
//!   error;
//! - the two flight-recorder bundles merge via `gtool trace merge`
//!   into one Chrome trace whose producer→hub flow edges line up on
//!   the common timeline within latency + jitter + error.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gnet::clock::wire_now_us;
use gnet::wire::{self, BatchEncoder, Msg, Origin};
use gnet::{HubConfig, ScopeServer};
use gscope::{Scope, SigConfig, SigSource};
use gstore::FlightRecorder;
use gtel::TraceLog;
use netsim::{LinkClock, LinkConfig, SimConn};

/// How far ahead the producer's clock runs.
const SKEW_US: u64 = 2_500;
const LATENCY_US: u64 = 400;
const JITTER_US: u64 = 300;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fleet-clock-{tag}-{}-{:x}",
        std::process::id(),
        gtel::monotonic_ns()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One origin-stamped flush the producer sent, for later alignment
/// against the hub's `net.ingest` spans.
struct Flush {
    span_id: u64,
    send_us: u64,
}

/// The remote half: a minimal v2 producer driven over a `SimConn`,
/// living entirely on a clock `SKEW_US` ahead of the hub's.
struct Producer {
    conn: SimConn,
    log: Arc<TraceLog>,
    rx: Vec<u8>,
    tx: Vec<u8>,
    enc: BatchEncoder,
    name: Arc<str>,
    batches: u64,
    next_t_us: u64,
    flushes: Vec<Flush>,
}

impl Producer {
    fn new(conn: SimConn, log: Arc<TraceLog>) -> Producer {
        let mut p = Producer {
            conn,
            log,
            rx: Vec::new(),
            tx: Vec::new(),
            enc: BatchEncoder::new(),
            name: Arc::from("fleet.sig"),
            batches: 0,
            next_t_us: 1_000,
            flushes: Vec::new(),
        };
        wire::frame_hello(&mut p.tx, wire::LOCAL_CAPS);
        p
    }

    /// The producer's wall clock: the hub's, plus the skew under test.
    fn now_us(&self) -> u64 {
        wire_now_us() + SKEW_US
    }

    /// One scheduler slice: pump pending writes, then answer the
    /// hub's clock probes — timestamped on the skewed clock.
    fn step(&mut self) {
        if !self.tx.is_empty() {
            if let Ok(n) = self.conn.write_bytes(&self.tx) {
                self.tx.drain(..n);
            }
        }
        let mut buf = [0u8; 4096];
        while let Ok(n) = self.conn.read_bytes(&mut buf) {
            if n == 0 {
                break;
            }
            self.rx.extend_from_slice(&buf[..n]);
        }
        let mut consumed = 0usize;
        while let Ok(Some((msg, used))) = wire::split_message(&self.rx[consumed..]) {
            if let Msg::Frame {
                op: wire::OP_PING,
                body,
            } = msg
            {
                let t0 = wire::decode_arg(body).unwrap();
                let now = self.now_us();
                wire::frame_pong(&mut self.tx, t0, now, now);
            }
            consumed += used;
        }
        self.rx.drain(..consumed);
    }

    /// Flushes one origin-stamped batch, recording the flush span on
    /// the producer's own (skewed) timebase — exactly the lie the
    /// merge step must later undo.
    fn flush_batch(&mut self) {
        let begin_us = self.now_us();
        for i in 0..8u64 {
            self.enc.push(
                self.next_t_us,
                (self.batches * 8 + i) as f64,
                Some(&self.name),
            );
            self.next_t_us += 125;
        }
        let end_us = self.now_us().max(begin_us + 1);
        let span_id = self.log.record_span_at(
            "producer.flush",
            self.batches,
            begin_us * 1_000,
            end_us * 1_000,
        );
        let send_us = self.now_us();
        let origin = Origin {
            node_id: 2,
            send_us,
            span_id,
        };
        self.enc.frame_into_origin(&mut self.tx, &origin);
        self.flushes.push(Flush { span_id, send_us });
        self.batches += 1;
    }
}

#[test]
fn two_process_pipeline_syncs_clocks_attributes_lateness_and_merges() {
    // Hub-side tracing: server poll + scope tick + ingest spans all
    // land in this log, which becomes the hub's flight bundle.
    let hub_log = Arc::new(TraceLog::with_shards(65_536, 1));
    let _tracer = gtel::with_thread_tracer(Arc::clone(&hub_log));

    let cfg = HubConfig {
        shards: 1,
        ping_interval_us: 2_000,
        // Stamp every origin batch: each loop iteration below expects
        // its one batch to start a fresh chain.
        mark_interval_us: 0,
        ..HubConfig::default()
    };
    let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).unwrap();

    // The hub's scope: one buffered signal fed over the wire. The
    // virtual clock stays at 0 so buffered pushes are never "late";
    // ticks advance via explicit TickInfo.
    let clock = VirtualClock::new();
    let mut scope = Scope::new("fleet", 240, 120, Arc::new(clock));
    scope
        .add_signal("fleet.sig", SigSource::Buffer, SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(10)).unwrap();
    scope.start();
    let scope = scope.into_shared();
    server.add_scope(Arc::clone(&scope));

    let link = LinkConfig {
        latency: TimeDelta::from_micros(LATENCY_US),
        jitter: TimeDelta::from_micros(JITTER_US),
        seed: 7,
        ..LinkConfig::default()
    };
    let (server_end, client_end) = SimConn::pair(link, LinkClock::real());
    server.add_conn(Box::new(server_end));

    let producer_log = Arc::new(TraceLog::with_shards(65_536, 1));
    let mut producer = Producer::new(client_end, Arc::clone(&producer_log));
    let mut frames = grender::FrameCache::new();

    // Phase 1: clock handshake. PINGs go out every 2ms; run until the
    // estimator's own error bound settles at the link-delay scale.
    // Early probes can be inflated by test-scheduler noise, so gating
    // on a bare sample count would race the EWMA's decay.
    let delay_us = (LATENCY_US + JITTER_US) as f64;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        producer.step();
        server.poll();
        let infos = server.client_stats();
        if infos.iter().any(|c| {
            c.clock
                .as_ref()
                .is_some_and(|cs| cs.samples >= 8 && cs.error_us <= 2.0 * delay_us)
        }) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "clock sync never converged: {infos:?}"
        );
        std::thread::sleep(Duration::from_micros(200));
    }

    let cs = server
        .client_stats()
        .iter()
        .find_map(|c| c.clock.clone())
        .unwrap();
    assert!(
        (cs.offset_us - SKEW_US as f64).abs() <= delay_us,
        "offset {:.1}µs did not converge on the true skew {SKEW_US}µs \
         (link delay {delay_us}µs): {cs:?}",
        cs.offset_us
    );
    assert!(
        cs.error_us <= 2.0 * delay_us,
        "error bound {:.1}µs above the link-delay scale: {cs:?}",
        cs.error_us
    );
    assert!(
        cs.error_us < SKEW_US as f64,
        "error bound must stay below the skew it corrects: {cs:?}"
    );

    // Phase 2: origin-stamped data chains. Each iteration sends one
    // batch, lets it cross the shaped link, then ticks and renders so
    // the chain completes: Wire → Parse → Route → Push → Drain →
    // Render.
    let target = 12u64;
    let mut tick_now = 1_000_000_000u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while gtel::e2e().completed() < target && Instant::now() < deadline {
        producer.flush_batch();
        let io_deadline = Instant::now() + Duration::from_millis(5);
        while Instant::now() < io_deadline {
            producer.step();
            server.poll();
            std::thread::sleep(Duration::from_micros(100));
        }
        tick_now += 20_000;
        let info = TickInfo {
            now: TimeStamp::from_micros(tick_now),
            scheduled: TimeStamp::from_micros(tick_now),
            missed: 0,
        };
        scope.lock().tick(&info);
        frames.render(&scope.lock());
    }
    let completed = gtel::e2e().completed();
    assert!(
        completed >= target,
        "only {completed} of {target} chains completed"
    );

    // The invariant: per-stage deltas telescope to the e2e total
    // within the clock error quoted when the chains were rebased.
    let snap = gtel::e2e().snapshot();
    assert_eq!(snap.total.count, completed);
    let stage_sum = snap.stage_sum_mean_us();
    let total = snap.total.mean();
    let budget = snap.clock_error.max as f64 + 1.0;
    assert!(
        (stage_sum - total).abs() <= budget,
        "stage sum {stage_sum:.1}µs vs e2e total {total:.1}µs drifts \
         past the clock error bound {budget:.1}µs: {snap:?}"
    );

    // The producer identified itself via the origin header.
    let infos = server.client_stats();
    let peer = infos
        .iter()
        .find(|c| c.node_id == Some(2))
        .unwrap_or_else(|| panic!("no client learned node id 2 from origin frames: {infos:?}"));
    let cs = peer.clock.clone().unwrap();

    // Phase 3: one flight bundle per node, then `gtool trace merge`.
    let hub_dir = tmp_dir("hub");
    let prod_dir = tmp_dir("prod");
    let mut hub_fr = FlightRecorder::new(&hub_dir, 8);
    hub_fr.set_node_id(1);
    for info in server.client_stats() {
        if let Some(c) = info.clock {
            hub_fr.note_clock(gstore::ClockRow {
                peer: info.peer,
                node_id: info.node_id,
                offset_us: c.offset_us,
                rtt_us: c.rtt_us,
                drift_ppm: c.drift_ppm,
                error_us: c.error_us,
                samples: c.samples,
            });
        }
    }
    let hub_bundle = hub_fr.trigger("fleet smoke", &hub_log).unwrap().unwrap();
    let mut prod_fr = FlightRecorder::new(&prod_dir, 8);
    prod_fr.set_node_id(2);
    let prod_bundle = prod_fr
        .trigger("fleet smoke", &producer_log)
        .unwrap()
        .unwrap();

    let out = hub_dir.join("merged.json");
    let args = gtool::Args::parse(
        [
            "merge",
            hub_bundle.path.to_str().unwrap(),
            prod_bundle.path.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]
        .map(String::from),
        gtool::BOOLEAN_FLAGS,
    )
    .unwrap();
    let summary = gtool::trace(&args).unwrap();
    let edges: u64 = summary
        .lines()
        .find(|l| l.contains("cross-process edges"))
        .and_then(|l| l.split(',').last())
        .and_then(|part| part.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no edge count in merge summary:\n{summary}"));
    assert!(edges >= 1, "merge found no cross-process edges:\n{summary}");
    let merged = std::fs::read_to_string(&out).unwrap();
    assert!(merged.contains("\"traceEvents\""));
    assert!(merged.contains("producer.flush") && merged.contains("net.ingest"));
    assert!(
        merged.contains("\"ph\":\"s\"") && merged.contains("\"ph\":\"f\""),
        "merged trace has no flow arrows"
    );

    // Alignment: rebasing a flush's skewed send time by the estimated
    // offset must land just before its hub ingest span — early by no
    // more than the error bound, late by no more than delay + error.
    let ingests: Vec<_> = hub_log
        .records()
        .into_iter()
        .filter(|r| r.label == "net.ingest")
        .collect();
    let mut matched = 0u64;
    for f in &producer.flushes {
        let Some(r) = ingests.iter().find(|r| r.arg == f.span_id) else {
            continue;
        };
        let rebased = f.send_us as f64 - cs.offset_us;
        let ingest_us = (r.begin_ns / 1_000) as f64;
        let diff = ingest_us - rebased;
        assert!(
            diff >= -(cs.error_us + 1.0),
            "ingest {ingest_us:.0}µs precedes rebased send {rebased:.0}µs \
             by more than the error bound {:.1}µs",
            cs.error_us
        );
        assert!(
            diff <= delay_us + cs.error_us + 5_000.0,
            "ingest lags rebased send by {diff:.0}µs — rebasing failed \
             (skew not removed?)"
        );
        matched += 1;
    }
    assert!(matched >= 1, "no producer flush matched a hub ingest span");
}
