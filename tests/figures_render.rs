//! Integration: figure regeneration smoke tests — every figure the
//! paper shows renders to a valid image with the expected content.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{BoolVar, Color, IntVar, ParamSet, Parameter, Scope, SigConfig, Trigger};

fn ticked_scope() -> Scope {
    let clock = VirtualClock::new();
    let mut scope = Scope::new("fig", 160, 80, Arc::new(clock.clone()));
    let v = IntVar::new(0);
    scope
        .add_signal(
            "sig",
            v.clone().into(),
            SigConfig::default().with_show_value(true),
        )
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    for i in 0..100u64 {
        v.set(((i * 7) % 100) as i64);
        let t = TimeStamp::from_millis(50 * (i + 1));
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
    scope
}

#[test]
fn figure1_widget_is_valid_ppm() {
    let scope = ticked_scope();
    let fb = grender::render_scope(&scope);
    let ppm = fb.to_ppm();
    assert!(ppm.starts_with(b"P6\n"));
    let (w, h) = grender::widget_size(&scope);
    assert_eq!(ppm.len(), format!("P6\n{w} {h}\n255\n").len() + w * h * 3);
    // The trace color appears many times; the chrome is non-black.
    let color = scope.signal("sig").unwrap().color();
    assert!(fb.count_color(color) > 80);
}

#[test]
fn figure1_svg_contains_scene_elements() {
    let scope = ticked_scope();
    let svg = grender::render_scope_svg(&scope);
    for needle in [
        "<svg",
        "fig [polling]",
        "zoom 1.00",
        "period 50ms",
        "sig",
        "Value:",
    ] {
        assert!(svg.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn figure2_signal_window_contents() {
    let scope = ticked_scope();
    let svg = grender::render_signal_window_svg(&scope, "sig").unwrap();
    for needle in [
        "Signal Parameters: sig",
        "Minimum",
        "Maximum",
        "Line mode",
        "Hidden",
        "Filter alpha",
    ] {
        assert!(svg.contains(needle), "missing {needle:?}");
    }
    let fb = grender::render_signal_window(&scope, "sig").unwrap();
    assert_eq!(fb.height(), grender::signal_window_height());
}

#[test]
fn figure3_param_window_contents() {
    let params = ParamSet::new();
    params
        .add(Parameter::int("elephants", IntVar::new(16), 0, 40))
        .unwrap();
    params
        .add(Parameter::bool("ecn_enabled", BoolVar::new(true)))
        .unwrap();
    let svg = grender::render_param_window_svg(&params);
    for needle in [
        "Application Parameters",
        "elephants",
        "16",
        "0..40",
        "ecn_enabled",
        "on",
    ] {
        assert!(svg.contains(needle), "missing {needle:?}");
    }
    let fb = grender::render_param_window(&params);
    assert_eq!(fb.height(), grender::param_window_height(2));
}

#[test]
fn trigger_marker_and_envelope_render() {
    let mut scope = ticked_scope();
    scope.set_trigger("sig", Trigger::rising(50.0)).unwrap();
    scope.enable_envelope("sig").unwrap();
    // Tick a few more times so the envelope accumulates.
    let clock = VirtualClock::new();
    clock.set(TimeStamp::from_secs(6));
    for i in 0..20u64 {
        let t = TimeStamp::from_secs(6) + TimeDelta::from_millis(50 * (i + 1));
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
    let fb = grender::render_scope(&scope);
    // The trigger marker is drawn in red at the canvas edge.
    assert!(fb.count_color(Color::RED) >= 3, "trigger marker visible");
    assert!(scope.envelope("sig").unwrap().sweeps() > 0);
}

#[test]
fn spectrum_view_renders_for_any_signal() {
    let scope = ticked_scope();
    let fb = grender::render_spectrum(&scope, "sig", 64, gdsp::SpectrumConfig::default()).unwrap();
    assert!(fb.to_ppm().starts_with(b"P6"));
    assert!(fb.width() >= 64 && fb.height() >= 60);
}
