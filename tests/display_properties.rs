//! Property tests for the display pipeline: triggers, envelopes, and
//! the zoom/bias transform.

use std::sync::Arc;

use gel::VirtualClock;
use gscope::{Envelope, IntVar, Scope, SigConfig, Trigger, TriggerEdge, TriggerMode};
use proptest::prelude::*;

fn wave(values: &[f64]) -> Vec<Option<f64>> {
    values.iter().map(|&v| Some(v)).collect()
}

proptest! {
    #[test]
    fn trigger_fires_only_at_true_crossings(
        values in proptest::collection::vec(-10.0..10.0f64, 2..120),
        level in -8.0..8.0f64,
    ) {
        let samples = wave(&values);
        for edge in [TriggerEdge::Rising, TriggerEdge::Falling] {
            let t = Trigger { edge, level, hysteresis: 0.0, mode: TriggerMode::Auto };
            for i in t.find_all(&samples) {
                prop_assert!(i > 0);
                let prev = values[i - 1];
                let cur = values[i];
                match edge {
                    TriggerEdge::Rising => {
                        prop_assert!(prev < level && cur >= level,
                            "rising fire at {i}: {prev} -> {cur} vs level {level}");
                    }
                    TriggerEdge::Falling => {
                        prop_assert!(prev > level && cur <= level,
                            "falling fire at {i}: {prev} -> {cur} vs level {level}");
                    }
                }
            }
        }
    }

    #[test]
    fn hysteresis_never_increases_firings(
        values in proptest::collection::vec(-10.0..10.0f64, 2..100),
        level in -5.0..5.0f64,
        hyst in 0.0..5.0f64,
    ) {
        let samples = wave(&values);
        let loose = Trigger::rising(level).find_all(&samples).len();
        let tight = Trigger::rising(level).with_hysteresis(hyst).find_all(&samples).len();
        prop_assert!(tight <= loose, "hysteresis {hyst}: {tight} > {loose}");
    }

    #[test]
    fn aligned_window_never_exceeds_width(
        values in proptest::collection::vec(-10.0..10.0f64, 1..100),
        level in -5.0..5.0f64,
        width in 1usize..150,
    ) {
        let samples = wave(&values);
        let t = Trigger::rising(level);
        if let Some(sweep) = t.align(&samples, width) {
            prop_assert!(sweep.len() <= width.max(samples.len()));
            // The window's final sample, when a trigger fired, crosses
            // the level.
            if let Some(i) = t.find_last(&samples) {
                prop_assert_eq!(sweep.last().copied().flatten(), Some(values[i]));
            }
        }
    }

    #[test]
    fn envelope_band_contains_all_accumulated_values(
        sweeps in proptest::collection::vec(
            proptest::collection::vec(-100.0..100.0f64, 5),
            1..20,
        ),
    ) {
        let mut env = Envelope::new(5);
        for s in &sweeps {
            env.accumulate(&wave(s));
        }
        for x in 0..5 {
            let (lo, hi) = env.band(x).expect("every column touched");
            for s in &sweeps {
                prop_assert!(s[x] >= lo - 1e-12 && s[x] <= hi + 1e-12);
            }
        }
        prop_assert_eq!(env.sweeps(), sweeps.len() as u64);
    }

    #[test]
    fn display_fraction_is_monotone_and_bounded(
        zoom in 0.01..100.0f64,
        bias in -1.0..1.0f64,
        a in -1000.0..1000.0f64,
        b in -1000.0..1000.0f64,
    ) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("prop", 8, 8, clock);
        scope
            .add_signal("s", IntVar::new(0).into(), SigConfig::default().with_range(-1000.0, 1000.0))
            .unwrap();
        scope.set_zoom(zoom).unwrap();
        scope.set_bias(bias).unwrap();
        let cfg = scope.signal("s").unwrap().config().clone();
        let fa = scope.display_fraction(&cfg, a);
        let fb = scope.display_fraction(&cfg, b);
        prop_assert!((0.0..=1.0).contains(&fa));
        prop_assert!((0.0..=1.0).contains(&fb));
        if a <= b {
            prop_assert!(fa <= fb + 1e-12, "transform must be monotone");
        }
    }
}
