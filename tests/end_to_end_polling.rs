//! Integration: the full polling pipeline — application variables →
//! scope signals → `gel` main loop ticks → display history → renderer —
//! on a deterministic virtual clock, including §4.5's lost-timeout
//! compensation.

use std::sync::Arc;

use gel::{MainLoop, Quantizer, TimeDelta, TimeStamp, VirtualClock};
use gscope::{attach_scope, Color, IntVar, Scope, SigConfig};

fn make_loop(clock: &VirtualClock, quantum: Quantizer) -> MainLoop {
    MainLoop::with_quantizer(Arc::new(clock.clone()), quantum)
}

#[test]
fn figure6_program_end_to_end() {
    // The paper's Figure 6 program, asserted step by step.
    let elephants = IntVar::new(8);
    let clock = VirtualClock::new();
    let mut scope = Scope::new("mxtraf", 100, 60, Arc::new(clock.clone()));
    scope
        .add_signal(
            "elephants",
            elephants.clone().into(),
            SigConfig::default().with_range(0.0, 40.0),
        )
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let mut ml = make_loop(&clock, Quantizer::exact());
    attach_scope(&scope, &mut ml);
    // read_program: the client changes elephants at t = 2 s.
    let e2 = elephants.clone();
    ml.add_oneshot(TimeDelta::from_secs(2), move |_| e2.set(16));
    ml.run_until(TimeStamp::from_secs(4) + TimeDelta::from_millis(1));

    let guard = scope.lock();
    // 4 s at 50 ms = 80 ticks.
    assert_eq!(guard.stats().ticks, 80);
    let window = guard.display_cols("elephants").to_vec();
    assert_eq!(window.len(), 80);
    // First half shows 8, second half shows 16.
    assert_eq!(window[10], Some(8.0));
    assert_eq!(window[79], Some(16.0));
    assert_eq!(guard.value_readout("elephants").unwrap(), Some(16.0));
}

#[test]
fn quantizer_caps_polling_frequency() {
    // §4.5: with the 10 ms Linux quantum, a 1 ms polling request
    // degrades to 100 Hz.
    let clock = VirtualClock::new();
    let mut scope = Scope::new("fast", 2000, 60, Arc::new(clock.clone()));
    scope
        .add_signal("x", IntVar::new(1).into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(1)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let mut ml = make_loop(&clock, Quantizer::LINUX_HZ100);
    attach_scope(&scope, &mut ml);
    ml.run_until(TimeStamp::from_secs(1));

    let stats = scope.lock().stats();
    // Dispatches happen only at 10 ms boundaries: ~100 wake-ups, and
    // the missed-tick accounting records the 9 skipped 1 ms periods
    // per wake-up.
    let dispatches = stats.ticks;
    assert!(
        (90..=101).contains(&dispatches),
        "expected ~100 dispatches at HZ=100, got {dispatches}"
    );
    assert!(
        stats.missed_ticks >= 800,
        "9 of every 10 1 ms ticks are lost to the quantum, got {}",
        stats.missed_ticks
    );
    // The display still advanced ~1000 columns (one per 1 ms period)
    // because missed ticks hold the last value (§4.5).
    let pushed = scope.lock().signal("x").unwrap().history().total_pushed();
    assert!(
        (900..=1010).contains(&pushed),
        "history should advance one column per period, got {pushed}"
    );
}

#[test]
fn scheduling_latency_is_compensated() {
    // §4.5: "Gscope keeps track of lost timeouts and advances the
    // scope refresh appropriately."
    let clock = VirtualClock::new();
    // Every 10th wake-up is 120 ms late.
    clock.set_latency_model(Some(Box::new(|n| if n % 10 == 9 { 120_000 } else { 0 })));
    let mut scope = Scope::new("late", 400, 60, Arc::new(clock.clone()));
    let v = IntVar::new(5);
    scope
        .add_signal("v", v.clone().into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let mut ml = make_loop(&clock, Quantizer::exact());
    attach_scope(&scope, &mut ml);
    ml.run_until(TimeStamp::from_secs(10));

    let guard = scope.lock();
    let stats = guard.stats();
    assert!(stats.missed_ticks > 0, "latency model must cost some ticks");
    // Wall-clock truth: ticks + missed ticks ≈ elapsed / period.
    let total_columns = guard.signal("v").unwrap().history().total_pushed();
    let expected = 10_000 / 50;
    assert!(
        (total_columns as i64 - expected).abs() <= 3,
        "x-axis stays truthful: {total_columns} columns vs {expected} periods"
    );
}

#[test]
fn dynamic_signal_add_remove_mid_run() {
    let clock = VirtualClock::new();
    let mut scope = Scope::new("dyn", 100, 60, Arc::new(clock.clone()));
    scope
        .add_signal("a", IntVar::new(1).into(), SigConfig::default())
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
    scope.start();
    let scope = scope.into_shared();
    let mut ml = make_loop(&clock, Quantizer::exact());
    attach_scope(&scope, &mut ml);
    ml.run_until(TimeStamp::from_secs(1));

    // Add a signal while running (a feature §1 calls out).
    scope
        .lock()
        .add_signal(
            "b",
            IntVar::new(2).into(),
            SigConfig::default().with_color(Color::CYAN),
        )
        .unwrap();
    ml.run_until(TimeStamp::from_secs(2));
    {
        let guard = scope.lock();
        assert_eq!(guard.signal_count(), 2);
        let b = guard.display_cols("b").to_vec();
        assert!(
            b.len() >= 19 && b.len() <= 21,
            "b has ~20 columns: {}",
            b.len()
        );
    }
    // And remove the original.
    scope.lock().remove_signal("a").unwrap();
    ml.run_until(TimeStamp::from_secs(3));
    let guard = scope.lock();
    assert_eq!(guard.signal_count(), 1);
    assert!(guard.display_cols("a").to_vec().is_empty());
}

#[test]
fn multiple_scopes_share_one_loop() {
    // §1: "support for multiple scopes and signals."
    let clock = VirtualClock::new();
    let make = |name: &str, period_ms: u64| {
        let mut s = Scope::new(name, 100, 60, Arc::new(clock.clone()));
        s.add_signal("x", IntVar::new(1).into(), SigConfig::default())
            .unwrap();
        s.set_polling_mode(TimeDelta::from_millis(period_ms))
            .unwrap();
        s.start();
        s.into_shared()
    };
    let fast = make("fast", 10);
    let slow = make("slow", 100);
    let mut ml = make_loop(&clock, Quantizer::exact());
    attach_scope(&fast, &mut ml);
    attach_scope(&slow, &mut ml);
    ml.run_until(TimeStamp::from_secs(1) + TimeDelta::from_millis(1));
    assert_eq!(fast.lock().stats().ticks, 100);
    assert_eq!(slow.lock().stats().ticks, 10);
}
