//! Integration: the §4.4 distributed pipeline — `gnet` clients →
//! server → scope buffer → polling display — with everything driven by
//! `gel` event loops (the single-threaded I/O-driven style of §4.3).

use std::sync::Arc;

use gel::{Clock, Continue, MainLoop, Quantizer, SystemClock, TimeDelta};
use gnet::{attach_server, ScopeClient, ScopeServer, ServerStats};
use gscope::{attach_scope, Scope, SigConfig, SigSource};
use parking_lot::Mutex;

/// Runs a server+scope loop and a client loop in separate threads over
/// real time (short horizons), returning the server stats and the
/// scope's displayed window for `signal`.
fn run_pipeline(
    signal: &'static str,
    samples: u64,
    delay: TimeDelta,
) -> (ServerStats, Vec<Option<f64>>, u64) {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());

    let mut scope = Scope::new("pipeline", 200, 60, Arc::clone(&clock));
    scope.set_delay(delay);
    scope
        .add_signal(
            signal,
            SigSource::Buffer,
            SigConfig::default().with_range(0.0, 1000.0),
        )
        .unwrap();
    scope.set_polling_mode(TimeDelta::from_millis(5)).unwrap();
    scope.start();
    let scope = scope.into_shared();

    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    server.add_scope(Arc::clone(&scope));
    let addr = server.local_addr().unwrap();
    let server = Arc::new(Mutex::new(server));

    // Display-side loop thread: io watch (server) + scope timeout.
    let mut ml = MainLoop::with_quantizer(
        Arc::clone(&clock),
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    attach_scope(&scope, &mut ml);
    attach_server(&server, &mut ml);
    let handle = ml.handle();
    let display = std::thread::spawn(move || ml.run());

    // Client-side loop thread: stream `samples` tuples at 2 ms spacing.
    let client = Arc::new(Mutex::new(ScopeClient::connect(addr).unwrap()));
    let mut client_ml = MainLoop::with_quantizer(
        Arc::clone(&clock),
        Quantizer::new(TimeDelta::from_millis(1)),
    );
    {
        let client2 = Arc::clone(&client);
        let mut sent = 0u64;
        let client_handle = client_ml.handle();
        client_ml.add_timeout(
            TimeDelta::from_millis(2),
            Box::new(move |tick| {
                let mut c = client2.lock();
                c.send_at(tick.now, signal, sent as f64);
                let _ = c.pump();
                sent += 1;
                if sent >= samples {
                    client_handle.quit();
                    return Continue::Remove;
                }
                Continue::Keep
            }),
        );
    }
    client_ml.run();
    client.lock().flush_blocking().unwrap();

    // Give the display loop time to drain and display.
    std::thread::sleep((delay + TimeDelta::from_millis(150)).to_std());
    handle.quit();
    display.join().unwrap();

    let guard = scope.lock();
    let stats = server.lock().stats();
    let window = guard.display_cols(signal).to_vec();
    let late = guard.buffer().late_drops();
    (stats, window, late)
}

#[test]
fn streamed_signal_reaches_the_display() {
    let (stats, window, late) = run_pipeline("remote.x", 40, TimeDelta::from_millis(400));
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.tuples_received, 40);
    assert_eq!(stats.parse_errors, 0);
    assert_eq!(late, 0, "delay was ample");
    let values: Vec<f64> = window.iter().flatten().copied().collect();
    assert!(
        !values.is_empty(),
        "streamed samples must reach the display"
    );
    // Sample-and-hold of an increasing ramp: displayed values are
    // non-decreasing and end near the last sent value.
    for pair in values.windows(2) {
        assert!(pair[1] >= pair[0], "ramp must be monotone on screen");
    }
    assert!(*values.last().unwrap() >= 30.0, "tail of the ramp visible");
}

#[test]
fn tight_delay_drops_late_data() {
    // With a 1 ms delay, network+loop latency makes most samples miss
    // their display deadline — the §4.4 drop rule, observable.
    let (stats, _window, late) = run_pipeline("remote.y", 30, TimeDelta::from_millis(1));
    assert_eq!(stats.tuples_received, 30);
    assert!(
        late > 0,
        "a 1 ms delay cannot cover real network latency; drops expected"
    );
}
