//! Property tests over the scope tick loop itself: histories stay in
//! lockstep with wall time under arbitrary schedules of ticks, missed
//! periods, and mid-run reconfiguration.

use std::sync::Arc;

use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, IntVar, Scope, SigConfig, SigSource};
use proptest::prelude::*;

proptest! {
    #[test]
    fn history_advances_exactly_one_column_per_period(
        width in 1usize..64,
        missed_pattern in proptest::collection::vec(0u64..4, 1..60),
    ) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("p", width, 50, clock);
        let v = IntVar::new(3);
        scope
            .add_signal("v", v.into(), SigConfig::default())
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        // Simulate an arbitrary lateness schedule: each entry is how
        // many whole periods the dispatch was late.
        let mut now = TimeStamp::ZERO;
        let mut total_periods = 0u64;
        for &missed in &missed_pattern {
            now += TimeDelta::from_millis(50 * (missed + 1));
            total_periods += missed + 1;
            scope.tick(&TickInfo {
                now,
                scheduled: now,
                missed,
            });
        }
        let sig = scope.signal("v").unwrap();
        // One column per wall-clock period, no matter how dispatches
        // bunched up (§4.5's compensation).
        prop_assert_eq!(sig.history().total_pushed(), total_periods);
        prop_assert_eq!(sig.history().len(), (total_periods as usize).min(width));
        let stats = scope.stats();
        prop_assert_eq!(stats.ticks, missed_pattern.len() as u64);
        prop_assert_eq!(
            stats.missed_ticks,
            total_periods - missed_pattern.len() as u64
        );
    }

    #[test]
    fn event_conservation_through_sum_aggregation(
        batches in proptest::collection::vec(
            proptest::collection::vec(0.0..100.0f64, 0..10),
            1..40,
        ),
    ) {
        // Every pushed event value is counted exactly once by a Sum
        // signal across the whole run, for any batching of pushes and
        // a history wide enough to hold every tick.
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("sum", 64, 50, clock);
        scope
            .add_signal(
                "e",
                SigSource::Events,
                SigConfig::default().with_aggregation(Aggregation::Sum),
            )
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        let sink = scope.event_sink("e").unwrap();
        let mut pushed_total = 0.0;
        for (i, batch) in batches.iter().enumerate() {
            for &v in batch {
                sink.push(v);
                pushed_total += v;
            }
            let t = TimeStamp::from_millis(50 * (i as u64 + 1));
            scope.tick(&TickInfo {
                now: t,
                scheduled: t,
                missed: 0,
            });
        }
        let displayed: f64 = scope
            .signal("e")
            .unwrap()
            .history()
            .iter()
            .flatten()
            .sum();
        prop_assert!(
            (displayed - pushed_total).abs() <= 1e-9 * pushed_total.max(1.0),
            "displayed {displayed} vs pushed {pushed_total}"
        );
    }

    #[test]
    fn zoom_bias_never_corrupts_stored_samples(
        zooms in proptest::collection::vec(0.01..100.0f64, 1..10),
        biases in proptest::collection::vec(-1.0..1.0f64, 10),
    ) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("zb", 32, 50, clock);
        let v = IntVar::new(0);
        scope
            .add_signal("v", v.clone().into(), SigConfig::default())
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        for i in 0..20i64 {
            v.set(i * 5);
            let t = TimeStamp::from_millis(50 * (i as u64 + 1));
            scope.tick(&TickInfo {
                now: t,
                scheduled: t,
                missed: 0,
            });
        }
        let before = scope.display_cols("v").to_vec();
        for (&z, &b) in zooms.iter().zip(&biases) {
            scope.set_zoom(z).unwrap();
            scope.set_bias(b).unwrap();
        }
        // The display transform is view-only (DESIGN §5): the stored
        // samples are untouched by any zoom/bias sequence.
        prop_assert_eq!(scope.display_cols("v").to_vec(), before);
    }
}
