//! Integration: gtrace end to end — the full pipeline (event loop,
//! polled scope, renderer, loopback gnet link, gstore recorder) runs
//! under a thread-local tracer with one tick forced slow; the exported
//! Chrome trace must show that tick's root span with the stage spans
//! correctly nested inside it, and a deadline breach must produce a
//! decodable post-mortem bundle.

use std::sync::Arc;
use std::time::Duration;

use gel::{Continue, MainLoop, Priority, Quantizer, TimeDelta, TimeStamp, VirtualClock};
use gnet::{attach_server, ScopeClient, ScopeServer};
use gscope::{attach_scope, Scope, SigConfig, SigSource};
use gstore::{read_bundle, FlightRecorder, Store, StoreConfig};
use gtel::{chrome_trace_json, DeadlineMonitor, Registry, TraceLog};
use parking_lot::Mutex;

const PERIOD: TimeDelta = TimeDelta::from_millis(5);
const TICKS: u64 = 20;
/// Poll number (1-based) of the artificially slow tick.
const SLOW_TICK: u64 = 6;
const SLOW_US: u64 = 2_000;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gtrace-it-{tag}-{}", std::process::id()))
}

struct PipelineRun {
    log: Arc<TraceLog>,
    monitor: Arc<Mutex<DeadlineMonitor>>,
    bundle: Option<std::path::PathBuf>,
}

/// Runs the instrumented pipeline on a virtual clock. `tight_budget`
/// clamps every stage budget to 1ns so each tick misses its deadline
/// (span timestamps are wall-clock, so any real work overruns 1ns);
/// `flight_dir` arms a flight recorder that triggers on the first miss.
fn run_pipeline(tight_budget: bool, flight_dir: Option<&std::path::Path>) -> PipelineRun {
    let log = Arc::new(TraceLog::with_shards(65_536, 1));
    let _tracer = gtel::with_thread_tracer(Arc::clone(&log));
    let registry = Registry::new();
    let registry = Arc::new(registry);

    let clock = VirtualClock::new();
    let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());

    let mut scope = Scope::new("traced", 120, 60, Arc::new(clock.clone()));
    scope.set_telemetry(Arc::clone(&registry));
    for i in 0..3usize {
        let mut calls = 0u64;
        let slow = i == 0;
        scope
            .add_signal(
                format!("sig{i}"),
                SigSource::func(move || {
                    calls += 1;
                    if slow && calls == SLOW_TICK {
                        std::thread::sleep(Duration::from_micros(SLOW_US));
                    }
                    calls as f64
                }),
                SigConfig::default(),
            )
            .unwrap();
    }
    scope
        .add_signal("net.sig", SigSource::Buffer, SigConfig::default())
        .unwrap();
    let store_dir = tmp("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_cfg = StoreConfig {
        block_bytes: 512,
        block_frames: 8,
        ..StoreConfig::default()
    };
    scope.start_recording_sink(Store::open(&store_dir, store_cfg).unwrap());
    scope.set_polling_mode(PERIOD).unwrap();
    scope.start();
    let scope = scope.into_shared();

    // Loopback link: High priority, so the bytes are readable when
    // this iteration's I/O watch polls the server.
    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    server.add_scope(Arc::clone(&scope));
    let addr = server.local_addr().unwrap();
    let server = Arc::new(Mutex::new(server));
    let mut client = ScopeClient::connect(addr).unwrap();
    let mut sent = 0u64;
    ml.add_timeout_with_priority(
        PERIOD,
        Priority::High,
        Box::new(move |tick| {
            sent += 1;
            client.send_parts(tick.now, sent as f64, Some("net.sig"));
            let _ = client.pump();
            Continue::Keep
        }),
    );
    attach_server(&server, &mut ml);
    attach_scope(&scope, &mut ml);

    let frames = Arc::new(Mutex::new(grender::FrameCache::new()));
    {
        let scope = Arc::clone(&scope);
        let frames = Arc::clone(&frames);
        ml.add_timeout_with_priority(
            PERIOD,
            Priority::Low,
            Box::new(move |_| {
                frames.lock().render(&scope.lock());
                Continue::Keep
            }),
        );
    }

    let period_ns = PERIOD.as_micros() * 1_000;
    let mut monitor = DeadlineMonitor::for_period(&registry, period_ns, 16);
    if tight_budget {
        monitor.scale_budgets(1, period_ns); // everything -> 1ns
    }
    let monitor = Arc::new(Mutex::new(monitor));
    let flight = flight_dir.map(|d| {
        let _ = std::fs::remove_dir_all(d);
        Arc::new(Mutex::new(FlightRecorder::new(d, 4)))
    });
    let bundle: Arc<Mutex<Option<std::path::PathBuf>>> = Arc::new(Mutex::new(None));
    {
        let monitor = Arc::clone(&monitor);
        let flight = flight.clone();
        let bundle = Arc::clone(&bundle);
        let log = Arc::clone(&log);
        let registry = Arc::clone(&registry);
        ml.add_timeout_with_priority(
            PERIOD,
            Priority::Low,
            Box::new(move |tick| {
                let misses = monitor.lock().scan(&log);
                if let Some(flight) = &flight {
                    let mut flight = flight.lock();
                    flight.note_stats(tick.now, &registry);
                    if let Some(miss) = misses.first() {
                        if let Ok(Some(info)) =
                            flight.trigger(&format!("deadline miss: {}", miss.label), &log)
                        {
                            bundle.lock().get_or_insert(info.path);
                        }
                    }
                }
                Continue::Keep
            }),
        );
    }

    ml.run_until(TimeStamp::ZERO + PERIOD.saturating_mul(TICKS + 1));
    drop(ml);
    monitor.lock().scan(&log);
    let _ = std::fs::remove_dir_all(&store_dir);

    let bundle = bundle.lock().take();
    PipelineRun {
        log,
        monitor,
        bundle,
    }
}

/// One `"ph":"X"` event pulled back out of the trace JSON.
#[derive(Debug, Clone, PartialEq)]
struct Ev {
    name: String,
    ts: f64,
    dur: f64,
    span: u64,
    parent: u64,
}

/// Minimal parser for the exporter's own stable output shape (objects
/// are flat, strings never contain `}`s we care about).
fn parse_events(json: &str) -> Vec<Ev> {
    let mut out = Vec::new();
    for obj in json.split("{\"name\":\"").skip(1) {
        let name = obj.split('"').next().unwrap().to_owned();
        if !obj.contains("\"ph\":\"X\"") {
            continue;
        }
        let num = |key: &str| -> f64 {
            obj.split(key)
                .nth(1)
                .and_then(|rest| {
                    rest.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                        .next()
                })
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("field {key} missing in {obj}"))
        };
        out.push(Ev {
            name,
            ts: num("\"ts\":"),
            dur: num("\"dur\":"),
            span: num("\"span\":") as u64,
            parent: num("\"parent\":") as u64,
        });
    }
    out
}

#[test]
fn slow_tick_root_span_contains_nested_stage_spans() {
    let run = run_pipeline(false, None);
    let json = chrome_trace_json(&run.log.records());
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    let events = parse_events(&json);

    // The forced-slow tick dominates: its root iteration span carries
    // the 2ms signal poll.
    let root = events
        .iter()
        .filter(|e| e.name == "gel.iteration")
        .max_by(|a, b| a.dur.partial_cmp(&b.dur).unwrap())
        .expect("root spans present");
    assert!(
        root.dur >= SLOW_US as f64,
        "slow tick not visible in root span: {root:?}"
    );

    // At least 3 distinct stage spans nested directly under that root,
    // with timestamp containment (the Chrome UI's nesting rule).
    let children: Vec<&Ev> = events.iter().filter(|e| e.parent == root.span).collect();
    let mut names: Vec<&str> = children.iter().map(|e| e.name.as_str()).collect();
    names.sort();
    names.dedup();
    assert!(
        names.len() >= 3,
        "want >=3 distinct child stages, got {names:?}"
    );
    for want in ["scope.tick", "render.frame", "net.server.poll"] {
        assert!(names.contains(&want), "missing {want} in {names:?}");
    }
    let eps = 0.002; // µs rounding from the 3-decimal export
    for c in &children {
        assert!(
            c.ts >= root.ts - eps && c.ts + c.dur <= root.ts + root.dur + eps,
            "child {c:?} escapes root {root:?}"
        );
    }

    // The recorder span nests one level deeper, under that tick's
    // scope.tick span.
    let tick = children
        .iter()
        .find(|e| e.name == "scope.tick")
        .expect("checked above");
    assert!(
        events
            .iter()
            .any(|e| e.name == "scope.record" && e.parent == tick.span),
        "scope.record not a child of scope.tick"
    );
    assert_eq!(run.log.dropped(), 0, "ring sized for the whole run");
}

#[test]
fn deadline_breach_triggers_decodable_flight_bundle() {
    let dir = tmp("flight");
    let run = run_pipeline(true, Some(&dir));
    let monitor = run.monitor.lock();
    assert!(monitor.total_misses() > 0, "tight budget must miss");
    assert!(monitor.breached(), "window must report the breach");

    let bundle = run.bundle.expect("flight recorder triggered");
    let summary = read_bundle(&bundle).expect("bundle decodes");
    assert!(summary.meta.contains("deadline miss"));
    assert!(summary.trace_json.contains("\"traceEvents\""));
    assert!(summary.tree.contains("gel.iteration"));
    assert!(summary.stats_tuples > 0, "stats snapshots ride along");

    // The frozen trace decodes with the same parser the live one does,
    // and still shows causal structure.
    let events = parse_events(&summary.trace_json);
    let root = events.iter().find(|e| e.name == "gel.iteration").unwrap();
    assert!(events.iter().any(|e| e.parent == root.span));
    std::fs::remove_dir_all(&dir).unwrap();
}
