//! `gscope-tool trace merge`: one fleet, one timeline.
//!
//! Each process's flight-recorder bundle freezes its own span ring in
//! its own clock domain. This command rebases N bundles onto a single
//! timeline using the wire-clock offsets recorded in each bundle's
//! `clock.txt` (the same NTP-style estimates the hub used live), then
//! emits one Chrome trace with per-node process lanes and flow arrows
//! on the communication edges — a producer's flush span connects to
//! the hub shard's `net.ingest` span because the producer's span id
//! rode the wire in the batch origin header and the hub recorded it
//! as the ingest span's `arg`.
//!
//! The merge parses only trace JSON this repo generates
//! ([`gtel::chrome_trace_json`]), so the scanner handles exactly that
//! grammar: a flat `traceEvents` array of objects whose only nested
//! value is `args`.

use std::path::Path;

use gstore::BundleSummary;

use crate::args::Args;
use crate::commands::CmdResult;

/// One event lifted out of a bundle's `trace.json`.
#[derive(Debug, Clone)]
struct Event {
    name: String,
    /// `"X"` for complete spans, `"i"` for instants.
    ph: String,
    /// Begin time, µs (fractional part carries nanoseconds).
    ts: f64,
    /// Duration, µs (0 for instants).
    dur: f64,
    tid: u64,
    /// `args.arg` — for `net.ingest` spans this is the producer's
    /// span id carried in the batch origin header.
    arg: u64,
    /// `args.span` — the event's own span id.
    span: u64,
    /// The `"args":{...}` object, verbatim.
    args_raw: String,
}

/// Splits the `traceEvents` array into per-event object strings.
/// Depth-scans braces outside string literals, so escaped quotes in
/// span labels don't derail it.
fn event_objects(json: &str) -> Result<Vec<&str>, String> {
    let start = json
        .find("\"traceEvents\":[")
        .ok_or("trace.json has no traceEvents array")?
        + "\"traceEvents\":[".len();
    let body = &json[start..];
    let mut objects = Vec::new();
    let (mut depth, mut obj_start, mut in_str, mut escaped) = (0usize, 0usize, false, false);
    for (i, c) in body.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    objects.push(&body[obj_start..=i]);
                }
            }
            ']' if depth == 0 => return Ok(objects),
            _ => {}
        }
    }
    Err("unterminated traceEvents array".into())
}

/// Pulls `"key":` value text out of one event object (value runs to
/// the next top-level `,` or `}`). Returns `None` when absent.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    if rest.starts_with('{') {
        // Only `args` nests, and it contains no strings or objects.
        let end = rest.find('}')?;
        return Some(&rest[..=end]);
    }
    if let Some(tail) = rest.strip_prefix('"') {
        let end = tail.find('"')?;
        return Some(&tail[..end]);
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn parse_events(json: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for obj in event_objects(json)? {
        let args_raw = field(obj, "args").unwrap_or("{}").to_string();
        let num = |key: &str| -> u64 {
            field(&args_raw, key)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        events.push(Event {
            name: field(obj, "name").ok_or("event without name")?.to_string(),
            ph: field(obj, "ph").ok_or("event without ph")?.to_string(),
            ts: field(obj, "ts")
                .and_then(|v| v.parse().ok())
                .ok_or("event without ts")?,
            dur: field(obj, "dur")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            tid: field(obj, "tid").and_then(|v| v.parse().ok()).unwrap_or(0),
            arg: num("arg"),
            span: num("span"),
            args_raw,
        });
    }
    Ok(events)
}

/// One bundle prepared for merging.
struct NodeTrace {
    /// Process lane in the merged trace: the bundle's recorded node
    /// id, or a synthetic one for unstamped bundles.
    pid: u64,
    label: String,
    /// Added to every event timestamp to land it on the reference
    /// bundle's clock, µs.
    shift_us: f64,
    events: Vec<Event>,
}

/// Picks the reference timeline: the bundle whose clock table names
/// the most other nodes (the hub hears every producer; producers only
/// hear the hub).
fn reference_index(bundles: &[(BundleSummary, u64)]) -> usize {
    bundles
        .iter()
        .enumerate()
        .max_by_key(|(_, (b, _))| b.clock.iter().filter(|r| r.node_id.is_some()).count())
        .map_or(0, |(i, _)| i)
}

/// Merges bundles into one Chrome trace string plus a text summary of
/// the rebasing decisions.
fn merge_bundles(paths: &[&str]) -> Result<(String, String), Box<dyn std::error::Error>> {
    let mut loaded: Vec<(BundleSummary, u64)> = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let bundle = gstore::read_bundle(Path::new(path))?;
        // Synthetic pids start at 1000 to stay clear of real node ids.
        let pid = bundle.node_id.unwrap_or(1_000 + i as u64);
        loaded.push((bundle, pid));
    }
    let reference = reference_index(&loaded);
    let ref_clock = loaded[reference].0.clock.clone();

    let mut summary = String::new();
    let mut nodes = Vec::new();
    for (i, (bundle, pid)) in loaded.iter().enumerate() {
        let (shift_us, error_us) = if i == reference {
            (0.0, 0.0)
        } else {
            // The reference's table maps peer → (peer − reference)
            // offset; subtracting it lands the peer's timestamps on
            // the reference clock.
            match ref_clock.iter().find(|r| r.node_id == Some(*pid)) {
                Some(row) => (-row.offset_us, row.error_us),
                None => (0.0, f64::NAN),
            }
        };
        let label = format!("node {pid} ({})", paths[i]);
        let error_str = if error_us.is_nan() {
            "unknown (no clock row)".to_owned()
        } else {
            format!("\u{b1}{error_us:.1}us")
        };
        summary.push_str(&format!(
            "{label}: shift {shift_us:+.1}us, error {error_str}{}\n",
            if i == reference { " [reference]" } else { "" }
        ));
        nodes.push(NodeTrace {
            pid: *pid,
            label,
            shift_us,
            events: parse_events(&bundle.trace_json)?,
        });
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |ev: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };
    for node in &nodes {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                node.pid,
                node.label.replace('"', "'"),
            ),
            &mut first,
        );
        for ev in &node.events {
            let ts = ev.ts + node.shift_us;
            let mut obj = format!(
                "{{\"name\":\"{}\",\"cat\":\"gscope\",\"ph\":\"{}\"",
                ev.name, ev.ph
            );
            if ev.ph == "i" {
                obj.push_str(",\"s\":\"t\"");
            }
            obj.push_str(&format!(",\"ts\":{ts:.3}"));
            if ev.ph == "X" {
                obj.push_str(&format!(",\"dur\":{:.3}", ev.dur));
            }
            obj.push_str(&format!(
                ",\"pid\":{},\"tid\":{},\"args\":{}}}",
                node.pid, ev.tid, ev.args_raw
            ));
            push(obj, &mut first);
        }
    }

    // Communication edges: every `net.ingest` span's `arg` is a
    // producer span id from the wire. Find that span in another
    // node's trace and draw a flow arrow from its end to the ingest
    // begin. Arrows survive rebasing because both ends shifted.
    let mut edges = 0usize;
    for hub in &nodes {
        for ingest in hub
            .events
            .iter()
            .filter(|e| e.name == "net.ingest" && e.arg != 0)
        {
            let Some((producer, span)) = nodes.iter().find_map(|n| {
                if n.pid == hub.pid {
                    return None;
                }
                n.events
                    .iter()
                    .find(|e| e.ph == "X" && e.span == ingest.arg)
                    .map(|e| (n, e))
            }) else {
                continue;
            };
            edges += 1;
            push(
                format!(
                    "{{\"name\":\"wire\",\"cat\":\"gscope\",\"ph\":\"s\",\"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                    ingest.arg,
                    span.ts + span.dur + producer.shift_us,
                    producer.pid,
                    span.tid,
                ),
                &mut first,
            );
            push(
                format!(
                    "{{\"name\":\"wire\",\"cat\":\"gscope\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                    ingest.arg,
                    ingest.ts + hub.shift_us,
                    hub.pid,
                    ingest.tid,
                ),
                &mut first,
            );
        }
    }
    out.push_str("]}");
    summary.push_str(&format!(
        "{} bundles, {} events, {} cross-process edges\n",
        nodes.len(),
        nodes.iter().map(|n| n.events.len()).sum::<usize>(),
        edges,
    ));
    Ok((out, summary))
}

/// `trace merge <bundle>... [--out merged.json]` — rebase N bundles
/// onto one timeline and emit a single Chrome trace with flow arrows
/// on producer → hub communication edges.
pub fn merge(args: &Args) -> CmdResult {
    let mut paths = Vec::new();
    // Positional 0 is the subcommand word "merge" itself.
    for i in 1..args.positional_count() {
        paths.push(args.positional(i, "bundle")?);
    }
    if paths.len() < 2 {
        return Err("trace merge needs at least two bundle directories".into());
    }
    let (json, mut summary) = merge_bundles(&paths)?;
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, json)?;
            summary.push_str(&format!(
                "wrote {out} — load it at https://ui.perfetto.dev or chrome://tracing\n"
            ));
            Ok(summary)
        }
        None => Ok(json),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstore::{ClockRow, FlightRecorder};
    use gtel::TraceLog;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gtool-merge-{tag}-{}-{:x}",
            std::process::id(),
            gtel::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn producer_bundle(dir: &Path, node: u64) -> (PathBuf, u64) {
        let mut fr = FlightRecorder::new(dir, 2);
        fr.set_node_id(node);
        let log = TraceLog::new(64);
        // The producer's flush span: its id is what rode the wire.
        let span_id = log.record_span_at("producer.flush", 1, 2_000_000, 5_000_000);
        fr.trigger("merge test", &log).unwrap().unwrap();
        (dir.join("postmortem-0000"), span_id)
    }

    fn hub_bundle(dir: &Path, producer_node: u64, producer_span: u64) -> PathBuf {
        let mut fr = FlightRecorder::new(dir, 2);
        fr.set_node_id(1);
        fr.note_clock(ClockRow {
            peer: "127.0.0.1:9".into(),
            node_id: Some(producer_node),
            offset_us: 500.0, // producer clock runs 500µs ahead
            rtt_us: 120.0,
            drift_ppm: 2.0,
            error_us: 80.0,
            samples: 12,
        });
        let log = TraceLog::new(64);
        // Hub ingest span: arg = the producer span id from the wire.
        log.record_span_at("net.ingest", producer_span, 5_100_000, 5_400_000);
        fr.trigger("merge test", &log).unwrap().unwrap();
        dir.join("postmortem-0000")
    }

    #[test]
    fn parses_own_trace_grammar() {
        let log = TraceLog::new(16);
        let id = log.record_span_at("scope.tick", 3, 1_500, 9_500);
        log.event_at(4_000, "mark", 2.5);
        let json = gtel::chrome_trace_json(&log.records());
        let events = parse_events(&json).unwrap();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.ph == "X").unwrap();
        assert_eq!(span.name, "scope.tick");
        assert_eq!(span.span, id);
        assert_eq!(span.arg, 3);
        assert!((span.ts - 1.5).abs() < 1e-9);
        assert!((span.dur - 8.0).abs() < 1e-9);
        let instant = events.iter().find(|e| e.ph == "i").unwrap();
        assert_eq!(instant.name, "mark");
        assert!((instant.ts - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_rebases_and_draws_edges() {
        let (pdir, hdir) = (tmp("prod"), tmp("hub"));
        let (producer, span_id) = producer_bundle(&pdir, 7);
        let hub = hub_bundle(&hdir, 7, span_id);
        let (json, summary) =
            merge_bundles(&[producer.to_str().unwrap(), hub.to_str().unwrap()]).unwrap();
        // The hub (most clock rows) is the reference.
        assert!(summary.contains("[reference]"), "{summary}");
        assert!(summary.contains("node 7"), "{summary}");
        assert!(summary.contains("shift -500.0us"), "{summary}");
        assert!(summary.contains("1 cross-process edges"), "{summary}");
        // Producer flush began at 2000µs on its own clock → 1500µs
        // after removing the +500µs offset; hub ingest stays put.
        assert!(json.contains("\"name\":\"producer.flush\""), "{json}");
        assert!(json.contains("\"pid\":7"), "{json}");
        assert!(json.contains("\"ts\":1500.000"), "{json}");
        assert!(json.contains("\"ts\":5100.000"), "{json}");
        // Flow arrow from flush end (rebased) to ingest begin.
        assert!(
            json.contains(&format!("\"ph\":\"s\",\"id\":{span_id},\"ts\":4500.000")),
            "{json}"
        );
        assert!(
            json.contains(&format!(
                "\"ph\":\"f\",\"bp\":\"e\",\"id\":{span_id},\"ts\":5100.000"
            )),
            "{json}"
        );
        // Process lanes are named.
        assert!(json.contains("\"process_name\""), "{json}");
        std::fs::remove_dir_all(pdir).ok();
        std::fs::remove_dir_all(hdir).ok();
    }

    #[test]
    fn merge_without_clock_rows_still_produces_a_trace() {
        let (adir, bdir) = (tmp("a"), tmp("b"));
        let (a, _) = producer_bundle(&adir, 2);
        let (b, _) = producer_bundle(&bdir, 3);
        let (json, summary) = merge_bundles(&[a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(summary.contains("0 cross-process edges"), "{summary}");
        // Without a clock row the error bound is unknowable; the
        // summary must say so rather than printing NaN.
        assert!(
            summary.contains("error unknown (no clock row)"),
            "{summary}"
        );
        assert!(!summary.contains("NaN"), "{summary}");
        std::fs::remove_dir_all(adir).ok();
        std::fs::remove_dir_all(bdir).ok();
    }
}
