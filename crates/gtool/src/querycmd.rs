//! `query` and `timeline`: shell access to the gquery planner.
//!
//! Both commands take `--store <dir>` pointing at a recording root —
//! a plain store directory, one post-mortem bundle, or a flight
//! directory of bundles — and print what they found plus the
//! planner's work counters, so "did this touch the whole store?" is
//! answerable from the shell.

use gquery::{
    build_timeline, format_timeline, parse_query, QueryEngine, QueryStats, TimelineOptions,
};

use crate::args::Args;
use crate::commands::CmdResult;

fn stats_line(stats: &QueryStats, tier: u16) -> String {
    format!(
        "planner: tier {tier}, {} sources, {}/{} segments opened ({} skipped via index, {} rebuilt), \
         {} blocks decoded ({} pruned), {} frames decoded, {} matched\n",
        stats.sources,
        stats.segments_opened,
        stats.segments_total,
        stats.segments_skipped,
        stats.indexes_rebuilt,
        stats.blocks_decoded,
        stats.blocks_pruned,
        stats.frames_decoded,
        stats.frames_matched,
    )
}

/// `query <expr> --store <dir> [--limit N] [--tier N | --px-width W]`
/// — run a search expression against a recording (`--limit 0` prints
/// every match). `--tier` forces a glod pyramid tier (searching only
/// its pre-decimated envelope frames); `--px-width` lets the planner
/// pick the coarsest tier still yielding one column per pixel over the
/// queried range.
pub fn query(args: &Args) -> CmdResult {
    args.check_known(&["store", "limit", "tier", "px-width"])?;
    // The expression may arrive quoted (one positional) or bare (one
    // positional per predicate) — join them back into one string.
    args.positional(0, "expr")?;
    let expr: String = (0..args.positional_count())
        .map(|i| args.positional(i, "expr").unwrap_or(""))
        .collect::<Vec<_>>()
        .join(" ");
    let store = args.get("store").ok_or("query needs --store <dir>")?;
    let limit = args.get_or("limit", 50usize)?;
    if args.get("tier").is_some() && args.get("px-width").is_some() {
        return Err("--tier and --px-width are mutually exclusive".into());
    }
    let q = parse_query(&expr).map_err(|e| format!("bad query: {e}"))?;
    let tier = if let Some(t) = args.get("tier") {
        t.parse::<u16>().map_err(|_| format!("bad --tier {t:?}"))?
    } else if let Some(w) = args.get("px-width") {
        let px: usize = w.parse().map_err(|_| format!("bad --px-width {w:?}"))?;
        let (from_us, to_us) = (q.from_us.unwrap_or(0), q.to_us.unwrap_or(u64::MAX));
        gstore::lod::pick_tier(std::path::Path::new(store), from_us, to_us, px)?.0
    } else {
        0
    };
    let engine = QueryEngine::open(store)?;
    let outcome = engine.query_tier(&q, tier)?;

    let mut out = String::new();
    let shown = if limit == 0 {
        outcome.matches.len()
    } else {
        outcome.matches.len().min(limit)
    };
    if !outcome.matches.is_empty() {
        let src_w = outcome.matches[..shown]
            .iter()
            .map(|m| m.source.len())
            .max()
            .unwrap_or(6)
            .max(6);
        for m in &outcome.matches[..shown] {
            let name = m.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
            out.push_str(&format!(
                "{:>12.3}ms  {:<src_w$}  {:<24} {}\n",
                m.time_us as f64 / 1_000.0,
                m.source,
                name,
                m.value,
            ));
        }
    }
    if shown < outcome.matches.len() {
        out.push_str(&format!(
            "… {} more (raise --limit to see them)\n",
            outcome.matches.len() - shown
        ));
    }
    out.push_str(&format!("{} matches in {}\n", outcome.matches.len(), store));
    out.push_str(&stats_line(&outcome.stats, tier));
    Ok(out)
}

/// Reads a bundle directory's `node:` stamp without decoding its
/// stores (cheap enough to probe every bundle under a flight dir).
fn bundle_node(dir: &std::path::Path) -> Option<u64> {
    std::fs::read_to_string(dir.join("meta.txt"))
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("node: "))
        .and_then(|v| v.trim().parse().ok())
}

/// Source-label prefixes (`""` for a root bundle, `postmortem-NNNN/`
/// for children) of bundles under `root` stamped with `node`.
fn node_prefixes(root: &std::path::Path, node: u64) -> Vec<String> {
    let mut prefixes = Vec::new();
    if bundle_node(root) == Some(node) {
        prefixes.push(String::new());
    }
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("postmortem-") && bundle_node(&entry.path()) == Some(node) {
                prefixes.push(format!("{name}/"));
            }
        }
    }
    prefixes
}

/// `timeline --store <dir> [--window-ms W] [--anchor-ms T]
/// [--within GLOB] [--node N]` — merge spans, tuples, and breaches
/// from every source around an anchor (default: each source's last
/// event). `--node` keeps only bundles a specific fleet process wrote
/// (matched against the `node:` stamp in each bundle's `meta.txt`).
pub fn timeline(args: &Args) -> CmdResult {
    args.check_known(&["store", "window-ms", "anchor-ms", "within", "node"])?;
    let store = args.get("store").ok_or("timeline needs --store <dir>")?;
    let mut opts = TimelineOptions {
        window_ms: args.get_or("window-ms", 100.0f64)?,
        ..TimelineOptions::default()
    };
    if let Some(v) = args.get("anchor-ms") {
        opts.anchor_ms = Some(
            v.parse::<f64>()
                .map_err(|_| format!("bad --anchor-ms {v:?}"))?,
        );
    }
    opts.within = args.get("within").map(str::to_owned);
    let node: Option<u64> = match args.get("node") {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --node {v:?}"))?),
        None => None,
    };

    let engine = QueryEngine::open(store)?;
    let mut events = build_timeline(&engine, &opts)?;
    if let Some(node) = node {
        let prefixes = node_prefixes(std::path::Path::new(store), node);
        if prefixes.is_empty() {
            return Ok(format!("no bundle stamped node {node} in {store}\n"));
        }
        events.retain(|e| {
            prefixes.iter().any(|p| {
                if p.is_empty() {
                    // Root-bundle sources are bare `stats` / `spans`.
                    !e.source.contains('/') && e.source != "store"
                } else {
                    e.source.starts_with(p.as_str())
                }
            })
        });
    }
    if events.is_empty() {
        return Ok(format!(
            "no events within ±{}ms of the anchor in {store}\n",
            opts.window_ms
        ));
    }
    let mut out = format_timeline(&events);
    let breaches = events
        .iter()
        .filter(|e| e.kind == gquery::EventKind::Breach)
        .count();
    out.push_str(&format!(
        "{} events from {} sources (±{}ms window, {}){}, {} breaches\n",
        events.len(),
        engine.sources().len(),
        opts.window_ms,
        match opts.anchor_ms {
            Some(ms) => format!("anchor {ms}ms"),
            None => "tail-aligned".to_string(),
        },
        match node {
            Some(n) => format!(", node {n}"),
            None => String::new(),
        },
        breaches,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::TimeStamp;
    use gstore::{FlightRecorder, Store, StoreConfig};
    use gtel::{DeadlineMiss, Registry, TraceLog};
    use std::path::PathBuf;

    fn args(s: &str) -> Args {
        Args::parse(
            s.split_whitespace().map(str::to_owned),
            crate::BOOLEAN_FLAGS,
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gtool-query-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_store(dir: &PathBuf) {
        let mut store = Store::open(
            dir,
            StoreConfig {
                block_bytes: 256,
                block_frames: 16,
                segment_bytes: 2048,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..500u64 {
            let name = if i % 5 == 0 { "scope.tick#t1" } else { "pulse" };
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some(name))
                .unwrap();
        }
        store.close().unwrap();
    }

    fn demo_bundle(dir: &PathBuf) {
        let mut fr = FlightRecorder::new(dir, 4);
        let reg = Registry::shared();
        reg.counter("scope.ticks").add(3);
        fr.note_stats(TimeStamp::from_micros(11_000), &reg);
        fr.note_breach(&DeadlineMiss {
            label: "scope.tick",
            t_ns: 9_000_000,
            duration_ns: 8_000_000,
            budget_ns: 4_000_000,
        });
        let log = TraceLog::new(64);
        log.record_span_at("gel.iteration", 1, 0, 12_000_000);
        log.record_span_at("scope.tick", 1, 1_000_000, 9_000_000);
        fr.trigger("test", &log).unwrap().unwrap();
    }

    #[test]
    fn query_prints_matches_and_planner_stats() {
        let dir = tmp("qry");
        demo_store(&dir);
        let report = query(&args(&format!(
            "name=scope.tick dur>=400 --store {} --limit 3",
            dir.display()
        )))
        .unwrap();
        assert!(report.contains("scope.tick#t1"), "{report}");
        assert!(report.contains("20 matches"), "{report}");
        assert!(report.contains("more (raise --limit"), "{report}");
        assert!(report.contains("planner:"), "{report}");
        assert!(report.contains("skipped via index"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_rejects_bad_input() {
        let dir = tmp("qry-bad");
        demo_store(&dir);
        assert!(query(&args(&format!("frob=1 --store {}", dir.display()))).is_err());
        assert!(query(&args("name=x")).is_err()); // no --store
        assert!(query(&args("name=x --store /nonexistent-path")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_node_filter_selects_one_bundle() {
        let dir = tmp("tl-node");
        // Two bundles from different fleet nodes in one flight dir.
        for node in [1u64, 2] {
            let mut fr = FlightRecorder::new(&dir, 4);
            fr.set_node_id(node);
            let log = TraceLog::new(64);
            log.record_span_at("gel.iteration", node, 0, 12_000_000);
            fr.trigger("test", &log).unwrap().unwrap();
        }
        let all = timeline(&args(&format!("--store {}", dir.display()))).unwrap();
        assert!(all.contains("postmortem-0000/"), "{all}");
        assert!(all.contains("postmortem-0001/"), "{all}");
        let one = timeline(&args(&format!("--store {} --node 2", dir.display()))).unwrap();
        assert!(one.contains("postmortem-0001/"), "{one}");
        assert!(!one.contains("postmortem-0000/"), "{one}");
        assert!(one.contains(", node 2"), "{one}");
        let none = timeline(&args(&format!("--store {} --node 9", dir.display()))).unwrap();
        assert!(none.contains("no bundle stamped node 9"), "{none}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_on_a_bundle_shows_the_breach() {
        let dir = tmp("tl");
        demo_bundle(&dir);
        let report = timeline(&args(&format!("--store {}", dir.display()))).unwrap();
        assert!(report.contains("BREACH"), "{report}");
        assert!(report.contains("breach.scope.tick"), "{report}");
        assert!(report.contains("1 breaches"), "{report}");
        assert!(report.contains("tail-aligned"), "{report}");

        let empty = timeline(&args(&format!(
            "--store {} --window-ms 0.001 --anchor-ms 99999",
            dir.display()
        )))
        .unwrap();
        assert!(empty.contains("no events"), "{empty}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
