//! `gscope-tool trace` and `gscope-tool health`: run the whole
//! pipeline — event loop, polled scope, frame cache, loopback gnet
//! link, gstore recording — under a thread-local tracer, then export
//! what happened.
//!
//! The loop runs on a virtual clock (deterministic tick count, no
//! sleeping), while span timestamps come from the wall clock — so the
//! spans measure *real* stage cost. That split is also what makes the
//! CI flight-recorder smoke deterministic: `--budget-us 0` clamps
//! every stage budget to 1ns, which any real stage exceeds, so the
//! first tick misses its deadline and triggers a post-mortem bundle
//! without any actual slowness or timing dependence.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use gel::{Continue, MainLoop, Priority, Quantizer, TimeDelta, TimeStamp, VirtualClock};
use gnet::{attach_server, ScopeClient, ScopeServer};
use gscope::{attach_scope, Scope, SigConfig, SigSource};
use gstore::{FlightRecorder, Store, StoreConfig};
use gtel::{DeadlineMonitor, Registry, TraceLog};
use parking_lot::Mutex;

use crate::args::Args;
use crate::commands::CmdResult;

const TRACE_FLAGS: &[&str] = &[
    "ticks",
    "period",
    "signals",
    "budget-us",
    "window",
    "allow",
    "flight-dir",
    "max-bundles",
    "out",
    "top",
    "slow-tick",
    "slow-us",
    "no-net",
];

struct RunConfig {
    ticks: u64,
    period: TimeDelta,
    signals: usize,
    /// Override: the whole-iteration budget in µs; stage budgets
    /// scale proportionally. `Some(0)` clamps everything to 1ns.
    budget_us: Option<u64>,
    window: usize,
    allow: u64,
    flight_dir: Option<String>,
    max_bundles: u64,
    /// Make signal 0 sleep `slow_us` on poll number `slow_tick`.
    slow: Option<(u64, u64)>,
    net: bool,
}

impl RunConfig {
    fn from_args(args: &Args) -> Result<Self, Box<dyn std::error::Error>> {
        let slow_tick: u64 = args.get_or("slow-tick", 0)?;
        let slow_us: u64 = args.get_or("slow-us", 2_000)?;
        Ok(RunConfig {
            ticks: args.get_or("ticks", 40)?,
            period: TimeDelta::from_millis(args.get_or("period", 10)?),
            signals: args.get_or("signals", 3)?,
            budget_us: match args.get("budget-us") {
                Some(v) => Some(v.parse().map_err(|_| format!("bad --budget-us {v:?}"))?),
                None => None,
            },
            window: args.get_or("window", 20)?,
            allow: args.get_or("allow", 0)?,
            flight_dir: args.get("flight-dir").map(str::to_owned),
            max_bundles: args.get_or("max-bundles", 2)?,
            slow: (slow_tick > 0).then_some((slow_tick, slow_us)),
            net: !args.has("no-net"),
        })
    }
}

struct RunReport {
    log: Arc<TraceLog>,
    monitor: Arc<Mutex<DeadlineMonitor>>,
    bundles: Vec<PathBuf>,
    ticks: u64,
    recorded_tuples: u64,
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gtool-{tag}-{}-{:x}",
        std::process::id(),
        gtel::monotonic_ns()
    ))
}

/// Builds and runs the traced pipeline; see the module docs.
fn traced_run(cfg: &RunConfig) -> Result<RunReport, Box<dyn std::error::Error>> {
    // Exact newest-N retention makes the exports deterministic.
    let log = Arc::new(TraceLog::with_shards(65_536, 1));
    let _tracer = gtel::with_thread_tracer(Arc::clone(&log));
    let registry = Registry::shared();

    let clock = VirtualClock::new();
    let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());
    ml.set_telemetry(Arc::clone(&registry));

    // The scope under test: FUNC signals (plus a buffered one fed over
    // TCP), polling at the configured period, recording to a store so
    // scope.record / store.block spans appear under each tick.
    let mut scope = Scope::new("traced", 240, 120, Arc::new(clock.clone()));
    scope.set_telemetry(Arc::clone(&registry));
    for i in 0..cfg.signals {
        let freq = 0.5 + i as f64 * 0.7;
        let mut phase = 0.0f64;
        let mut calls = 0u64;
        let slow = cfg.slow.filter(|_| i == 0);
        let src = SigSource::func(move || {
            calls += 1;
            if let Some((at, us)) = slow {
                if calls == at {
                    // The forced slow tick: real wall time the span
                    // (and the deadline monitor) must see.
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            phase += 0.02 * freq;
            phase.sin() * 40.0 + 50.0
        });
        scope.add_signal(format!("wave{i}"), src, SigConfig::default())?;
    }
    if cfg.net {
        scope.add_signal("net.sig", SigSource::Buffer, SigConfig::default())?;
    }
    let store_dir = tmp_dir("trace-store");
    let store_cfg = StoreConfig {
        block_bytes: 512,
        block_frames: 8,
        ..StoreConfig::default()
    };
    scope.start_recording_sink(Store::open(&store_dir, store_cfg)?);
    scope.set_polling_mode(cfg.period)?;
    scope.start();
    let scope = scope.into_shared();

    // Loopback gnet link: the client send runs at High priority, so
    // on the same thread the bytes are already readable when this
    // iteration's I/O watch polls the server — net.server.poll lands
    // inside the same root span as the tick that consumes the data.
    let mut net_server = None;
    if cfg.net {
        let mut server = ScopeServer::bind("127.0.0.1:0")?;
        server.add_scope(Arc::clone(&scope));
        let local = server.local_addr()?;
        let server = Arc::new(Mutex::new(server));
        net_server = Some(Arc::clone(&server));
        let mut client = ScopeClient::connect(local)?;
        // Origin-stamp the loopback producer so hub ingest spans and
        // bundle clock rows carry its identity.
        client.set_node_id(2);
        let mut n = 0u64;
        ml.add_timeout_with_priority(
            cfg.period,
            Priority::High,
            Box::new(move |tick| {
                n += 1;
                client.send_parts(tick.now, (n % 100) as f64, Some("net.sig"));
                let _ = client.pump();
                Continue::Keep
            }),
        );
        attach_server(&server, &mut ml);
    }

    attach_scope(&scope, &mut ml);

    // Display refresh at Low priority, after the scope tick.
    let frames = Arc::new(Mutex::new(grender::FrameCache::new()));
    {
        let scope = Arc::clone(&scope);
        let frames = Arc::clone(&frames);
        ml.add_timeout_with_priority(
            cfg.period,
            Priority::Low,
            Box::new(move |_| {
                frames.lock().render(&scope.lock());
                Continue::Keep
            }),
        );
    }

    // Deadline monitor + flight recorder, last in the Low tier so it
    // observes everything this tick recorded.
    let period_ns = cfg.period.as_micros() * 1_000;
    let mut monitor_inner = DeadlineMonitor::for_period(&registry, period_ns, cfg.window);
    if let Some(us) = cfg.budget_us {
        monitor_inner.scale_budgets(us.saturating_mul(1_000), period_ns);
    }
    monitor_inner.set_breach_threshold(cfg.allow);
    let monitor = Arc::new(Mutex::new(monitor_inner));
    let flight = cfg.flight_dir.as_ref().map(|dir| {
        let mut fr = FlightRecorder::new(dir, 8);
        fr.set_max_bundles(cfg.max_bundles);
        // The traced pipeline plays the hub role in its bundles.
        fr.set_node_id(1);
        Arc::new(Mutex::new(fr))
    });
    let bundles: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let monitor = Arc::clone(&monitor);
        let flight = flight.clone();
        let bundles = Arc::clone(&bundles);
        let log = Arc::clone(&log);
        let registry = Arc::clone(&registry);
        ml.add_timeout_with_priority(
            cfg.period,
            Priority::Low,
            Box::new(move |tick| {
                let misses = monitor.lock().scan(&log);
                if let Some(flight) = &flight {
                    let mut flight = flight.lock();
                    flight.note_stats(tick.now, &registry);
                    if let Some(server) = &net_server {
                        // Freeze each peer's wire-clock model so the
                        // bundle is mergeable by `trace merge`.
                        for info in server.lock().client_stats() {
                            if let Some(cs) = info.clock {
                                flight.note_clock(gstore::ClockRow {
                                    peer: info.peer,
                                    node_id: info.node_id,
                                    offset_us: cs.offset_us,
                                    rtt_us: cs.rtt_us,
                                    drift_ppm: cs.drift_ppm,
                                    error_us: cs.error_us,
                                    samples: cs.samples,
                                });
                            }
                        }
                    }
                    for miss in &misses {
                        // Every miss rides into the next bundle's
                        // `spans/` store as a `breach.<label>` tuple,
                        // making it searchable via `gtool query
                        // severity=breach`.
                        flight.note_breach(miss);
                    }
                    if let Some(miss) = misses.first() {
                        let reason = format!(
                            "deadline miss: {} took {}ns, budget {}ns",
                            miss.label, miss.duration_ns, miss.budget_ns
                        );
                        if let Ok(Some(info)) = flight.trigger(&reason, &log) {
                            bundles.lock().push(info.path);
                        }
                    }
                }
                Continue::Keep
            }),
        );
    }

    let horizon = TimeStamp::ZERO + cfg.period.saturating_mul(cfg.ticks) + cfg.period;
    ml.run_until(horizon);
    drop(ml);

    // Final scan: the last iteration's root span closed after the
    // in-loop monitor ran.
    monitor.lock().scan(&log);
    let recorded_tuples = scope.lock().stats().recorded_tuples;
    scope.lock().stop_recording();
    let _ = std::fs::remove_dir_all(&store_dir);

    let bundles = bundles.lock().clone();
    Ok(RunReport {
        log,
        monitor,
        bundles,
        ticks: cfg.ticks,
        recorded_tuples,
    })
}

fn run_summary(report: &RunReport) -> String {
    let mut out = format!(
        "traced {} ticks: {} span records ({} dropped), {} tuples recorded\n",
        report.ticks,
        report.log.recorded(),
        report.log.dropped(),
        report.recorded_tuples,
    );
    let monitor = report.monitor.lock();
    out.push_str(&format!(
        "deadline misses: {}{}\n",
        monitor.total_misses(),
        if monitor.breached() {
            " (SLO BREACH)"
        } else {
            ""
        }
    ));
    for path in &report.bundles {
        out.push_str(&format!("post-mortem bundle: {}\n", path.display()));
    }
    out
}

/// `trace record|export|tree|slowest|merge [flags]` — run the
/// instrumented pipeline and export its spans, or merge frozen
/// bundles from several processes onto one timeline.
pub fn trace(args: &Args) -> CmdResult {
    args.check_known(TRACE_FLAGS)?;
    let sub = args.positional(0, "record|export|tree|slowest|merge")?;
    match sub {
        "merge" => crate::mergecmd::merge(args),
        "record" => {
            let cfg = RunConfig::from_args(args)?;
            let out = args.get("out").unwrap_or("trace.json");
            let report = traced_run(&cfg)?;
            std::fs::write(out, gtel::chrome_trace_json(&report.log.records()))?;
            let mut text = run_summary(&report);
            text.push_str(&format!(
                "wrote {out} — load it at https://ui.perfetto.dev or chrome://tracing\n"
            ));
            Ok(text)
        }
        "export" => {
            // With a bundle directory: dump its frozen trace instead
            // of running a fresh pipeline.
            let json = if let Ok(bundle) = args.positional(1, "bundle") {
                gstore::read_bundle(bundle)?.trace_json
            } else {
                let cfg = RunConfig::from_args(args)?;
                let report = traced_run(&cfg)?;
                gtel::chrome_trace_json(&report.log.records())
            };
            match args.get("out") {
                Some(out) => {
                    std::fs::write(out, json)?;
                    Ok(format!(
                        "wrote {out} — load it at https://ui.perfetto.dev or chrome://tracing\n"
                    ))
                }
                None => Ok(json),
            }
        }
        "tree" => {
            if let Ok(bundle) = args.positional(1, "bundle") {
                let summary = gstore::read_bundle(bundle)?;
                return Ok(summary.tree);
            }
            let cfg = RunConfig::from_args(args)?;
            let report = traced_run(&cfg)?;
            Ok(gtel::span_tree(&report.log.records()))
        }
        "slowest" => {
            let cfg = RunConfig::from_args(args)?;
            let top: usize = args.get_or("top", 10)?;
            let report = traced_run(&cfg)?;
            Ok(format!(
                "{}\n{}",
                run_summary(&report),
                gtel::slowest_spans(&report.log.records(), top)
            ))
        }
        other => Err(format!(
            "unknown trace subcommand {other:?} (record|export|tree|slowest|merge)"
        )
        .into()),
    }
}

/// `health [flags]` — run the instrumented pipeline and judge it
/// against the per-stage deadline budgets. A breached SLO window is
/// an `Err`, so the process exits non-zero (CI gate shape).
pub fn health(args: &Args) -> CmdResult {
    args.check_known(TRACE_FLAGS)?;
    let cfg = RunConfig::from_args(args)?;
    let report = traced_run(&cfg)?;
    let summary = run_summary(&report);
    let monitor = report.monitor.lock();
    let text = format!("{}\n{}", summary.trim_end(), monitor.summary());
    if monitor.breached() {
        Err(format!("deadline SLO breached\n{text}").into())
    } else {
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(s: &str) -> Args {
        Args::parse(
            s.split_whitespace().map(str::to_owned),
            crate::BOOLEAN_FLAGS,
        )
        .unwrap()
    }

    fn tmp_out(tag: &str) -> PathBuf {
        tmp_dir(tag)
    }

    #[test]
    fn trace_record_writes_chrome_json() {
        let dir = tmp_out("rec");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        let report = trace(&args(&format!(
            "record --ticks 12 --period 5 --out {}",
            out.display()
        )))
        .unwrap();
        assert!(report.contains("traced 12 ticks"));
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"gel.iteration\""));
        assert!(json.contains("\"name\":\"scope.tick\""));
        assert!(json.contains("\"name\":\"render.frame\""));
        assert!(json.contains("\"name\":\"net.server.poll\""));
        assert!(json.contains("\"name\":\"store.block\""));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tight_budget_triggers_flight_bundle() {
        let dir = tmp_out("flight");
        let report = trace(&args(&format!(
            "record --ticks 10 --period 5 --budget-us 0 --flight-dir {} --out {}",
            dir.display(),
            dir.join("t.json").display()
        )))
        .unwrap();
        assert!(report.contains("post-mortem bundle"));
        let bundle = dir.join("postmortem-0000");
        let summary = gstore::read_bundle(&bundle).unwrap();
        assert!(summary.meta.contains("deadline miss"));
        assert!(summary.stats_tuples > 0);
        // Bundle-dir variants of export/tree read it back.
        let json = trace(&args(&format!("export {}", bundle.display()))).unwrap();
        assert!(json.contains("\"traceEvents\""));
        let tree = trace(&args(&format!("tree {}", bundle.display()))).unwrap();
        assert!(tree.contains("gel.iteration"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn health_passes_with_sane_budgets_and_fails_tight() {
        // 100ms budgets vs µs-scale stages: no misses. The period is
        // deliberately generous — this asserts budget semantics, and a
        // loaded test machine can stall any tick past a tight budget.
        let ok = health(&args("--ticks 8 --period 100")).unwrap();
        assert!(ok.contains("ok"));
        assert!(!ok.contains("BREACH"));
        // 1ns budgets: every tick misses, Err carries the table.
        let err = health(&args("--ticks 8 --period 10 --budget-us 0")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("deadline SLO breached"));
        assert!(text.contains("BREACH"));
    }

    #[test]
    fn slowest_surfaces_forced_slow_tick() {
        let report = trace(&args(
            "slowest --ticks 10 --period 5 --slow-tick 4 --slow-us 3000 --top 5",
        ))
        .unwrap();
        assert!(report.contains("scope.tick"));
        // The forced 3ms poll dominates every per-stage max.
        let tick_line = report
            .lines()
            .find(|l| l.trim_start().starts_with("scope.tick"))
            .unwrap();
        assert!(
            tick_line.contains("ms"),
            "slow tick not visible: {tick_line}"
        );
    }
}
