//! The CLI subcommand implementations.
//!
//! Each command is a function from parsed [`Args`] to a report string,
//! so the whole tool is unit-testable without spawning processes.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::Arc;

use gel::{Clock, SystemClock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gnet::{Protocol, ScopeClient, ScopeServer};
use gscope::{Scope, SigSource, StatsExport, Tuple, TupleReader, TupleSource, TupleWriter};
use gstore::{catalog_segments, Store, StoreConfig, StoreReader};
use gtel::Registry;

use crate::args::Args;

/// Boxed error alias for command results.
pub type CmdResult = Result<String, Box<dyn std::error::Error>>;

fn load_tuples(path: &str) -> Result<Vec<Tuple>, Box<dyn std::error::Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(TupleReader::new(BufReader::new(file)).read_all()?)
}

/// Per-signal roll-up: count, min, max.
type SignalSummary = BTreeMap<String, (u64, f64, f64)>;

fn fold_signal(per_signal: &mut SignalSummary, name: Option<&str>, value: f64) {
    let name = name.unwrap_or(gscope::UNNAMED_SIGNAL);
    // Entry-by-reference first: one String allocation per distinct
    // signal, not per tuple.
    if let Some(entry) = per_signal.get_mut(name) {
        entry.0 += 1;
        entry.1 = entry.1.min(value);
        entry.2 = entry.2.max(value);
    } else {
        per_signal.insert(name.to_owned(), (1, value, value));
    }
}

fn summary_block(
    head: &str,
    count: u64,
    span: Option<(TimeStamp, TimeStamp)>,
    per_signal: &SignalSummary,
) -> String {
    let Some((t0, t1)) = span else {
        return format!("{head}: empty recording");
    };
    let mut out = format!(
        "{head}: {count} tuples, {} signals, {:.3}s .. {:.3}s ({:.3}s span)\n",
        per_signal.len(),
        t0.as_secs_f64(),
        t1.as_secs_f64(),
        (t1 - t0).as_secs_f64(),
    );
    for (name, (count, min, max)) in per_signal {
        out.push_str(&format!(
            "  {name:<20} {count:>8} samples   range [{min}, {max}]\n"
        ));
    }
    out
}

/// What `summary_block` needs for one tier: total tuples, time span,
/// and the per-signal breakdown.
type TierSummary = (u64, Option<(TimeStamp, TimeStamp)>, SignalSummary);

/// Per-tier roll-up from `.gidx` sidecars alone: per-signal counts,
/// value ranges, and the tier's time span come straight from the
/// Signal-class terms — no block is decoded. Returns `None` when any
/// segment lacks a valid sidecar, and the caller falls back to the
/// full streamed walk.
fn indexed_tier_summary(segs: &[&gstore::SegmentInfo]) -> Option<TierSummary> {
    let mut per_signal = SignalSummary::new();
    let mut count = 0u64;
    let mut span: Option<(u64, u64)> = None;
    for seg in segs {
        let gstore::IndexProbe::Valid(idx) = gstore::probe_index(&seg.path).ok()? else {
            return None;
        };
        for term in idx.terms_of(gstore::TermClass::Signal) {
            let name = if term.name.is_empty() {
                gscope::UNNAMED_SIGNAL
            } else {
                &term.name
            };
            if let Some(entry) = per_signal.get_mut(name) {
                entry.0 += term.count;
                entry.1 = entry.1.min(term.min_value);
                entry.2 = entry.2.max(term.max_value);
            } else {
                per_signal.insert(
                    name.to_owned(),
                    (term.count, term.min_value, term.max_value),
                );
            }
            count += term.count;
            span = Some(match span {
                None => (term.first_us, term.last_us),
                Some((a, b)) => (a.min(term.first_us), b.max(term.last_us)),
            });
        }
    }
    let span = span.map(|(a, b)| (TimeStamp::from_micros(a), TimeStamp::from_micros(b)));
    Some((count, span, per_signal))
}

/// Summarizes a store directory: catalog plus, per tier, either the
/// `.gidx` sidecar roll-up (no block decodes) or a streamed walk when
/// a sidecar is missing or damaged.
fn store_info(dir: &str) -> CmdResult {
    let catalog =
        catalog_segments(Path::new(dir)).map_err(|e| format!("cannot open {dir}: {e}"))?;
    // Every tier actually present, not a hardcoded roll-up list: the
    // glod pyramid grows tiers as history accumulates.
    let mut tiers: Vec<u16> = catalog.iter().map(|s| s.tier).collect();
    tiers.sort_unstable();
    tiers.dedup();
    let mut out = String::new();
    let mut tier0_frames: Option<u64> = None;
    for tier in tiers {
        let segs: Vec<_> = catalog.iter().filter(|s| s.tier == tier).collect();
        if segs.is_empty() {
            continue;
        }
        let mut crc_skipped = 0;
        let (count, span, per_signal, via) = match indexed_tier_summary(&segs) {
            Some((count, span, per_signal)) => (count, span, per_signal, ", indexed"),
            None => {
                let mut reader = StoreReader::open_tier(dir, tier)?;
                let mut per_signal = SignalSummary::new();
                let mut count = 0u64;
                let mut span: Option<(TimeStamp, TimeStamp)> = None;
                while let Some(t) = reader.next_tuple()? {
                    fold_signal(&mut per_signal, t.name.as_deref(), t.value);
                    count += 1;
                    span = Some(match span {
                        None => (t.time, t.time),
                        Some((t0, _)) => (t0, t.time),
                    });
                }
                crc_skipped = reader.stats().crc_skipped_blocks;
                (count, span, per_signal, "")
            }
        };
        if tier == 0 {
            tier0_frames = Some(count);
        }
        // Effective decimation vs the raw tier: tier >= 1 frames come
        // in (min, max) pairs, so `count / 2` source windows survive.
        let decim = match (tier, tier0_frames) {
            (0, _) => String::new(),
            (_, Some(f0)) if count > 0 => {
                format!(", ~1:{} decimation", (f0 * 2).div_ceil(count).max(1))
            }
            _ => String::new(),
        };
        let bytes: u64 = segs.iter().map(|s| s.bytes).sum();
        let head = format!(
            "{dir} tier {tier} ({} segments, {bytes} bytes{}{decim}{via})",
            segs.len(),
            if tier >= 1 { ", min/max envelopes" } else { "" },
        );
        out.push_str(&summary_block(&head, count, span, &per_signal));
        if crc_skipped > 0 {
            out.push_str(&format!("  ({crc_skipped} corrupt blocks skipped)\n"));
        }
    }
    if out.is_empty() {
        out = format!("{dir}: empty store");
    }
    Ok(out)
}

/// `info <file-or-store-dir> [--period MS]` — summarize a recording.
///
/// Text files are summarized in one streaming pass (`next_raw`, no
/// per-tuple allocation, O(1) memory in the file size), then replayed
/// through a scope for the §4.5-style self-telemetry report. Store
/// directories are summarized per tier straight off the segment
/// catalog and a streamed read.
pub fn info(args: &Args) -> CmdResult {
    args.check_known(&["period"])?;
    let path = args.positional(0, "file")?;
    let period_ms: u64 = args.get_or("period", 50)?;
    if Path::new(path).is_dir() {
        return store_info(path);
    }
    // Pass 1 — streamed summary. Large recordings are never buffered
    // for this part: each line is parsed in place and folded.
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = TupleReader::new(BufReader::new(file));
    let mut per_signal = SignalSummary::new();
    let mut count = 0u64;
    let mut span: Option<(TimeStamp, TimeStamp)> = None;
    while let Some(raw) = reader.next_raw()? {
        fold_signal(&mut per_signal, raw.name, raw.value);
        count += 1;
        span = Some(match span {
            None => (raw.time, raw.time),
            Some((t0, _)) => (t0, raw.time),
        });
    }
    let mut out = summary_block(path, count, span, &per_signal);
    if span.is_none() {
        return Ok(out);
    }
    // Pass 2 — replay telemetry (§4.5-style self-measurement): drive
    // the recording through a scope and report what the scope saw.
    let tuples = load_tuples(path)?;
    let registry = Registry::shared();
    let scope = replay_scope_with(
        tuples,
        400,
        TimeDelta::from_millis(period_ms),
        Some(Arc::clone(&registry)),
    )?;
    let stats = scope.stats();
    out.push_str(&format!(
        "replay @ {period_ms}ms: {} ticks ({} missed), {} late drops\n",
        registry.counter("scope.ticks").get(),
        stats.missed_ticks,
        stats.late_drops,
    ));
    for name in scope.signal_names() {
        let displayed = scope
            .signal(&name)
            .map(|s| s.history().value_count())
            .unwrap_or(0);
        out.push_str(&format!("  {name:<20} {displayed:>8} displayed samples\n"));
    }
    Ok(out)
}

/// Builds a [`StoreConfig`] from the shared store tuning flags.
fn store_cfg(args: &Args) -> Result<StoreConfig, Box<dyn std::error::Error>> {
    let mut cfg = StoreConfig {
        fsync: args.has("fsync"),
        ..StoreConfig::default()
    };
    cfg.segment_bytes = args.get_or("segment-kib", cfg.segment_bytes >> 10)? << 10;
    cfg.block_frames = args.get_or("block-frames", cfg.block_frames)?;
    if let Some(v) = args.get("retain-bytes") {
        cfg.retain_bytes = Some(v.parse().map_err(|_| format!("bad --retain-bytes {v:?}"))?);
    }
    if let Some(v) = args.get("retain-age-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("bad --retain-age-ms {v:?}"))?;
        cfg.retain_age = Some(TimeDelta::from_millis(ms));
    }
    let bucket_ms: u64 = args.get_or("bucket-ms", cfg.compact_bucket.as_micros() / 1_000)?;
    cfg.compact_bucket = TimeDelta::from_millis(bucket_ms.max(1));
    Ok(cfg)
}

/// `record <file> --store <dir> [--fsync] [--segment-kib N] [--block-frames N]
/// [--retain-bytes N] [--retain-age-ms MS] [--bucket-ms MS]` — ingest a
/// §3.3 text recording into a binary store, streaming line by line.
pub fn record(args: &Args) -> CmdResult {
    args.check_known(&[
        "store",
        "fsync",
        "segment-kib",
        "block-frames",
        "retain-bytes",
        "retain-age-ms",
        "bucket-ms",
    ])?;
    let path = args.positional(0, "file")?;
    let dir = args.get("store").ok_or("missing --store <dir>")?;
    let text_bytes = std::fs::metadata(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?
        .len();
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = TupleReader::new(BufReader::new(file));
    let mut store = Store::open(dir, store_cfg(args)?)?;
    let mut frames = 0u64;
    while let Some(raw) = reader.next_raw()? {
        store.append(raw.time, raw.value, raw.name)?;
        frames += 1;
    }
    let stats = store.close()?;
    let ratio = if stats.bytes_written > 0 {
        text_bytes as f64 / stats.bytes_written as f64
    } else {
        0.0
    };
    Ok(format!(
        "recorded {frames} tuples into {dir}: {} bytes in {} segments ({} rolls), {ratio:.1}x smaller than text\n",
        stats.bytes_written,
        stats.segments_rolled + 1,
        stats.segments_rolled,
    ))
}

/// `replay --store <dir> [--from MS] [--to MS] [--out FILE]
/// [--tier N | --px-width W]` — replay a store back to §3.3 text,
/// seeking straight to `--from` through the block index instead of
/// scanning prior segments. `--tier` forces a glod pyramid tier
/// (pre-decimated min/max envelopes straight off disk); `--px-width`
/// lets the planner pick the coarsest tier that still yields one
/// envelope column per pixel.
pub fn replay(args: &Args) -> CmdResult {
    args.check_known(&["store", "from", "to", "out", "tier", "px-width"])?;
    let dir = args.get("store").ok_or("missing --store <dir>")?;
    if args.get("tier").is_some() && args.get("px-width").is_some() {
        return Err("--tier and --px-width are mutually exclusive".into());
    }
    let from_us = match args.get("from") {
        Some(from) => {
            let ms: f64 = from.parse().map_err(|_| format!("bad --from {from:?}"))?;
            (ms * 1_000.0) as u64
        }
        None => 0,
    };
    let to_us = match args.get("to") {
        Some(to) => {
            let ms: f64 = to.parse().map_err(|_| format!("bad --to {to:?}"))?;
            (ms * 1_000.0) as u64
        }
        None => u64::MAX,
    };
    let (tier, planner) = if let Some(t) = args.get("tier") {
        let t: u16 = t.parse().map_err(|_| format!("bad --tier {t:?}"))?;
        (t, format!("planner: tier {t} (forced)\n"))
    } else if let Some(w) = args.get("px-width") {
        let px: usize = w.parse().map_err(|_| format!("bad --px-width {w:?}"))?;
        let (t, tiers) = gstore::lod::pick_tier(Path::new(dir), from_us, to_us, px)?;
        (t, format!("planner: tier {t} of {tiers:?} for {px} px\n"))
    } else {
        (0, String::new())
    };
    let mut reader = StoreReader::open_tier(dir, tier)?;
    let total_segments = reader.segment_count();
    if args.get("from").is_some() {
        reader.seek(TimeStamp::from_micros(from_us))?;
    }
    if args.get("to").is_some() {
        reader.set_end(TimeStamp::from_micros(to_us));
    }
    let mut writer = match args.get("out") {
        Some(out) => Some(TupleWriter::new(std::io::BufWriter::new(File::create(
            out,
        )?))),
        None => None,
    };
    let mut count = 0u64;
    let mut span: Option<(TimeStamp, TimeStamp)> = None;
    while let Some(t) = reader.next_tuple()? {
        if let Some(w) = writer.as_mut() {
            w.write_parts(t.time, t.value, t.name.as_deref())?;
        }
        count += 1;
        span = Some(match span {
            None => (t.time, t.time),
            Some((t0, _)) => (t0, t.time),
        });
    }
    if let Some(mut w) = writer {
        w.flush()?;
    }
    let s = reader.stats();
    let mut out = match span {
        None => format!("replayed 0 tuples from {dir}"),
        Some((t0, t1)) => format!(
            "replayed {count} tuples from {dir}: {:.3}s .. {:.3}s",
            t0.as_secs_f64(),
            t1.as_secs_f64(),
        ),
    };
    out.push_str(&format!(
        "\nseek: {}/{} segments indexed, {} index probes, {} blocks decoded\n",
        s.segments_indexed, total_segments, s.index_probes, s.blocks_decoded,
    ));
    out.push_str(&planner);
    if let Some(out_file) = args.get("out") {
        out.push_str(&format!("wrote text tuples to {out_file}\n"));
    }
    Ok(out)
}

/// `compact --store <dir> [--retain-bytes N] [--retain-age-ms MS]
/// [--bucket-ms MS]` — seal the active segment and apply the retention
/// policy now, downsampling evicted history into tier-1 envelopes.
pub fn compact(args: &Args) -> CmdResult {
    args.check_known(&["store", "retain-bytes", "retain-age-ms", "bucket-ms"])?;
    let dir = args.get("store").ok_or("missing --store <dir>")?;
    if args.get("retain-bytes").is_none() && args.get("retain-age-ms").is_none() {
        return Err("compact needs --retain-bytes and/or --retain-age-ms".into());
    }
    let mut store = Store::open(dir, store_cfg(args)?)?;
    // Sealing the tail makes it eligible; retention runs as part of
    // the roll, so the roll's report is the one that matters.
    let report = store.roll_segment()?;
    let stats = store.stats();
    store.close()?;
    Ok(format!(
        "compacted {dir}: {} segments evicted, {} frames folded into {} envelope frames ({} compaction runs)\n",
        report.evicted, report.frames_compacted, report.buckets_written, stats.compaction_runs,
    ))
}

/// Replays `tuples` at `period` into a scope `width` pixels wide,
/// optionally re-homing its telemetry into `registry`.
fn replay_scope_with(
    tuples: Vec<Tuple>,
    width: usize,
    period: TimeDelta,
    registry: Option<Arc<Registry>>,
) -> gscope::Result<Scope> {
    let clock = VirtualClock::new();
    let mut scope = Scope::new("replay", width, 150, Arc::new(clock.clone()));
    if let Some(reg) = registry {
        scope.set_telemetry(reg);
    }
    scope.set_period(period)?;
    let end = tuples.last().map(|t| t.time).unwrap_or(TimeStamp::ZERO);
    scope.set_playback_mode(tuples)?;
    scope.start();
    let mut t = TimeStamp::ZERO;
    let horizon = end + period.saturating_mul(3);
    while t < horizon {
        t += period;
        clock.set(t);
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
    Ok(scope)
}

/// Replays `tuples` at `period` into a scope `width` pixels wide.
fn replay_scope(tuples: Vec<Tuple>, width: usize, period: TimeDelta) -> gscope::Result<Scope> {
    replay_scope_with(tuples, width, period, None)
}

/// `view <file> --out <img> [--width N] [--period MS] [--svg]` —
/// render a recording like the scope would have displayed it (the
/// §6 "printing of recorded data" feature).
pub fn view(args: &Args) -> CmdResult {
    args.check_known(&["out", "width", "period", "svg"])?;
    let path = args.positional(0, "file")?;
    let width: usize = args.get_or("width", 400)?;
    let period_ms: u64 = args.get_or("period", 50)?;
    let out = args.get("out").unwrap_or("scope.ppm").to_owned();
    let tuples = load_tuples(path)?;
    let count = tuples.len();
    let scope = replay_scope(tuples, width, TimeDelta::from_millis(period_ms))?;
    if args.has("svg") {
        std::fs::write(&out, grender::render_scope_svg(&scope))?;
    } else {
        grender::render_scope(&scope).save_ppm(&out)?;
    }
    Ok(format!(
        "rendered {count} tuples ({} signals) at {period_ms}ms/px to {out}",
        scope.signal_count()
    ))
}

/// `gen --out <file> [--seconds S] [--rate HZ] [--wave sine|square|saw|triangle] [--freq HZ] [--name N]`
/// — generate a synthetic single- or multi-signal recording.
pub fn gen(args: &Args) -> CmdResult {
    args.check_known(&[
        "out",
        "seconds",
        "rate",
        "wave",
        "freq",
        "name",
        "amplitude",
    ])?;
    let out = args.get("out").ok_or("missing --out")?.to_owned();
    let seconds: f64 = args.get_or("seconds", 5.0)?;
    let rate: f64 = args.get_or("rate", 100.0)?;
    let freq: f64 = args.get_or("freq", 1.0)?;
    let amplitude: f64 = args.get_or("amplitude", 40.0)?;
    let name = args.get("name").unwrap_or("signal").to_owned();
    let wave = match args.get("wave").unwrap_or("sine") {
        "sine" => gctrl::Waveform::Sine,
        "square" => gctrl::Waveform::Square,
        "saw" => gctrl::Waveform::Sawtooth,
        "triangle" => gctrl::Waveform::Triangle,
        other => return Err(format!("unknown wave {other:?}").into()),
    };
    if rate <= 0.0 || seconds <= 0.0 {
        return Err("--rate and --seconds must be positive".into());
    }
    let osc = gctrl::Oscillator::new(wave, freq, amplitude).with_offset(50.0);
    let mut w = TupleWriter::new(std::io::BufWriter::new(File::create(&out)?));
    let n = (seconds * rate) as u64;
    for i in 0..n {
        let secs = i as f64 / rate;
        w.write_parts(
            TimeStamp::from_micros((secs * 1e6) as u64),
            osc.sample(secs),
            Some(&name),
        )?;
    }
    w.flush()?;
    Ok(format!("wrote {n} tuples of {name} to {out}"))
}

/// `stats <file> [--period MS] [--width N] [--json]
/// [--format table|prometheus|tuples|json]` — replay a recording
/// through an instrumented scope and print the resulting gtel
/// snapshot: the tool's own §4.5-style microbenchmark. The JSON form
/// stamps the whole snapshot with one timestamp (the recording's end),
/// so consumers never see per-metric clock skew.
pub fn stats(args: &Args) -> CmdResult {
    args.check_known(&["period", "width", "format", "json"])?;
    let path = args.positional(0, "file")?;
    let period_ms: u64 = args.get_or("period", 50)?;
    let width: usize = args.get_or("width", 400)?;
    let format = if args.has("json") {
        "json"
    } else {
        args.get("format").unwrap_or("table")
    };
    let tuples = load_tuples(path)?;
    let end_ms = tuples.last().map(|t| t.time.as_millis_f64()).unwrap_or(0.0);
    let registry = Registry::shared();
    let _scope = replay_scope_with(
        tuples,
        width,
        TimeDelta::from_millis(period_ms),
        Some(Arc::clone(&registry)),
    )?;
    let snapshot = registry.snapshot();
    match format {
        "table" => Ok(format!(
            "{path}: replay telemetry @ {period_ms}ms\n{}",
            gtel::stats_table(&snapshot)
        )),
        "prometheus" => Ok(gtel::prometheus_text(&snapshot)),
        "tuples" => {
            let mut out = gtel::tuple_lines(&snapshot, end_ms).join("\n");
            out.push('\n');
            Ok(out)
        }
        "json" => Ok(gtel::json_stats(&snapshot, end_ms)),
        other => Err(format!("unknown --format {other:?} (table|prometheus|tuples|json)").into()),
    }
}

/// `stream <file> <addr> [--speed X] [--telemetry] [--binary|--text]`
/// — replay a recording to a scope server in (scaled) real time,
/// timestamps rebased to "now". With `--telemetry`, the client's own
/// stats are appended to the stream as `net.client.*` tuples (§3.3
/// format), so the receiving scope can display the streamer's health
/// too. `--binary` offers the length-delimited wire encoding (the
/// server may decline, in which case the stream stays text);
/// `--text` pins the legacy line protocol. The report names whichever
/// encoding was actually negotiated.
pub fn stream(args: &Args) -> CmdResult {
    args.check_known(&["speed", "telemetry", "binary", "text"])?;
    let path = args.positional(0, "file")?;
    let addr = args.positional(1, "addr")?;
    let speed: f64 = args.get_or("speed", 1.0)?;
    if speed <= 0.0 {
        return Err("--speed must be positive".into());
    }
    if args.has("binary") && args.has("text") {
        return Err("--binary and --text are mutually exclusive".into());
    }
    let tuples = load_tuples(path)?;
    let clock = SystemClock::new();
    let mut client = if args.has("binary") {
        ScopeClient::connect_binary(addr)?
    } else {
        ScopeClient::connect(addr)?
    };
    let base = tuples.first().map(|t| t.time).unwrap_or(TimeStamp::ZERO);
    let start = clock.now();
    let mut sent = 0u64;
    for t in &tuples {
        let offset = TimeDelta::from_micros(((t.time - base).as_micros() as f64 / speed) as u64);
        let due = start + offset;
        while clock.now() < due {
            let _ = client.pump();
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        client.send_at(
            clock.now(),
            t.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL),
            t.value,
        );
        let _ = client.pump();
        sent += 1;
    }
    let mut extra = 0u64;
    if args.has("telemetry") {
        for t in client.stats().to_tuples(clock.now()) {
            client.send(&t);
            extra += 1;
        }
    }
    client.flush_blocking()?;
    let proto = match client.negotiated() {
        Protocol::Binary => "binary",
        Protocol::Text => "text",
    };
    let mut report = format!("streamed {sent} tuples to {addr} at {speed}x over {proto} wire");
    if extra > 0 {
        report.push_str(&format!(" (+{extra} telemetry tuples)"));
    }
    report.push('\n');
    Ok(report)
}

/// `serve <bind> [--duration-ms D] [--delay MS] [--period MS] [--out img]
/// [--store DIR]` — run a scope server for a bounded time, then render
/// what arrived. With `--store`, every received tuple is teed into a
/// gstore directory, a glod compactor folds it into pyramid tiers in
/// the background, and the final render draws each signal's min/max
/// envelope columns straight off the pyramid — no in-memory
/// re-decimation.
pub fn serve(args: &Args) -> CmdResult {
    args.check_known(&[
        "duration-ms",
        "delay",
        "period",
        "out",
        "width",
        "snapshot-every-ms",
        "store",
    ])?;
    let bind = args.positional(0, "bind")?;
    let duration_ms: u64 = args.get_or("duration-ms", 2_000)?;
    let delay_ms: u64 = args.get_or("delay", 300)?;
    let period_ms: u64 = args.get_or("period", 20)?;
    let width: usize = args.get_or("width", 400)?;
    let out = args.get("out").map(str::to_owned);
    let snapshot_ms: u64 = args.get_or("snapshot-every-ms", 0)?;
    let store_dir = args.get("store").map(str::to_owned);

    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let mut scope = Scope::new("gscope-tool serve", width, 150, Arc::clone(&clock));
    scope.set_delay(TimeDelta::from_millis(delay_ms));
    scope.set_polling_mode(TimeDelta::from_millis(period_ms))?;
    scope.start();
    let scope = scope.into_shared();

    let mut server = ScopeServer::bind(bind)?;
    server.add_scope(Arc::clone(&scope));
    // Store tee + background glod compactor: history lands on disk as
    // it arrives and coarse tiers build behind the append head.
    let mut compactor = None;
    if let Some(dir) = store_dir.as_deref() {
        std::fs::create_dir_all(dir)?;
        server.set_store(Store::open(dir, StoreConfig::default())?);
        let lod_cfg = gstore::CompactorConfig {
            min_fold_frames: 4096,
            ..gstore::CompactorConfig::default()
        };
        compactor = Some(gstore::Compactor::new(dir, lod_cfg)?.start());
    }
    let local = server.local_addr()?;
    eprintln!("listening on {local} for {duration_ms}ms");

    let deadline = clock.now() + TimeDelta::from_millis(duration_ms);
    let mut next_tick = clock.now() + TimeDelta::from_millis(period_ms);
    let mut next_snapshot =
        (snapshot_ms > 0).then(|| clock.now() + TimeDelta::from_millis(snapshot_ms));
    let mut snapshots = 0u64;
    // Raster snapshots share a frame cache across the loop so each
    // cadence re-render is an incremental scroll blit, not a full
    // widget redraw.
    let mut frames = grender::FrameCache::new();
    while clock.now() < deadline {
        let _ = server.poll();
        let now = clock.now();
        if now >= next_tick {
            scope.lock().tick(&TickInfo {
                now,
                scheduled: next_tick,
                missed: 0,
            });
            next_tick += TimeDelta::from_millis(period_ms);
        }
        // Live dashboard: re-render to --out on a cadence.
        if let (Some(at), Some(out)) = (next_snapshot, out.as_deref()) {
            if now >= at {
                let guard = scope.lock();
                if out.ends_with(".svg") {
                    std::fs::write(out, grender::render_scope_svg(&guard))?;
                } else {
                    frames.render(&guard).save_ppm(out)?;
                }
                snapshots += 1;
                next_snapshot = Some(at + TimeDelta::from_millis(snapshot_ms));
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let stats = server.stats();
    let clients = server.client_stats();
    // Settle the tee and pyramid: seal the store, stop the background
    // compactor, and run one last drain so the final render sees every
    // folded tier.
    let mut lod_report = String::new();
    if let Some(dir) = store_dir.as_deref() {
        let newest = server.with_store(|s| s.last_time()).flatten();
        if let Some(store) = server.take_store() {
            store.close()?;
        }
        if let Some(handle) = compactor.take() {
            let mut c = handle.stop();
            let folded = c.drain()?;
            let mut guard = scope.lock();
            let t1 = newest.unwrap_or(TimeStamp::ZERO);
            let lod =
                gstore::lod::apply_envelopes(Path::new(dir), &mut guard, TimeStamp::ZERO, t1)?;
            let pruned: u64 = lod.iter().map(|(_, r)| r.stats.blocks_pruned).sum();
            let tier = lod.iter().map(|(_, r)| r.tier).max().unwrap_or(0);
            lod_report = format!(
                "store tee {dir}: pyramid top tier {}, render from tier {tier} ({} signals, {pruned} blocks pruned)\n",
                folded.top_tier,
                lod.len(),
            );
        }
    }
    let guard = scope.lock();
    let mut report = format!(
        "served {local} ({} shards): {} connections, {} tuples, {} parse errors, \
         {} protocol errors, {} late drops\nsignals: {}\n",
        server.shard_count(),
        stats.connections,
        stats.tuples_received,
        stats.parse_errors,
        stats.protocol_errors,
        guard.buffer().late_drops(),
        guard.signal_names().join(", "),
    );
    for c in &clients {
        let proto = match c.protocol {
            Protocol::Binary => "binary",
            Protocol::Text => "text",
        };
        let mode = if c.catching_up { "catch-up" } else { "live" };
        report.push_str(&format!(
            "client {} shard {} {proto} {mode}: in {} tuples ({} parse / {} proto errs), \
             out {} tuples / {} B, {} sheds, {} catch-ups, queue {} B\n",
            c.peer,
            c.shard,
            c.tuples_in,
            c.parse_errors,
            c.protocol_errors,
            c.tuples_out,
            c.bytes_out,
            c.shed_events,
            c.catch_ups,
            c.queue_bytes,
        ));
    }
    if let Some(out) = out {
        if out.ends_with(".svg") {
            std::fs::write(&out, grender::render_scope_svg(&guard))?;
        } else {
            frames.render(&guard).save_ppm(&out)?;
        }
        if snapshots > 0 {
            report.push_str(&format!(
                "rendered to {out} ({snapshots} live snapshots + final)\n"
            ));
        } else {
            report.push_str(&format!("rendered to {out}\n"));
        }
    }
    report.push_str(&lod_report);
    Ok(report)
}

/// `spectrum <file> [--signal NAME] [--size N]` — print the dominant
/// frequencies of a recorded signal (display-domain FFT, §3.1).
pub fn spectrum(args: &Args) -> CmdResult {
    args.check_known(&["signal", "size", "period"])?;
    let path = args.positional(0, "file")?;
    let size: usize = args.get_or("size", 256)?;
    let period_ms: u64 = args.get_or("period", 50)?;
    let tuples = load_tuples(path)?;
    let scope = replay_scope(tuples, size.max(64), TimeDelta::from_millis(period_ms))?;
    let names = scope.signal_names();
    let name = match args.get("signal") {
        Some(n) => n.to_owned(),
        None => names.first().cloned().ok_or("recording has no signals")?,
    };
    // Clamp the window to the samples actually recorded: zero-padding
    // a short recording would smear the spectrum toward DC.
    let available = scope
        .signal(&name)
        .map(|s| s.history().value_count())
        .unwrap_or(0);
    let size = if available == 0 {
        size
    } else {
        let cap = if available.is_power_of_two() {
            available
        } else {
            available.next_power_of_two() / 2
        };
        size.min(cap).max(2)
    };
    let bins = scope.spectrum(
        &name,
        size,
        gdsp::SpectrumConfig {
            remove_dc: true,
            ..Default::default()
        },
    )?;
    let sample_rate = 1000.0 / period_ms as f64;
    let mut ranked: Vec<_> = bins.iter().skip(1).collect();
    ranked.sort_by(|a, b| b.magnitude.total_cmp(&a.magnitude));
    let mut out = format!("{name}: top frequency bins (display sample rate {sample_rate} Hz)\n");
    for b in ranked.iter().take(5) {
        out.push_str(&format!(
            "  {:>8.3} Hz   amplitude {:.3}\n",
            b.frequency * sample_rate,
            b.magnitude
        ));
    }
    Ok(out)
}

/// `stack <a.ppm> <b.ppm> [...] --out <img.ppm> [--gap N]` — stack
/// rendered figures vertically (e.g. Figure 4 above Figure 5, the
/// paper's layout).
pub fn stack(args: &Args) -> CmdResult {
    args.check_known(&["out", "gap"])?;
    if args.positional_count() < 2 {
        return Err("stack needs at least two input images".into());
    }
    let gap: usize = args.get_or("gap", 4)?;
    let out = args.get("out").ok_or("missing --out")?.to_owned();
    let mut frames = Vec::new();
    for i in 0..args.positional_count() {
        let path = args.positional(i, "image")?;
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        frames.push(grender::Framebuffer::from_ppm(&bytes).map_err(|e| format!("{path}: {e}"))?);
    }
    let refs: Vec<&grender::Framebuffer> = frames.iter().collect();
    let composed = grender::compose_vertical(&refs, gap, gscope::Color::new(40, 40, 44));
    composed.save_ppm(&out)?;
    Ok(format!(
        "stacked {} images into {out} ({}x{})",
        frames.len(),
        composed.width(),
        composed.height()
    ))
}

/// `mxtraf [--flows N] [--seconds S] [--ecn] [--sack] [--loss P]
/// [--jitter MS] [--switch-to N2] [--out img]` — run the mxtraf-style
/// workload (the paper's §2 experiment) from the shell and print the
/// per-bucket CWND/timeout table; optionally render the scope view.
pub fn mxtraf(args: &Args) -> CmdResult {
    args.check_known(&[
        "flows",
        "seconds",
        "ecn",
        "sack",
        "loss",
        "jitter",
        "switch-to",
        "out",
    ])?;
    let flows: usize = args.get_or("flows", 8)?;
    let seconds: u64 = args.get_or("seconds", 30)?;
    let ecn = args.has("ecn");
    let sack = args.has("sack");
    let loss: f64 = args.get_or("loss", 0.0)?;
    let jitter_ms: u64 = args.get_or("jitter", 0)?;
    let switch_to: usize = args.get_or("switch-to", flows)?;
    if flows == 0 || seconds == 0 {
        return Err("--flows and --seconds must be positive".into());
    }
    let max = flows.max(switch_to);
    let mut traffic = netsim::Mxtraf::new(netsim::MxtrafConfig {
        ecn,
        sack,
        net: netsim::NetConfig {
            queue: if ecn {
                netsim::QueueKind::red_default(100)
            } else {
                netsim::QueueKind::DropTail { capacity: 50 }
            },
            loss_rate: loss,
            jitter: TimeDelta::from_millis(jitter_ms),
            ..netsim::NetConfig::default()
        },
        initial_elephants: flows,
        max_elephants: max,
        ..netsim::MxtrafConfig::default()
    });

    // Scope over elephants + probe CWND, like the paper's Figure 4/5.
    let clock = VirtualClock::new();
    let mut scope = Scope::new("mxtraf", 300, 120, Arc::new(clock.clone()));
    let probe = traffic.elephant_flow(0);
    scope.add_signal(
        "elephants",
        SigSource::Events,
        gscope::SigConfig::default().with_range(0.0, 2.0 * max as f64),
    )?;
    scope.add_signal(
        "CWND",
        SigSource::Events,
        gscope::SigConfig::default()
            .with_range(0.0, 64.0)
            .with_aggregation(gscope::Aggregation::Minimum),
    )?;
    let elephants_sink = scope.event_sink("elephants")?;
    let cwnd_sink = scope.event_sink("CWND")?;
    let period = TimeDelta::from_millis(100);
    scope.set_polling_mode(period)?;
    scope.start();

    let mut out = format!(
        "mxtraf: {flows} flows{} for {seconds}s, ecn={ecn} sack={sack} loss={loss} jitter={jitter_ms}ms\n",
        if switch_to != flows {
            format!(" -> {switch_to} at t={}s", seconds / 2)
        } else {
            String::new()
        }
    );
    out.push_str("t(s)   elephants  probe-cwnd  timeouts  drops  marks\n");
    let mut t = TimeStamp::ZERO;
    let bucket = TimeDelta::from_secs((seconds / 10).max(1));
    while t < TimeStamp::from_secs(seconds) {
        let bucket_end = t + bucket;
        while t < bucket_end && t < TimeStamp::from_secs(seconds) {
            t += period;
            traffic.run_until(t);
            if switch_to != flows && t == TimeStamp::from_secs(seconds / 2) {
                traffic.set_elephants(switch_to);
            }
            elephants_sink.push(traffic.elephants() as f64);
            cwnd_sink.push(traffic.net().cwnd(probe));
            clock.set(t);
            scope.tick(&TickInfo {
                now: t,
                scheduled: t,
                missed: 0,
            });
        }
        out.push_str(&format!(
            "{:<6} {:<10} {:<11.1} {:<9} {:<6} {}\n",
            t.as_secs_f64(),
            traffic.elephants(),
            traffic.net().cwnd(probe),
            traffic.total_timeouts(),
            traffic.net().queue_stats().dropped + traffic.net().link_losses(),
            traffic.net().queue_stats().marked,
        ));
    }
    if let Some(img) = args.get("out") {
        if img.ends_with(".svg") {
            std::fs::write(img, grender::render_scope_svg(&scope))?;
        } else {
            grender::render_scope(&scope).save_ppm(img)?;
        }
        out.push_str(&format!("rendered scope to {img}\n"));
    }
    Ok(out)
}

/// Dispatches a subcommand by name.
pub fn run(cmd: &str, args: &Args) -> CmdResult {
    match cmd {
        "info" => info(args),
        "view" => view(args),
        "gen" => gen(args),
        "record" => record(args),
        "replay" => replay(args),
        "compact" => compact(args),
        "stream" => stream(args),
        "serve" => serve(args),
        "stats" => stats(args),
        "trace" => crate::tracecmd::trace(args),
        "health" => crate::tracecmd::health(args),
        "query" => crate::querycmd::query(args),
        "timeline" => crate::querycmd::timeline(args),
        "spectrum" => spectrum(args),
        "stack" => stack(args),
        "mxtraf" => mxtraf(args),
        other => Err(format!("unknown command {other:?}; see --help").into()),
    }
}

/// The usage text.
pub const USAGE: &str = "\
gscope-tool — companion CLI for gscope tuple recordings (§3.3 format)

USAGE:
  gscope-tool info <file-or-store-dir> [--period MS]
  gscope-tool record <file> --store <dir> [--fsync] [--segment-kib N] [--block-frames N]
                     [--retain-bytes N] [--retain-age-ms MS] [--bucket-ms MS]
  gscope-tool replay --store <dir> [--from MS] [--to MS] [--out <file>]
                     [--tier N | --px-width W]  (glod: force or plan a pyramid tier)
  gscope-tool compact --store <dir> [--retain-bytes N] [--retain-age-ms MS] [--bucket-ms MS]
  gscope-tool view <file> --out scope.ppm [--width N] [--period MS] [--svg]
  gscope-tool gen --out <file> [--seconds S] [--rate HZ] [--wave sine|square|saw|triangle]
                  [--freq HZ] [--amplitude A] [--name NAME]
  gscope-tool stream <file> <host:port> [--speed X] [--telemetry] [--binary|--text]
  gscope-tool serve <bind-addr> [--duration-ms D] [--delay MS] [--period MS] [--out img]
                    [--snapshot-every-ms N] [--store <dir>]
                    (--store tees history to disk, compacts it into glod
                     pyramid tiers, and renders the final view from them)
  gscope-tool stats <file> [--period MS] [--width N] [--json]
                    [--format table|prometheus|tuples|json]
  gscope-tool trace record [--out trace.json] [--ticks N] [--period MS] [--signals N]
                    [--budget-us N] [--window N] [--allow N] [--flight-dir <dir>]
                    [--max-bundles N] [--slow-tick N] [--slow-us U] [--no-net]
  gscope-tool trace export|tree [<bundle-dir>] [run flags]
  gscope-tool trace slowest [--top N] [run flags]
  gscope-tool trace merge <bundle-dir> <bundle-dir>... [--out merged.json]
                    (rebase fleet bundles onto one clock via their
                     recorded wire offsets; flow arrows join producer
                     flush spans to hub net.ingest spans)
  gscope-tool health [--budget-us N] [--window N] [--allow N] [run flags]
                    (exit code 1 when the deadline SLO window is breached)
  gscope-tool query '<expr>' --store <dir> [--limit N] [--tier N | --px-width W]
                    (expr: name=SIG dur>2ms thread=N severity=breach
                     from=MS to=MS within=GLOB — AND of predicates)
  gscope-tool timeline --store <dir> [--window-ms W] [--anchor-ms T] [--within GLOB] [--node N]
  gscope-tool spectrum <file> [--signal NAME] [--size N] [--period MS]
  gscope-tool stack <a.ppm> <b.ppm> [...] --out <img.ppm> [--gap N]
  gscope-tool mxtraf [--flows N] [--seconds S] [--ecn] [--sack] [--loss P]
                     [--jitter MS] [--switch-to N2] [--out img]
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(s: &str) -> Args {
        Args::parse(
            s.split_whitespace().map(str::to_owned),
            crate::BOOLEAN_FLAGS,
        )
        .unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("gtool-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_info_round_trip() {
        let file = tmp("gen_info.tuples");
        let report = gen(&args(&format!(
            "--out {file} --seconds 2 --rate 50 --wave square --freq 2 --name pulse"
        )))
        .unwrap();
        assert!(report.contains("100 tuples"));
        let report = info(&args(&file)).unwrap();
        assert!(report.contains("100 tuples"), "{report}");
        assert!(report.contains("pulse"));
        assert!(report.contains("1 signals"));
        // Satellite replay telemetry: the scope that replayed the file
        // reports its own tick count and per-signal display coverage.
        assert!(report.contains("replay @ 50ms:"), "{report}");
        assert!(report.contains("displayed samples"), "{report}");
        assert!(report.contains("0 late drops"), "{report}");
    }

    #[test]
    fn stats_prints_replay_telemetry_in_three_formats() {
        let file = tmp("stats.tuples");
        gen(&args(&format!("--out {file} --seconds 2 --rate 50"))).unwrap();
        let table = stats(&args(&format!("{file} --period 20"))).unwrap();
        assert!(table.contains("replay telemetry @ 20ms"), "{table}");
        assert!(table.contains("scope.ticks"), "{table}");
        assert!(table.contains("scope.tick.poll_ns"), "{table}");
        let prom = stats(&args(&format!("{file} --format prometheus"))).unwrap();
        assert!(prom.contains("# TYPE scope_ticks counter"), "{prom}");
        let tuples = stats(&args(&format!("{file} --format tuples"))).unwrap();
        // Every line must itself parse as a §3.3 tuple.
        let mut r = TupleReader::new(tuples.as_bytes());
        let parsed = r.read_all().unwrap();
        assert!(
            parsed
                .iter()
                .any(|t| t.name.as_deref() == Some("scope.ticks")),
            "{tuples}"
        );
        assert!(stats(&args(&format!("{file} --format yaml"))).is_err());
    }

    #[test]
    fn view_renders_ppm_and_svg() {
        let file = tmp("view.tuples");
        gen(&args(&format!("--out {file} --seconds 3 --rate 20"))).unwrap();
        let ppm = tmp("view.ppm");
        let report = view(&args(&format!("{file} --out {ppm} --width 120"))).unwrap();
        assert!(report.contains("rendered"), "{report}");
        let bytes = std::fs::read(&ppm).unwrap();
        assert!(bytes.starts_with(b"P6"));
        let svg = tmp("view.svg");
        view(&args(&format!("{file} --out {svg} --svg"))).unwrap();
        let text = std::fs::read_to_string(&svg).unwrap();
        assert!(text.starts_with("<svg"));
    }

    #[test]
    fn spectrum_finds_the_generated_tone() {
        // 2 Hz sine sampled for the view at 50 ms (20 Hz display rate).
        let file = tmp("spec.tuples");
        gen(&args(&format!(
            "--out {file} --seconds 20 --rate 100 --freq 2 --wave sine"
        )))
        .unwrap();
        let report = spectrum(&args(&format!("{file} --size 256"))).unwrap();
        let first_line = report.lines().nth(1).unwrap();
        let hz: f64 = first_line
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((hz - 2.0).abs() < 0.3, "top bin at {hz} Hz, expected ~2");
    }

    #[test]
    fn info_rejects_missing_file() {
        let err = info(&args("/definitely/not/here.tuples")).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
    }

    #[test]
    fn gen_validates_arguments() {
        assert!(gen(&args("--seconds 1")).is_err(), "missing --out");
        let file = tmp("bad.tuples");
        assert!(gen(&args(&format!("--out {file} --wave noise"))).is_err());
        assert!(gen(&args(&format!("--out {file} --rate 0"))).is_err());
    }

    #[test]
    fn mxtraf_command_reproduces_the_contrast() {
        let tcp = mxtraf(&args("--flows 12 --seconds 12")).unwrap();
        let ecn = mxtraf(&args("--flows 12 --seconds 12 --ecn")).unwrap();
        // TCP row shows drops; ECN row shows marks and zero timeouts.
        assert!(tcp.contains("ecn=false"));
        assert!(ecn.contains("ecn=true"));
        let ecn_timeouts: u64 = ecn
            .lines()
            .last()
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|v| v.parse().ok())
            .unwrap_or(99);
        assert_eq!(ecn_timeouts, 0, "ECN run must show zero timeouts:\n{ecn}");
        let img = tmp("mxtraf.ppm");
        let with_img = mxtraf(&args(&format!("--flows 4 --seconds 6 --out {img}"))).unwrap();
        assert!(with_img.contains("rendered scope"));
        assert!(std::fs::read(&img).unwrap().starts_with(b"P6"));
        assert!(mxtraf(&args("--flows 0")).is_err());
    }

    #[test]
    fn serve_writes_live_snapshots() {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let out = tmp("live.ppm");
        let _ = std::fs::remove_file(&out);
        let serve_args = args(&format!(
            "{addr} --duration-ms 600 --period 10 --snapshot-every-ms 100 --out {out}"
        ));
        let report = serve(&serve_args).unwrap();
        assert!(
            report.contains("live snapshots + final"),
            "snapshot count reported: {report}"
        );
        let bytes = std::fs::read(&out).unwrap();
        assert!(bytes.starts_with(b"P6"));
    }

    #[test]
    fn stack_composes_ppms() {
        let f1 = tmp("s1.tuples");
        gen(&args(&format!("--out {f1} --seconds 1 --rate 20"))).unwrap();
        let p1 = tmp("s1.ppm");
        let p2 = tmp("s2.ppm");
        view(&args(&format!("{f1} --out {p1} --width 100"))).unwrap();
        view(&args(&format!("{f1} --out {p2} --width 120"))).unwrap();
        let out = tmp("stacked.ppm");
        let report = stack(&args(&format!("{p1} {p2} --out {out} --gap 3"))).unwrap();
        assert!(report.contains("stacked 2 images"), "{report}");
        let composed = grender::Framebuffer::from_ppm(&std::fs::read(&out).unwrap()).unwrap();
        let a = grender::Framebuffer::from_ppm(&std::fs::read(&p1).unwrap()).unwrap();
        let b = grender::Framebuffer::from_ppm(&std::fs::read(&p2).unwrap()).unwrap();
        assert_eq!(composed.width(), a.width().max(b.width()));
        assert_eq!(composed.height(), a.height() + b.height() + 3);
        assert!(
            stack(&args(&format!("{p1} --out {out}"))).is_err(),
            "needs two"
        );
    }

    #[test]
    fn unknown_command_reports() {
        assert!(run("frobnicate", &args("")).is_err());
    }

    fn tmp_store(name: &str) -> String {
        let dir = tmp(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_replay_round_trip() {
        let file = tmp("rec_src.tuples");
        gen(&args(&format!(
            "--out {file} --seconds 4 --rate 100 --name carrier"
        )))
        .unwrap();
        let dir = tmp_store("rec.store");
        let report = record(&args(&format!("{file} --store {dir}"))).unwrap();
        assert!(report.contains("recorded 400 tuples"), "{report}");
        assert!(report.contains("smaller than text"), "{report}");
        // Full replay back to text must reproduce the §3.3 stream.
        let out = tmp("rec_back.tuples");
        let report = replay(&args(&format!("--store {dir} --out {out}"))).unwrap();
        assert!(report.contains("replayed 400 tuples"), "{report}");
        let a = load_tuples(&file).unwrap();
        let b = load_tuples(&out).unwrap();
        assert_eq!(a, b);
        // Windowed replay honours --from/--to in milliseconds.
        let report = replay(&args(&format!("--store {dir} --from 1000 --to 1990"))).unwrap();
        assert!(report.contains("replayed 100 tuples"), "{report}");
        assert!(report.contains("segments indexed"), "{report}");
    }

    #[test]
    fn info_summarizes_store_dirs() {
        let file = tmp("info_store_src.tuples");
        gen(&args(&format!(
            "--out {file} --seconds 2 --rate 50 --name pulse"
        )))
        .unwrap();
        let dir = tmp_store("info.store");
        record(&args(&format!("{file} --store {dir}"))).unwrap();
        let report = info(&args(&dir)).unwrap();
        assert!(report.contains("tier 0"), "{report}");
        assert!(report.contains("100 tuples"), "{report}");
        assert!(report.contains("pulse"), "{report}");
        assert!(report.contains("1 signals"), "{report}");
    }

    #[test]
    fn compact_folds_history_into_envelopes() {
        let file = tmp("compact_src.tuples");
        gen(&args(&format!(
            "--out {file} --seconds 8 --rate 200 --name wave"
        )))
        .unwrap();
        let dir = tmp_store("compact.store");
        // Small segments so there is more than one to evict.
        record(&args(&format!("{file} --store {dir} --segment-kib 4"))).unwrap();
        assert!(
            compact(&args(&format!("--store {dir}"))).is_err(),
            "compact without a retention bound must refuse"
        );
        let report = compact(&args(&format!("--store {dir} --retain-bytes 4096"))).unwrap();
        assert!(report.contains("segments evicted"), "{report}");
        assert!(!report.contains("0 segments evicted"), "{report}");
        // Evicted history survives as tier-1 min/max envelopes.
        let report = info(&args(&dir)).unwrap();
        assert!(report.contains("tier 1"), "{report}");
        assert!(report.contains("min/max envelopes"), "{report}");
    }

    #[test]
    fn stream_and_serve_loopback() {
        // End to end: gen → serve (background thread) → stream → report.
        let file = tmp("stream.tuples");
        gen(&args(&format!(
            "--out {file} --seconds 1 --rate 40 --name remote"
        )))
        .unwrap();
        // Pre-bind to learn a free port, then serve on it.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let bind = addr.to_string();
        let serve_args = args(&format!(
            "{bind} --duration-ms 1500 --period 10 --delay 500"
        ));
        let server = std::thread::spawn(move || serve(&serve_args).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(200));
        let report = stream(&args(&format!(
            "{file} {bind} --speed 4 --telemetry --binary"
        )))
        .unwrap();
        assert!(report.contains("streamed 40 tuples"), "{report}");
        assert!(report.contains("over binary wire"), "{report}");
        assert!(report.contains("+5 telemetry tuples"), "{report}");
        let server_report = server.join().unwrap();
        assert!(server_report.contains("1 connections"), "{server_report}");
        assert!(server_report.contains("45 tuples"), "{server_report}");
        assert!(server_report.contains("remote"), "{server_report}");
        // The streamer's own stats arrived as ordinary signals.
        assert!(
            server_report.contains("net.client.tuples_out"),
            "{server_report}"
        );
    }
}
