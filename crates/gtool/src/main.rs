//! Binary entry point for `gscope-tool`.

use gtool::{run, Args, BOOLEAN_FLAGS, USAGE};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return;
    }
    let args = match Args::parse(argv, BOOLEAN_FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match run(&cmd, &args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
