//! A small hand-rolled argument parser for the CLI (no external
//! dependencies, per the workspace's from-scratch policy).

use std::collections::HashMap;

/// Parsed command line: positionals plus `--flag value` / `--flag`
/// options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Errors from argument parsing and extraction.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared twice.
    Duplicate(String),
    /// A required positional is missing.
    MissingPositional(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
    },
    /// An unknown flag for this subcommand.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(s) => write!(f, "flag --{s} given twice"),
            ArgError::MissingPositional(s) => write!(f, "missing required argument <{s}>"),
            ArgError::BadValue { flag, value } => {
                write!(f, "bad value {value:?} for --{flag}")
            }
            ArgError::Unknown(s) => write!(f, "unknown flag --{s}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. Flags named in `boolean_flags` take no
    /// value; all other `--flags` consume the next token as a value.
    pub fn parse<I>(raw: I, boolean_flags: &[&str]) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let name = name.to_owned();
                if out.flags.contains_key(&name) {
                    return Err(ArgError::Duplicate(name));
                }
                if boolean_flags.contains(&name.as_str()) {
                    out.flags.insert(name, "true".into());
                } else {
                    let value = it.next().unwrap_or_default();
                    out.flags.insert(name, value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Rejects any flag not in `allowed`.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }

    /// Returns positional `i`, or an error naming it.
    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positional.len()
    }

    /// Returns a string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// True if a boolean flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// Returns a parsed flag value, or `default` when absent.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_owned(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(str::to_owned), &["svg", "quiet"])
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = args("file.tuples --width 300 other --svg").unwrap();
        assert_eq!(a.positional(0, "file").unwrap(), "file.tuples");
        assert_eq!(a.positional(1, "other").unwrap(), "other");
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.get_or("width", 0usize).unwrap(), 300);
        assert!(a.has("svg"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = args("x").unwrap();
        assert_eq!(a.get_or("period", 50u64).unwrap(), 50);
        assert_eq!(a.get("out"), None);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            args("--width 1 --width 2").unwrap_err(),
            ArgError::Duplicate("width".into())
        );
        let a = args("--width abc").unwrap();
        assert!(matches!(
            a.get_or("width", 0usize),
            Err(ArgError::BadValue { .. })
        ));
        let a = args("only").unwrap();
        assert_eq!(
            a.positional(1, "addr").unwrap_err(),
            ArgError::MissingPositional("addr")
        );
        let a = args("--bogus 1").unwrap();
        assert_eq!(
            a.check_known(&["width"]).unwrap_err(),
            ArgError::Unknown("bogus".into())
        );
    }
}
