//! `gtool` — the gscope command-line companion.
//!
//! The paper contrasts gscope with `gstripchart`, which has "a
//! configuration file based interface rather than a programmatic
//! interface". This tool adds the file-and-shell workflow *on top of*
//! the programmatic library: inspect recordings in the §3.3 tuple
//! format, render them as the scope would have displayed them (§6's
//! "printing of recorded data"), generate synthetic recordings, and
//! run either side of the §4.4 distributed pipeline from the shell:
//!
//! ```text
//! gscope-tool gen --out demo.tuples --wave sine --freq 2
//! gscope-tool info demo.tuples
//! gscope-tool view demo.tuples --out demo.ppm
//! gscope-tool serve 127.0.0.1:7000 --duration-ms 5000 --out live.ppm &
//! gscope-tool stream demo.tuples 127.0.0.1:7000
//! ```

mod args;
mod commands;
mod mergecmd;
mod querycmd;
mod tracecmd;

pub use args::{ArgError, Args};
pub use commands::{
    gen, info, mxtraf, run, serve, spectrum, stack, stats, stream, view, CmdResult, USAGE,
};
pub use querycmd::{query, timeline};
pub use tracecmd::{health, trace};

/// Flags that take no value, shared by the binary and the test
/// harness so the two parse identically.
pub const BOOLEAN_FLAGS: &[&str] = &["svg", "ecn", "sack", "telemetry", "fsync", "json", "no-net"];
