//! Property tests for gtel: histogram percentile ordering, trace-ring
//! wrap-around bookkeeping, and exporter shape invariants.

use gtel::{prometheus_text, tuple_lines, LatencyHistogram, Registry, TraceLog};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_percentiles_ordered(
        samples in proptest::collection::vec(0u64..2_000_000_000, 1..300),
    ) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let true_max = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, true_max);
        // The invariant the readouts rely on: ordered and bounded.
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        // Percentile estimates never undershoot the smallest sample's
        // bucket floor.
        let true_min = *samples.iter().min().expect("non-empty");
        prop_assert!(snap.p50 >= true_min.next_power_of_two() >> 1);
    }

    #[test]
    fn trace_ring_wraps_exactly(
        capacity in 1usize..64,
        events in 0u64..300,
    ) {
        let log = TraceLog::new(capacity);
        for i in 0..events {
            log.event_at(i, "e", i as f64);
        }
        prop_assert_eq!(log.recorded(), events);
        prop_assert_eq!(log.dropped(), events.saturating_sub(capacity as u64));
        let retained = log.events();
        prop_assert_eq!(retained.len() as u64, events.min(capacity as u64));
        // Retained events are the newest, in order.
        for (k, e) in retained.iter().enumerate() {
            let expect = events - retained.len() as u64 + k as u64;
            prop_assert_eq!(e.t_ns, expect);
        }
    }

    #[test]
    fn exporters_cover_every_metric(
        counters in proptest::collection::vec(0u64..1_000_000, 0..6),
        gauges in proptest::collection::vec(-1.0e6..1.0e6f64, 0..6),
        hist_samples in proptest::collection::vec(1u64..1_000_000, 0..40),
    ) {
        let r = Registry::new();
        for (i, &v) in counters.iter().enumerate() {
            r.counter(&format!("c{i}")).add(v);
        }
        for (i, &v) in gauges.iter().enumerate() {
            r.gauge(&format!("g{i}")).set(v);
        }
        if !hist_samples.is_empty() {
            let h = r.histogram("h");
            for &s in &hist_samples {
                h.record(s);
            }
        }
        let snap = r.snapshot();
        let hist_count = usize::from(!hist_samples.is_empty());

        let lines = tuple_lines(&snap, 100.0);
        // One line per scalar metric, five per histogram.
        prop_assert_eq!(lines.len(), counters.len() + gauges.len() + 5 * hist_count);
        for line in &lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            prop_assert_eq!(fields.len(), 3);
            prop_assert!(fields[0].parse::<f64>().is_ok());
            prop_assert!(fields[1].parse::<f64>().is_ok());
        }

        let prom = prometheus_text(&snap);
        let type_lines = prom.lines().filter(|l| l.starts_with("# TYPE")).count();
        // Histograms emit two TYPE lines (summary + _max gauge).
        prop_assert_eq!(type_lines, counters.len() + gauges.len() + 2 * hist_count);
    }
}

/// One label per writer thread so a torn slot (fields from two
/// different writes) is detectable: every field of a record is derived
/// from its `arg`, and a mismatch means the seqlock leaked a torn read.
static WRITER_LABELS: [&str; 6] = ["w0", "w1", "w2", "w3", "w4", "w5"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_ring_is_consistent_under_concurrent_writers(
        capacity in 8usize..256,
        shards in 1usize..5,
        threads in 2usize..6,
        per_thread in 10u64..120,
    ) {
        let log = std::sync::Arc::new(TraceLog::with_shards(capacity, shards));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let tag = ((t as u64) << 32) | i;
                        log.record_span_at(WRITER_LABELS[t], tag, tag * 4, tag * 4 + 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Drop accounting is exact at quiescence: every claimed slot
        // is either still readable or counted as overwritten.
        let total = threads as u64 * per_thread;
        let records = log.records();
        prop_assert_eq!(log.recorded(), total);
        prop_assert_eq!(log.dropped() + records.len() as u64, total);
        prop_assert!(records.len() <= log.capacity());

        let mut seen = std::collections::HashSet::new();
        for r in &records {
            // No torn records: all fields agree with the tag.
            let t = (r.arg >> 32) as usize;
            prop_assert!(t < threads);
            prop_assert_eq!(r.label, WRITER_LABELS[t]);
            prop_assert_eq!(r.begin_ns, r.arg * 4);
            prop_assert_eq!(r.t_ns, r.arg * 4 + 3);
            prop_assert_eq!(r.duration_ns(), 3);
            prop_assert!(seen.insert(r.arg), "span retained twice");
        }
        // Snapshot comes back in claim order with unique seqs.
        for w in records.windows(2) {
            prop_assert!(w[0].seq < w[1].seq);
        }
        // Each writer claims seqs in program order, so its surviving
        // spans must come back in write order.
        for t in 0..threads {
            let mine: Vec<u64> = records
                .iter()
                .filter(|r| (r.arg >> 32) as usize == t)
                .map(|r| r.arg & 0xffff_ffff)
                .collect();
            for w in mine.windows(2) {
                prop_assert!(w[0] < w[1], "writer order lost");
            }
        }
    }
}

#[test]
fn sampler_round_trip_through_snapshot() {
    let r = Registry::new();
    let h = r.histogram("lat");
    for v in [100u64, 200, 300, 40_000] {
        h.record(v);
    }
    let mut p99 = r
        .sampler("lat", gtel::HistogramStat::P99)
        .expect("registered");
    let mut count = r
        .sampler("lat", gtel::HistogramStat::Count)
        .expect("registered");
    assert_eq!(count(), 4.0);
    assert_eq!(p99(), h.snapshot().p99 as f64);
    h.record(1);
    assert_eq!(count(), 5.0);
}
