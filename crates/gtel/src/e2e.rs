//! End-to-end lateness attribution: producer send → render column.
//!
//! A sample crossing the fleet passes seven waypoints:
//!
//! ```text
//! send ──wire──▶ recv ─parse─▶ ─route─▶ ─push─▶ ─drain─▶ ─render─▶
//! ```
//!
//! The hub stamps the first four on arrival (`send` is the producer's
//! batch-flush time, rebased onto the local clock by the connection's
//! clock estimator); the scope's tick drain and the renderer stamp the
//! last two. All timestamps share one monotonic timebase
//! ([`crate::fast_now_ns`] µs), so consecutive differences telescope:
//! the per-stage deltas sum to the end-to-end figure *exactly*, except
//! where the clock-offset correction drives the wire stage negative —
//! which is clamped, bounding the discrepancy by the estimator's
//! reported clock error. That is the invariant the netsim e2e smoke
//! asserts.
//!
//! Stages are folded when the chain *completes* (at render), one
//! record per stage per completed chain, so every histogram has the
//! same population and their means telescope too. Chains are tracked
//! as per-signal watermarks: a newer batch overwrites an unrendered
//! older one (strip charts only ever show the newest column, so the
//! overwritten chain was invisible anyway).
//!
//! Histograms live in a [`Registry`] under `e2e.*`, so Prometheus/
//! tuple export and flight-recorder stats capture pick them up with no
//! extra plumbing. Values are **microseconds**.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{HistogramSnapshot, LatencyHistogram};
use crate::registry::Registry;

/// The six attribution stages, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Producer batch flush → hub socket read (offset-corrected).
    Wire = 0,
    /// Socket read → batch decoded.
    Parse = 1,
    /// Batch decoded → routing/fan-in decision done.
    Route = 2,
    /// Routing done → ScopeBuffer push complete.
    Push = 3,
    /// ScopeBuffer push → scope tick drained the sample.
    Drain = 4,
    /// Tick drain → render column produced.
    Render = 5,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Wire,
        Stage::Parse,
        Stage::Route,
        Stage::Push,
        Stage::Drain,
        Stage::Render,
    ];

    /// Metric-name suffix (`e2e.stage.<name>_us`).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::Parse => "parse",
            Stage::Route => "route",
            Stage::Push => "push",
            Stage::Drain => "drain",
            Stage::Render => "render",
        }
    }
}

/// The hub-side waypoints of one delivered batch, local-clock µs
/// (except `send_us`, which is the producer's flush time already
/// rebased onto the local clock — hence signed).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchMark {
    /// Producer flush time rebased by the peer clock offset.
    pub send_us: i64,
    /// Bytes read off the socket.
    pub recv_us: u64,
    /// Batch fully decoded.
    pub parse_us: u64,
    /// Routing decision done.
    pub route_us: u64,
    /// ScopeBuffer push complete.
    pub push_us: u64,
    /// The estimator's offset error bound when `send_us` was rebased.
    pub clock_error_us: u64,
}

#[derive(Clone, Copy, Debug)]
struct Chain {
    mark: BatchMark,
    drain_us: Option<u64>,
}

/// Keyed per-signal histogram cap; overflow folds into `~other`.
const MAX_KEYS: usize = 64;
/// Watermark map cap: beyond this, new signals are not tracked.
const MAX_MARKS: usize = 256;

/// Collector for stage/e2e lateness histograms and per-signal chain
/// watermarks. Usually accessed through the process-global [`e2e`].
pub struct E2e {
    registry: Arc<Registry>,
    stages: [Arc<LatencyHistogram>; 6],
    total: Arc<LatencyHistogram>,
    clock_err: Arc<LatencyHistogram>,
    keyed: Mutex<HashMap<String, Arc<LatencyHistogram>>>,
    marks: Mutex<HashMap<String, Chain>>,
    active: AtomicBool,
}

impl E2e {
    /// A collector whose histograms live in `registry` under `e2e.*`.
    pub fn new(registry: Arc<Registry>) -> E2e {
        let stages =
            Stage::ALL.map(|s| registry.histogram(&format!("e2e.stage.{}_us", s.as_str())));
        E2e {
            total: registry.histogram("e2e.total_us"),
            clock_err: registry.histogram("e2e.clock_error_us"),
            stages,
            registry,
            keyed: Mutex::new(HashMap::new()),
            marks: Mutex::new(HashMap::new()),
            active: AtomicBool::new(false),
        }
    }

    /// True once any chain has been marked — lets hot paths skip the
    /// map locks entirely when attribution is unused.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Hub side: a batch carrying `signal` finished its push leg.
    /// Overwrites any unrendered chain for the signal (watermark
    /// semantics).
    pub fn mark_push(&self, signal: &str, mark: BatchMark) {
        self.active.store(true, Ordering::Relaxed);
        let mut marks = self.marks.lock().unwrap();
        if marks.len() >= MAX_MARKS && !marks.contains_key(signal) {
            return;
        }
        match marks.get_mut(signal) {
            Some(chain) => {
                *chain = Chain {
                    mark,
                    drain_us: None,
                }
            }
            None => {
                marks.insert(
                    signal.to_owned(),
                    Chain {
                        mark,
                        drain_us: None,
                    },
                );
            }
        }
    }

    /// Scope side: a tick drained buffered samples for `signal`.
    pub fn note_drain(&self, signal: &str, now_us: u64) {
        if !self.is_active() {
            return;
        }
        let mut marks = self.marks.lock().unwrap();
        if let Some(chain) = marks.get_mut(signal) {
            if chain.drain_us.is_none() {
                chain.drain_us = Some(now_us);
            }
        }
    }

    /// Render side: a column for `signal` reached the framebuffer.
    /// Completes the chain and folds every stage plus the e2e figure.
    pub fn note_render(&self, signal: &str, now_us: u64) {
        if !self.is_active() {
            return;
        }
        let chain = {
            let mut marks = self.marks.lock().unwrap();
            match marks.get_mut(signal) {
                Some(chain) if chain.drain_us.is_some() => {
                    let done = *chain;
                    marks.remove(signal);
                    done
                }
                _ => return,
            }
        };
        let m = chain.mark;
        let drain_us = chain.drain_us.unwrap_or(m.push_us);
        let clamp = |d: i64| d.max(0) as u64;
        self.stages[Stage::Wire as usize].record(clamp(m.recv_us as i64 - m.send_us));
        self.stages[Stage::Parse as usize].record(m.parse_us.saturating_sub(m.recv_us));
        self.stages[Stage::Route as usize].record(m.route_us.saturating_sub(m.parse_us));
        self.stages[Stage::Push as usize].record(m.push_us.saturating_sub(m.route_us));
        self.stages[Stage::Drain as usize].record(drain_us.saturating_sub(m.push_us));
        self.stages[Stage::Render as usize].record(now_us.saturating_sub(drain_us));
        let e2e = clamp(now_us as i64 - m.send_us);
        self.total.record(e2e);
        self.clock_err.record(m.clock_error_us);
        self.keyed_histogram(signal).record(e2e);
    }

    fn keyed_histogram(&self, signal: &str) -> Arc<LatencyHistogram> {
        let mut keyed = self.keyed.lock().unwrap();
        if let Some(h) = keyed.get(signal) {
            return Arc::clone(h);
        }
        let name = if keyed.len() < MAX_KEYS {
            format!("e2e.signal.{signal}_us")
        } else {
            "e2e.signal.~other_us".to_owned()
        };
        let h = self.registry.histogram(&name);
        keyed.insert(signal.to_owned(), Arc::clone(&h));
        h
    }

    /// Completed chains (== population of every stage histogram).
    pub fn completed(&self) -> u64 {
        self.total.count()
    }

    /// Snapshot of all stage histograms plus the e2e total.
    pub fn snapshot(&self) -> E2eSnapshot {
        E2eSnapshot {
            stages: Stage::ALL.map(|s| (s.as_str(), self.stages[s as usize].snapshot())),
            total: self.total.snapshot(),
            clock_error: self.clock_err.snapshot(),
        }
    }
}

/// Point-in-time view of the attribution histograms (µs values).
#[derive(Clone, Debug)]
pub struct E2eSnapshot {
    /// Per-stage histograms, pipeline order.
    pub stages: [(&'static str, HistogramSnapshot); 6],
    /// End-to-end histogram.
    pub total: HistogramSnapshot,
    /// Clock error bounds quoted when chains were rebased.
    pub clock_error: HistogramSnapshot,
}

impl E2eSnapshot {
    /// Sum of the per-stage means — should equal [`Self::total`]'s
    /// mean within the mean clock error (the module invariant).
    pub fn stage_sum_mean_us(&self) -> f64 {
        self.stages.iter().map(|(_, s)| s.mean()).sum()
    }
}

static GLOBAL: OnceLock<E2e> = OnceLock::new();

/// The process-global collector, backed by [`crate::global`]'s
/// registry. The hub, scope tick, and renderer all stamp into this
/// one instance so chains survive crate boundaries.
pub fn e2e() -> &'static E2e {
    GLOBAL.get_or_init(|| {
        // The global registry is a &'static; wrap it without cloning
        // its contents by resolving through a shared handle registry.
        E2e::new(crate::registry::global_shared())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> E2e {
        E2e::new(Arc::new(Registry::new()))
    }

    #[test]
    fn completed_chain_telescopes_exactly() {
        let e = fresh();
        e.mark_push(
            "sig",
            BatchMark {
                send_us: 1_000,
                recv_us: 1_400,
                parse_us: 1_450,
                route_us: 1_470,
                push_us: 1_500,
                clock_error_us: 90,
            },
        );
        e.note_drain("sig", 2_000);
        e.note_render("sig", 2_300);
        let snap = e.snapshot();
        assert_eq!(snap.total.count, 1);
        assert_eq!(snap.total.sum, 1_300); // 2300 - 1000
        let stage_sum: u64 = snap.stages.iter().map(|(_, s)| s.sum).sum();
        assert_eq!(stage_sum, snap.total.sum, "stages telescope to e2e");
        assert_eq!(snap.stages[0].1.sum, 400); // wire
        assert_eq!(snap.stages[5].1.sum, 300); // render
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn negative_wire_clamp_is_bounded_by_clock_error() {
        let e = fresh();
        // Offset over-correction: send appears *after* recv by 50µs,
        // within the quoted 90µs error bound.
        e.mark_push(
            "sig",
            BatchMark {
                send_us: 1_450,
                recv_us: 1_400,
                parse_us: 1_450,
                route_us: 1_470,
                push_us: 1_500,
                clock_error_us: 90,
            },
        );
        e.note_drain("sig", 1_600);
        e.note_render("sig", 1_700);
        let snap = e.snapshot();
        let stage_sum: u64 = snap.stages.iter().map(|(_, s)| s.sum).sum();
        let gap = stage_sum.abs_diff(snap.total.sum);
        assert!(
            gap <= snap.clock_error.max,
            "clamp discrepancy {gap}µs exceeds clock error {}µs",
            snap.clock_error.max
        );
    }

    #[test]
    fn render_without_drain_waits_and_newer_batch_overwrites() {
        let e = fresh();
        let mark = BatchMark {
            send_us: 100,
            recv_us: 110,
            parse_us: 111,
            route_us: 112,
            push_us: 113,
            clock_error_us: 5,
        };
        e.mark_push("a", mark);
        e.note_render("a", 500); // no drain yet: not folded
        assert_eq!(e.completed(), 0);
        let newer = BatchMark {
            send_us: 200,
            ..mark
        };
        e.mark_push("a", newer); // watermark overwrite
        e.note_drain("a", 300);
        e.note_render("a", 400);
        assert_eq!(e.completed(), 1);
        assert_eq!(e.snapshot().total.sum, 200); // 400 - 200, newer chain
    }

    #[test]
    fn inactive_collector_short_circuits() {
        let e = fresh();
        assert!(!e.is_active());
        e.note_drain("x", 1);
        e.note_render("x", 2);
        assert_eq!(e.completed(), 0);
    }

    #[test]
    fn keyed_histograms_cap_cardinality() {
        let e = fresh();
        for i in 0..(MAX_KEYS + 8) {
            let name = format!("s{i}");
            e.mark_push(
                &name,
                BatchMark {
                    send_us: 0,
                    recv_us: 1,
                    parse_us: 2,
                    route_us: 3,
                    push_us: 4,
                    clock_error_us: 0,
                },
            );
            e.note_drain(&name, 5);
            e.note_render(&name, 6);
        }
        let names = e.registry.names();
        let keyed = names
            .iter()
            .filter(|n| n.starts_with("e2e.signal."))
            .count();
        assert!(keyed <= MAX_KEYS + 1, "got {keyed} keyed histograms");
        assert!(names.iter().any(|n| n == "e2e.signal.~other_us"));
    }
}
