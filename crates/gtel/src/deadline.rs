//! The [`DeadlineMonitor`]: per-stage time budgets derived from the
//! polling period, with an SLO window (misses per N ticks) exported
//! as gtel gauges.
//!
//! Gscope visualizes *other* programs' lateness (paper §3.1); the
//! monitor turns the same lens inward. Every pipeline stage span
//! (`gel.iteration`, `scope.tick`, `render.frame`, …) gets a budget —
//! a fraction of the scope polling period — and every completed span
//! is checked against it. A duration of exactly the budget is on
//! time; budget+1ns is a miss. Misses, the latest margin, and the
//! rolling-window miss count export through a [`Registry`], so a
//! self-scoping setup (`metric_signal`) can plot its own deadline
//! margin live, and `gtool health` can turn a breached window into a
//! non-zero exit code.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::export::format_ns;
use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use crate::span::SpanKind;
use crate::trace::TraceLog;

/// One stage's time budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBudget {
    /// Span label the budget applies to.
    pub label: &'static str,
    /// Budget in nanoseconds; durations strictly greater miss.
    pub budget_ns: u64,
}

/// One observed deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// Stage that missed.
    pub label: &'static str,
    /// End timestamp of the offending span.
    pub t_ns: u64,
    /// How long the stage actually took.
    pub duration_ns: u64,
    /// What it was allowed.
    pub budget_ns: u64,
}

struct Stage {
    budget: StageBudget,
    /// Rolling window of the last N observations (true = miss).
    window: VecDeque<bool>,
    window_miss_count: u64,
    observed: u64,
    missed: u64,
    misses: Arc<Counter>,
    margin: Arc<Gauge>,
    window_misses: Arc<Gauge>,
}

/// Watches completed stage spans against per-stage budgets.
pub struct DeadlineMonitor {
    stages: Vec<Stage>,
    window: usize,
    /// Window miss counts above this breach the SLO.
    threshold: u64,
    cursor: u64,
}

impl DeadlineMonitor {
    /// Default per-stage budget table for a scope polling period:
    /// the whole period for the loop iteration, half for the scope
    /// tick, 30% for rendering, 10% each for network poll and store
    /// block flush.
    pub fn stage_budgets(period_ns: u64) -> Vec<StageBudget> {
        let pct = |p: u64| (period_ns / 100) * p;
        vec![
            StageBudget {
                label: "gel.iteration",
                budget_ns: period_ns,
            },
            StageBudget {
                label: "scope.tick",
                budget_ns: pct(50),
            },
            StageBudget {
                label: "render.frame",
                budget_ns: pct(30),
            },
            StageBudget {
                label: "net.server.poll",
                budget_ns: pct(10),
            },
            StageBudget {
                label: "store.block",
                budget_ns: pct(10),
            },
        ]
    }

    /// Monitor with the default stage table for `period_ns`.
    pub fn for_period(registry: &Registry, period_ns: u64, window: usize) -> Self {
        DeadlineMonitor::new(registry, DeadlineMonitor::stage_budgets(period_ns), window)
    }

    /// Monitor with explicit budgets; `window` is the SLO window size
    /// in observations per stage.
    pub fn new(registry: &Registry, budgets: Vec<StageBudget>, window: usize) -> Self {
        let window = window.max(1);
        let stages = budgets
            .into_iter()
            .map(|budget| {
                let base = format!("trace.deadline.{}", budget.label);
                let budget_gauge = registry.gauge(&format!("{base}.budget_ns"));
                budget_gauge.set(budget.budget_ns as f64);
                Stage {
                    budget,
                    window: VecDeque::with_capacity(window),
                    window_miss_count: 0,
                    observed: 0,
                    missed: 0,
                    misses: registry.counter(&format!("{base}.misses")),
                    margin: registry.gauge(&format!("{base}.margin_ns")),
                    window_misses: registry.gauge(&format!("{base}.window_misses")),
                }
            })
            .collect();
        DeadlineMonitor {
            stages,
            window,
            threshold: 0,
            cursor: 0,
        }
    }

    /// Allows up to `n` misses per window before [`breached`](Self::breached).
    pub fn set_breach_threshold(&mut self, n: u64) {
        self.threshold = n;
    }

    /// Scales every stage budget to `budget_ns * num / den` (min 1ns);
    /// `gtool trace --budget-frac` uses this to tighten deadlines
    /// artificially.
    pub fn scale_budgets(&mut self, num: u64, den: u64) {
        for stage in &mut self.stages {
            let scaled = (u128::from(stage.budget.budget_ns) * u128::from(num)
                / u128::from(den.max(1))) as u64;
            stage.budget.budget_ns = scaled.max(1);
        }
    }

    /// Overrides one stage's budget (creating no new stages).
    pub fn set_budget(&mut self, label: &str, budget_ns: u64) {
        for stage in &mut self.stages {
            if stage.budget.label == label {
                stage.budget.budget_ns = budget_ns.max(1);
            }
        }
    }

    /// Feeds one completed stage duration; returns the miss if the
    /// duration exceeded the stage budget (strictly — `budget_ns`
    /// is on time, `budget_ns + 1` misses). Unknown labels are
    /// ignored.
    pub fn observe(&mut self, label: &str, t_ns: u64, duration_ns: u64) -> Option<DeadlineMiss> {
        let window = self.window;
        let stage = self.stages.iter_mut().find(|s| s.budget.label == label)?;
        stage.observed += 1;
        let missed = duration_ns > stage.budget.budget_ns;
        if stage.window.len() == window && stage.window.pop_front() == Some(true) {
            stage.window_miss_count -= 1;
        }
        stage.window.push_back(missed);
        if missed {
            stage.window_miss_count += 1;
            stage.missed += 1;
            stage.misses.inc();
        }
        stage
            .margin
            .set(stage.budget.budget_ns as f64 - duration_ns as f64);
        stage.window_misses.set(stage.window_miss_count as f64);
        missed.then_some(DeadlineMiss {
            label: stage.budget.label,
            t_ns,
            duration_ns,
            budget_ns: stage.budget.budget_ns,
        })
    }

    /// Pulls new End records out of `log` (from where the last scan
    /// stopped) and observes every budgeted stage span. Returns the
    /// misses found, oldest first.
    pub fn scan(&mut self, log: &TraceLog) -> Vec<DeadlineMiss> {
        let records = log.records_since(self.cursor);
        let mut misses = Vec::new();
        for r in &records {
            self.cursor = self.cursor.max(r.seq + 1);
            if r.kind != SpanKind::End {
                continue;
            }
            if let Some(miss) = self.observe(r.label, r.t_ns, r.duration_ns()) {
                misses.push(miss);
            }
        }
        misses
    }

    /// Total misses for one stage label.
    pub fn misses(&self, label: &str) -> u64 {
        self.stages
            .iter()
            .find(|s| s.budget.label == label)
            .map_or(0, |s| s.missed)
    }

    /// Total misses across all stages.
    pub fn total_misses(&self) -> u64 {
        self.stages.iter().map(|s| s.missed).sum()
    }

    /// Whether any stage's current window exceeds the miss threshold.
    pub fn breached(&self) -> bool {
        self.stages
            .iter()
            .any(|s| s.window_miss_count > self.threshold)
    }

    /// Aligned SLO summary table (the `gtool health` body).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let width = self
            .stages
            .iter()
            .map(|s| s.budget.label.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$}  {:>10}  {:>8}  {:>8}  {:>12}  status",
            "stage", "budget", "seen", "missed", "window"
        );
        for s in &self.stages {
            let status = if s.window_miss_count > self.threshold {
                "BREACH"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<width$}  {:>10}  {:>8}  {:>8}  {:>9}/{:<2}  {status}",
                s.budget.label,
                format_ns(s.budget.budget_ns),
                s.observed,
                s.missed,
                s.window_miss_count,
                self.window,
            );
        }
        out
    }
}

impl std::fmt::Debug for DeadlineMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineMonitor")
            .field("stages", &self.stages.len())
            .field("window", &self.window)
            .field("total_misses", &self.total_misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(budget: u64, window: usize) -> (Arc<Registry>, DeadlineMonitor) {
        let registry = Registry::shared();
        let m = DeadlineMonitor::new(
            &registry,
            vec![StageBudget {
                label: "scope.tick",
                budget_ns: budget,
            }],
            window,
        );
        (registry, m)
    }

    #[test]
    fn fires_at_budget_plus_one_not_at_budget() {
        let (_r, mut m) = monitor(1_000, 8);
        assert!(m.observe("scope.tick", 10, 1_000).is_none());
        let miss = m.observe("scope.tick", 20, 1_001).expect("budget+1 misses");
        assert_eq!(miss.duration_ns, 1_001);
        assert_eq!(miss.budget_ns, 1_000);
        assert_eq!(m.misses("scope.tick"), 1);
    }

    #[test]
    fn window_slides_and_recovers() {
        let (registry, mut m) = monitor(100, 4);
        for _ in 0..4 {
            m.observe("scope.tick", 0, 200);
        }
        assert!(m.breached());
        // Four on-time ticks push the misses out of the window.
        for _ in 0..4 {
            m.observe("scope.tick", 0, 50);
        }
        assert!(!m.breached());
        assert_eq!(m.misses("scope.tick"), 4);
        let snap = registry.snapshot();
        let window = snap
            .iter()
            .find(|(n, _)| n == "trace.deadline.scope.tick.window_misses")
            .unwrap();
        assert_eq!(window.1.as_f64(crate::metrics::HistogramStat::Mean), 0.0);
    }

    #[test]
    fn threshold_allows_slack() {
        let (_r, mut m) = monitor(100, 8);
        m.set_breach_threshold(2);
        m.observe("scope.tick", 0, 200);
        m.observe("scope.tick", 0, 200);
        assert!(!m.breached());
        m.observe("scope.tick", 0, 200);
        assert!(m.breached());
    }

    #[test]
    fn scan_consumes_incrementally() {
        let registry = Registry::new();
        let mut m = DeadlineMonitor::new(
            &registry,
            vec![StageBudget {
                label: "scope.tick",
                budget_ns: 100,
            }],
            8,
        );
        let log = TraceLog::new(64);
        log.record_span_at("scope.tick", 1, 0, 50);
        log.record_span_at("scope.tick", 2, 100, 300);
        let misses = m.scan(&log);
        assert_eq!(misses.len(), 1);
        assert_eq!(misses[0].duration_ns, 200);
        // Already-seen records are not re-observed.
        assert!(m.scan(&log).is_empty());
        log.record_span_at("scope.tick", 3, 400, 401);
        assert!(m.scan(&log).is_empty());
        assert_eq!(m.misses("scope.tick"), 1);
    }

    #[test]
    fn default_table_derives_from_period() {
        let budgets = DeadlineMonitor::stage_budgets(10_000_000);
        let get = |l: &str| budgets.iter().find(|b| b.label == l).unwrap().budget_ns;
        assert_eq!(get("gel.iteration"), 10_000_000);
        assert_eq!(get("scope.tick"), 5_000_000);
        assert_eq!(get("render.frame"), 3_000_000);
        assert_eq!(get("net.server.poll"), 1_000_000);
        assert_eq!(get("store.block"), 1_000_000);
    }

    #[test]
    fn budgets_export_as_gauges() {
        let (registry, _m) = monitor(1_000, 4);
        let names = registry.names();
        assert!(names.contains(&"trace.deadline.scope.tick.budget_ns".to_string()));
        assert!(names.contains(&"trace.deadline.scope.tick.misses".to_string()));
        assert!(names.contains(&"trace.deadline.scope.tick.margin_ns".to_string()));
    }

    #[test]
    fn summary_reports_breach() {
        let (_r, mut m) = monitor(100, 4);
        m.observe("scope.tick", 0, 101);
        let text = m.summary();
        assert!(text.contains("scope.tick"));
        assert!(text.contains("BREACH"));
    }
}
