//! gtrace core: causally linked span records in a fixed-slot,
//! overwrite-on-full ring.
//!
//! The ring replaces the old `Mutex<VecDeque>` trace buffer. A writer
//! claims a sequence number with one `fetch_add` on a global counter
//! and publishes the record under a per-slot seqlock (odd state =
//! write in progress, even state = published). Slots come from a
//! dense per-shard claim counter; the first thread ids own their
//! shards outright (single-writer seqlock, plain stores, no atomic
//! RMW on the slot), while late threads share the last shard, whose
//! slots are claimed and published with `compare_exchange` so two
//! writers meeting on one slot can never interleave their stores.
//! There is no queue shifting, no allocation, and — on the
//! single-threaded event loop this mostly instruments — no
//! contention at all.
//!
//! Records carry full causality: a span id, the parent span id taken
//! from a thread-local stack ([`TraceCtx`]), the owning thread, and
//! both begin and end timestamps (End records are self-contained, so a
//! complete span survives even when its Begin record has been
//! overwritten by ring wrap-around).

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum tracked span nesting depth per thread. Deeper spans still
/// record (parented to the deepest tracked span) but are not pushed.
pub const MAX_SPAN_DEPTH: usize = 32;

/// Marks span ids minted from the ring sequence counter
/// ([`SpanRing::record_complete`]); guard span ids never set it, so
/// the two id families cannot collide. Retroactive ids are never
/// pushed on the span stack, so nothing ever parents to them — the id
/// only labels the record itself.
pub const SEQ_SPAN_BIT: u64 = 1 << 63;

/// Process-wide monotonic nanoseconds (first call defines zero).
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .saturating_duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// Nanoseconds on the same epoch as [`monotonic_ns`], read from the
/// cheapest clock available (calibrated TSC on x86_64, ~5ns instead of
/// ~20ns for `Instant::now`). Span timestamps use this; durations are
/// always computed with saturating subtraction, so the worst a clock
/// quirk can produce is a zero-length span.
pub fn fast_now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        tsc::now_ns()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        monotonic_ns()
    }
}

#[cfg(target_arch = "x86_64")]
mod tsc {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    struct Calib {
        base_tsc: u64,
        base_ns: u64,
        /// ns-per-cycle in 24-bit fixed point.
        mult: u64,
    }

    #[inline]
    fn rdtsc() -> u64 {
        // Safe on every x86_64 CPU; the intrinsic is only `unsafe`
        // because it is an arch intrinsic.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    fn calibrate() -> Option<Calib> {
        let t0 = Instant::now();
        let c0 = rdtsc();
        while t0.elapsed() < Duration::from_micros(200) {
            std::hint::spin_loop();
        }
        let elapsed = t0.elapsed();
        let c1 = rdtsc();
        let cycles = c1.saturating_sub(c0) as u128;
        if cycles == 0 {
            return None;
        }
        let mult = ((elapsed.as_nanos()) << 24) / cycles;
        if mult == 0 || mult > u128::from(u32::MAX) {
            // Non-invariant or absurd TSC: fall back to Instant.
            return None;
        }
        Some(Calib {
            base_tsc: c1,
            base_ns: super::monotonic_ns(),
            mult: mult as u64,
        })
    }

    pub fn now_ns() -> u64 {
        static CAL: OnceLock<Option<Calib>> = OnceLock::new();
        match CAL.get_or_init(calibrate) {
            Some(c) => {
                let d = rdtsc().saturating_sub(c.base_tsc) as u128;
                c.base_ns + ((d * u128::from(c.mult)) >> 24) as u64
            }
            None => super::monotonic_ns(),
        }
    }
}

/// What a [`SpanRecord`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span opened (`t_ns == begin_ns`).
    Begin,
    /// A span closed; carries `begin_ns` too, so it alone reconstructs
    /// the complete span.
    End,
    /// A point event; `arg` holds an `f64` payload as bits.
    Instant,
}

/// One fixed-size record in the span ring.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Global claim order; also the retention/overwrite order.
    pub seq: u64,
    /// Record timestamp: begin time for Begin, end time for End.
    pub t_ns: u64,
    /// Span begin time (equals `t_ns` for Begin and Instant).
    pub begin_ns: u64,
    /// Span id (`0` for Instant events outside any span).
    pub span: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// One caller payload word (tick number, byte count, `f64` bits …).
    pub arg: u64,
    /// Static label, e.g. `"scope.tick"`.
    pub label: &'static str,
    pub kind: SpanKind,
    /// Small dense id of the recording thread.
    pub tid: u32,
}

impl SpanRecord {
    /// Span duration; zero for Begin/Instant records.
    pub fn duration_ns(&self) -> u64 {
        self.t_ns.saturating_sub(self.begin_ns)
    }

    /// Legacy event payload: an Instant's `f64`, else the duration.
    pub fn value(&self) -> f64 {
        match self.kind {
            SpanKind::Instant => f64::from_bits(self.arg),
            _ => self.duration_ns() as f64,
        }
    }
}

const EMPTY: SpanRecord = SpanRecord {
    seq: 0,
    t_ns: 0,
    begin_ns: 0,
    span: 0,
    parent: 0,
    arg: 0,
    label: "",
    kind: SpanKind::Instant,
    tid: 0,
};

/// Slot states: `0` = never written, odd = write in progress,
/// `seq * 2 + 2` = published record claimed at `seq`.
struct Slot {
    state: AtomicU64,
    data: std::cell::UnsafeCell<SpanRecord>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU64::new(0),
            data: std::cell::UnsafeCell::new(EMPTY),
        }
    }
}

struct Shard {
    /// Dense slot-claim counter: `claims % shard_cap` is the next
    /// slot, so a shard fills every slot no matter how global claims
    /// interleave across threads. Exclusively owned shards mutate it
    /// with plain load/store (single writer); the shared shard uses
    /// `fetch_add`.
    claims: AtomicU64,
    slots: Box<[Slot]>,
}

/// Fixed-slot ring of [`SpanRecord`]s, sharded by writer thread.
///
/// Writers never block and never allocate. A record claims a global
/// sequence number with one `fetch_add` (snapshot order and drop
/// accounting), then a slot inside the writer's shard from the
/// shard's dense claim counter. The first `shards - 1` thread ids
/// each own one shard *exclusively*: a single-writer seqlock needs no
/// atomic read-modify-write on the slot, so the record hot path stays
/// at one `fetch_add` plus plain stores. Every later thread (and
/// callers passing records with an unknown thread id) lands in the
/// last, shared shard, where the slot is claimed *and* published with
/// `compare_exchange`: two writers meeting on one slot — one of them
/// stalled for a whole shard lap — can never interleave their field
/// stores, because the loser sees the slot mid-write (odd) or already
/// newer and drops its record whole. A blind odd-store claim would
/// let a reader accept a record mixing two writers' fields; for the
/// two-word `&'static str` label that fabricates an invalid `&str`.
///
/// Readers snapshot without stopping writers; a record caught
/// mid-overwrite is simply skipped (it is by definition one of the
/// oldest and about to be dropped anyway).
///
/// With one shard every thread shares it and the ring retains exactly
/// the newest `capacity` records — the old `VecDeque` contract. With
/// `n` shards retention is per-shard (the newest `capacity / n` per
/// owning thread), trading global exactness for the RMW-free hot path
/// on the owning threads.
pub struct SpanRing {
    shards: Box<[Shard]>,
    shard_cap: usize,
    /// `shard_cap - 1` when it is a power of two, making slot
    /// selection one `and` on the record hot path.
    slot_mask: Option<u64>,
    seq: AtomicU64,
    /// Published records wiped by `clear()` (drop accounting).
    cleared: AtomicU64,
}

// The UnsafeCell is only ever accessed under the slot seqlock.
unsafe impl Sync for SpanRing {}
unsafe impl Send for SpanRing {}

impl SpanRing {
    /// Single-shard ring: retains exactly the newest `capacity`
    /// records. Use [`with_shards`](Self::with_shards) to give the
    /// first recording threads RMW-free exclusive shards instead.
    pub fn new(capacity: usize) -> Self {
        SpanRing::with_shards(capacity, 1)
    }

    /// Ring with an explicit shard count. The shard count rounds up
    /// to a power of two and capacity rounds up to a multiple of it.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity > 0");
        assert!(shards > 0, "span ring needs at least one shard");
        let shards = shards.next_power_of_two();
        let shard_cap = capacity.div_ceil(shards);
        SpanRing {
            shards: (0..shards)
                .map(|_| Shard {
                    claims: AtomicU64::new(0),
                    slots: (0..shard_cap).map(|_| Slot::new()).collect(),
                })
                .collect(),
            shard_cap,
            slot_mask: shard_cap.is_power_of_two().then(|| shard_cap as u64 - 1),
            seq: AtomicU64::new(0),
            cleared: AtomicU64::new(0),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.shard_cap * self.shards.len()
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records ever claimed.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records lost to overwrite or `clear()`. Exact whenever no write
    /// is in flight (momentarily pessimistic otherwise).
    pub fn dropped(&self) -> u64 {
        let retained = self.count_valid() as u64;
        self.recorded()
            .saturating_sub(self.cleared.load(Ordering::Relaxed))
            .saturating_sub(retained)
    }

    fn count_valid(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter(|slot| {
                let s = slot.state.load(Ordering::Acquire);
                s != 0 && s & 1 == 0
            })
            .count()
    }

    /// Publishes `rec` (its `seq` field is ignored; the claimed seq is
    /// restored on snapshot) and returns the claimed sequence number.
    #[inline(always)]
    pub fn record(&self, rec: SpanRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.publish(rec, seq);
        seq
    }

    /// Publishes an already-closed span, minting its span id from the
    /// claimed sequence number instead of the thread-local counter —
    /// the uniqueness the `fetch_add` already paid for. The top bit
    /// keeps these ids disjoint from `(tid << 40) | counter` guard
    /// ids. Returns the span id.
    #[inline(always)]
    pub fn record_complete(&self, mut rec: SpanRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let span = seq | SEQ_SPAN_BIT;
        rec.span = span;
        self.publish(rec, seq);
        span
    }

    /// Writes `rec`'s payload fields into `slot`'s data cell. Caller
    /// must hold the slot's seqlock (odd state it owns).
    #[inline(always)]
    unsafe fn write_fields(slot: &Slot, rec: &SpanRecord) {
        let d = slot.data.get();
        (*d).t_ns = rec.t_ns;
        (*d).begin_ns = rec.begin_ns;
        (*d).span = rec.span;
        (*d).parent = rec.parent;
        (*d).arg = rec.arg;
        (*d).label = rec.label;
        (*d).kind = rec.kind;
        (*d).tid = rec.tid;
    }

    #[inline(always)]
    fn publish(&self, rec: SpanRecord, seq: u64) {
        let n = self.shards.len();
        // Thread ids are dense from 1: ids below the shard count own
        // a shard outright, everyone else (and the reserved id 0,
        // which wraps to usize::MAX here) shares the last one. The
        // mapping is static, so an owned shard has exactly one writer
        // thread for the ring's whole life.
        let sidx = (rec.tid as usize).wrapping_sub(1).min(n - 1);
        let exclusive = sidx < n - 1;
        let shard = unsafe { self.shards.get_unchecked(sidx) };
        let claim = if exclusive {
            let c = shard.claims.load(Ordering::Relaxed);
            shard.claims.store(c + 1, Ordering::Relaxed);
            c
        } else {
            shard.claims.fetch_add(1, Ordering::Relaxed)
        };
        let lidx = match self.slot_mask {
            Some(m) => (claim & m) as usize,
            None => (claim % self.shard_cap as u64) as usize,
        };
        // In range by construction: masked (mask = len-1, power of
        // two) or reduced mod the length.
        let slot = unsafe { shard.slots.get_unchecked(lidx) };
        // Seqlock write: claim the slot (odd state), publish data,
        // mark published (even, encoding the claiming seq). The seq
        // is NOT stored in the data — the published state word
        // carries it, so the record costs one store less and readers
        // derive it back on snapshot.
        let published = seq.wrapping_mul(2) + 2;
        if exclusive {
            // Single writer: blind stores are safe, no writer can
            // interleave. Readers still validate with s1 == s2.
            slot.state.store(published - 1, Ordering::Relaxed);
            fence(Ordering::Release);
            unsafe { SpanRing::write_fields(slot, &rec) };
            slot.state.store(published, Ordering::Release);
        } else {
            // Shared shard: two writers can meet on one slot when one
            // stalls for a whole shard lap, so the claim must be a
            // CAS — a blind odd-store would let a reader accept a
            // record mixing both writers' fields (s1 == s2 over torn
            // data). State words only grow, so the loser — whoever
            // finds the slot mid-write (odd) or already newer — bails
            // and drops its record; it is among the oldest in the
            // ring anyway, and `dropped()` accounts for it as
            // `recorded - retained`.
            let cur = slot.state.load(Ordering::Relaxed);
            if cur & 1 == 1 || cur > published {
                return;
            }
            if slot
                .state
                .compare_exchange(cur, published - 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
            unsafe { SpanRing::write_fields(slot, &rec) };
            // Publish with a CAS as well: a concurrent `clear()` may
            // have swapped our in-progress claim to 0 and another
            // writer may have re-claimed the slot from there; a blind
            // even store would stamp the re-claimer's half-written
            // data as ours. Losing here just drops the record.
            let _ = slot.state.compare_exchange(
                published - 1,
                published,
                Ordering::Release,
                Ordering::Relaxed,
            );
        }
    }

    /// Copies out every readable record, ordered by claim sequence.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.snapshot_since(0)
    }

    /// Copies out readable records claimed at `since` or later,
    /// ordered by claim sequence. Slots holding older records are
    /// skipped from the state word alone — no copy, no sort entry —
    /// so incremental consumers polling every tick pay for the few
    /// new records, not the whole ring.
    pub fn snapshot_since(&self, since: u64) -> Vec<SpanRecord> {
        // Published state of seq `s` is `s * 2 + 2`, so the state
        // floor for `since` also rejects the never-written state 0.
        let floor = since.wrapping_mul(2) + 2;
        let mut out = if since == 0 {
            Vec::with_capacity(self.capacity())
        } else {
            Vec::new()
        };
        for slot in self.shards.iter().flat_map(|s| s.slots.iter()) {
            let s1 = slot.state.load(Ordering::Acquire);
            if s1 & 1 == 1 || s1 < floor {
                continue;
            }
            let mut rec = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            let s2 = slot.state.load(Ordering::Relaxed);
            if s1 == s2 {
                // state == seq * 2 + 2; recover the claim seq the
                // writer did not spend a store on.
                rec.seq = s1 / 2 - 1;
                out.push(rec);
            }
        }
        out.sort_unstable_by_key(|r| r.seq);
        out
    }

    /// Wipes all published records, keeping drop accounting exact.
    pub fn clear(&self) {
        let mut wiped = 0u64;
        for slot in self.shards.iter().flat_map(|s| s.slots.iter()) {
            let prev = slot.state.swap(0, Ordering::AcqRel);
            if prev != 0 && prev & 1 == 0 {
                wiped += 1;
            }
        }
        self.cleared.fetch_add(wiped, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Plain `Cell`s with a const initializer: the fast ELF TLS path, no
/// lazy-init branch or `RefCell` borrow flags on the record hot path.
/// The thread id is the one lazily assigned field (`0` = not yet;
/// real ids start at 1).
struct ThreadCtx {
    tid: Cell<u32>,
    /// The last allocated span id, `tid << 40 | counter` — one cell
    /// carries both halves, so the hot path is a get/add/set.
    last_id: Cell<u64>,
    /// Logical nesting depth (may exceed `MAX_SPAN_DEPTH`).
    depth: Cell<usize>,
    /// Id of the innermost *tracked* open span (`0` = none), kept in
    /// sync by push/pop so the record hot path reads the parent with
    /// one load instead of a clamped stack index.
    current: Cell<u64>,
    stack: [Cell<u64>; MAX_SPAN_DEPTH],
}

impl ThreadCtx {
    #[inline]
    fn tid(&self) -> u32 {
        match self.tid.get() {
            0 => {
                let t = next_tid();
                self.tid.set(t);
                t
            }
            t => t,
        }
    }

    #[inline]
    fn parent(&self) -> u64 {
        self.current.get()
    }

    #[inline]
    fn next_span_id(&self) -> u64 {
        let n = self.last_id.get();
        let id = if n == 0 {
            (u64::from(self.tid()) << 40) | 1
        } else {
            n + 1
        };
        self.last_id.set(id);
        id
    }
}

thread_local! {
    static CTX: ThreadCtx = const {
        ThreadCtx {
            tid: Cell::new(0),
            last_id: Cell::new(0),
            depth: Cell::new(0),
            current: Cell::new(0),
            stack: [const { Cell::new(0) }; MAX_SPAN_DEPTH],
        }
    };
}

fn next_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Thread-local span context: a fixed-array span stack giving every
/// record its parent without allocation or synchronization.
///
/// Span ids are `(tid << 40) | thread_local_counter`, so they are
/// unique process-wide without touching shared state per span.
pub struct TraceCtx;

impl TraceCtx {
    /// Small dense id of the calling thread (stable for its lifetime).
    pub fn thread_id() -> u32 {
        CTX.with(|c| c.tid())
    }

    /// Id of the innermost open span on this thread (`0` if none).
    pub fn current_span() -> u64 {
        CTX.with(|c| c.parent())
    }

    /// Current nesting depth on this thread.
    pub fn depth() -> usize {
        CTX.with(|c| c.depth.get())
    }

    /// Allocates a fresh span id without opening a span (for spans
    /// recorded retroactively, already closed).
    pub fn alloc_span_id() -> u64 {
        CTX.with(|c| c.next_span_id())
    }

    /// Reads the current parent and thread id in a single thread-local
    /// access — the retroactive-record hot path, where the span id
    /// comes from the ring sequence ([`SpanRing::record_complete`]) and
    /// two separate accessors would double the TLS cost.
    #[inline(always)]
    pub(crate) fn parent_tid() -> (u64, u32) {
        CTX.with(|c| (c.parent(), c.tid()))
    }

    /// Opens a span: returns `(span_id, parent_id, tid)`.
    pub(crate) fn push() -> (u64, u64, u32) {
        CTX.with(|c| {
            let parent = c.parent();
            let id = c.next_span_id();
            let d = c.depth.get();
            if d < MAX_SPAN_DEPTH {
                c.stack[d].set(id);
                c.current.set(id);
            }
            c.depth.set(d + 1);
            (id, parent, (id >> 40) as u32)
        })
    }

    /// Closes the innermost span.
    pub(crate) fn pop() {
        CTX.with(|c| {
            let d = c.depth.get().saturating_sub(1);
            c.depth.set(d);
            // `current` only tracks spans within the stack window;
            // deeper (untracked) pops leave it at the deepest tracked
            // span, matching push.
            if d < MAX_SPAN_DEPTH {
                c.current.set(if d == 0 { 0 } else { c.stack[d - 1].get() });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_retains_exactly_newest() {
        let ring = SpanRing::with_shards(4, 1);
        for i in 0..10u64 {
            let mut rec = EMPTY;
            rec.t_ns = i;
            ring.record(rec);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let snap = ring.snapshot();
        let times: Vec<u64> = snap.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, [6, 7, 8, 9]);
    }

    #[test]
    fn multi_shard_ring_fills_its_shard_densely() {
        // Slots come from the shard's own dense claim counter, not
        // from residues of the global seq: however claims interleave
        // globally, one writer's shard retains exactly its newest
        // `shard_cap` records. Records with tid 0 route to the shared
        // shard, so this also exercises the CAS claim path.
        let ring = SpanRing::with_shards(8, 4);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.shards(), 4);
        for i in 0..7u64 {
            let mut rec = EMPTY;
            rec.t_ns = i;
            ring.record(rec);
        }
        // Every slot of the writer's shard is in use (shard_cap = 2),
        // and the retained records are the newest two, back to back.
        let times: Vec<u64> = ring.snapshot().iter().map(|r| r.t_ns).collect();
        assert_eq!(times, [5, 6]);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn exclusive_shard_tids_fill_densely_too() {
        // tids 1..shards own a shard each (blind-store fast path);
        // their records also land densely in claim order.
        let ring = SpanRing::with_shards(8, 2);
        for i in 0..9u64 {
            let mut rec = EMPTY;
            rec.tid = 1;
            rec.t_ns = i;
            ring.record(rec);
        }
        let snap = ring.snapshot();
        let times: Vec<u64> = snap.iter().map(|r| r.t_ns).collect();
        // Shard 0 holds capacity/2 = 4 slots; the newest 4 survive.
        assert_eq!(times, [5, 6, 7, 8]);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn snapshot_since_filters_by_claim_seq() {
        let ring = SpanRing::with_shards(8, 1);
        for i in 0..6u64 {
            let mut rec = EMPTY;
            rec.t_ns = i;
            ring.record(rec);
        }
        let tail = ring.snapshot_since(4);
        let times: Vec<u64> = tail.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, [4, 5]);
        assert_eq!(tail[0].seq, 4);
        assert!(ring.snapshot_since(6).is_empty());
        assert_eq!(ring.snapshot_since(0).len(), 6);
    }

    #[test]
    fn lapped_writers_never_tear_records() {
        // A one-slot ring makes every claim a lap collision, so the
        // CAS slot claim is exercised on every record: a loser must
        // drop its record whole, never interleave stores with the
        // winner. Each record's fields are all derived from `arg`, so
        // any mix of two writers' fields is detectable.
        let ring = std::sync::Arc::new(SpanRing::with_shards(1, 1));
        let threads = 4;
        let per_thread = 20_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let tag = ((t as u64) << 32) | i;
                        let mut rec = EMPTY;
                        rec.t_ns = tag * 4 + 3;
                        rec.begin_ns = tag * 4;
                        rec.arg = tag;
                        rec.kind = SpanKind::End;
                        ring.record(rec);
                        if let Some(r) = ring.snapshot().first() {
                            assert_eq!(r.begin_ns, r.arg * 4, "torn record");
                            assert_eq!(r.t_ns, r.arg * 4 + 3, "torn record");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), threads as u64 * per_thread);
        // At quiescence every claim is retained or counted dropped.
        assert_eq!(
            ring.dropped() + ring.snapshot().len() as u64,
            ring.recorded()
        );
    }

    #[test]
    fn clear_preserves_drop_accounting() {
        let ring = SpanRing::with_shards(2, 1);
        for _ in 0..3 {
            ring.record(EMPTY);
        }
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dropped(), 1);
        ring.record(EMPTY);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn span_ids_are_unique_and_stacked() {
        let (a, pa, _) = TraceCtx::push();
        let (b, pb, _) = TraceCtx::push();
        assert_ne!(a, b);
        assert_eq!(pa, 0);
        assert_eq!(pb, a);
        assert_eq!(TraceCtx::current_span(), b);
        TraceCtx::pop();
        assert_eq!(TraceCtx::current_span(), a);
        TraceCtx::pop();
        assert_eq!(TraceCtx::current_span(), 0);
    }

    #[test]
    fn depth_overflow_is_safe() {
        for _ in 0..MAX_SPAN_DEPTH + 4 {
            TraceCtx::push();
        }
        assert_eq!(TraceCtx::depth(), MAX_SPAN_DEPTH + 4);
        // Deeper pushes parent to the deepest tracked span.
        let top = TraceCtx::current_span();
        let (_, parent, _) = TraceCtx::push();
        assert_eq!(parent, top);
        TraceCtx::pop();
        for _ in 0..MAX_SPAN_DEPTH + 4 {
            TraceCtx::pop();
        }
        assert_eq!(TraceCtx::depth(), 0);
    }

    #[test]
    fn fast_clock_tracks_monotonic() {
        let a = fast_now_ns();
        let b = fast_now_ns();
        assert!(b >= a);
        // Same epoch family as monotonic_ns: within a generous bound.
        let m = monotonic_ns();
        let f = fast_now_ns();
        let skew = m.abs_diff(f);
        assert!(skew < 1_000_000_000, "fast clock skew {skew} ns");
    }
}
