//! The [`TraceLog`]: a bounded ring buffer of timestamped events and
//! spans, cheap enough to leave enabled in release builds.
//!
//! Recording is one short mutex-protected `VecDeque` push (the mutex
//! is uncontended in the single-threaded event loop this instrumentes;
//! cross-thread users pay a few tens of nanoseconds). When the ring is
//! full the oldest event is overwritten and a drop counter advances,
//! so memory stays bounded no matter how long the process runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the process-wide trace epoch.
    pub t_ns: u64,
    /// Static label, e.g. `"gel.iteration"`.
    pub label: &'static str,
    /// Event payload: a span's duration in nanoseconds, or any
    /// caller-chosen scalar for point events.
    pub value: f64,
}

/// Process-wide monotonic nanoseconds (first call defines zero).
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .saturating_duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// Bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceLog {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceLog {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity > 0");
        TraceLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records a point event stamped with [`monotonic_ns`].
    pub fn event(&self, label: &'static str, value: f64) {
        self.event_at(monotonic_ns(), label, value);
    }

    /// Records a point event with an explicit timestamp (virtual-clock
    /// tests).
    pub fn event_at(&self, t_ns: u64, label: &'static str, value: f64) {
        let mut ring = self.ring.lock().expect("trace lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceEvent { t_ns, label, value });
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a span; its wall-clock duration in nanoseconds is
    /// recorded as the event value when the guard drops.
    pub fn span(self: &Arc<Self>, label: &'static str) -> SpanGuard {
        SpanGuard {
            log: Arc::clone(self),
            label,
            start_ns: monotonic_ns(),
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace lock")
            .iter()
            .copied()
            .collect()
    }

    /// Copies out the newest `n` retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace lock");
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).copied().collect()
    }

    /// Discards all retained events (counters are preserved).
    pub fn clear(&self) {
        self.ring.lock().expect("trace lock").clear();
    }
}

/// Records a span's duration into its [`TraceLog`] on drop.
#[derive(Debug)]
pub struct SpanGuard {
    log: Arc<TraceLog>,
    label: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = monotonic_ns();
        self.log
            .event_at(end, self.label, end.saturating_sub(self.start_ns) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_counts_drops() {
        let log = TraceLog::new(4);
        for i in 0..10u64 {
            log.event_at(i, "tick", i as f64);
        }
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.dropped(), 6);
        let events = log.events();
        assert_eq!(events.len(), 4);
        // Oldest-first, and only the newest four survive.
        let times: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, [6, 7, 8, 9]);
    }

    #[test]
    fn recent_takes_the_tail() {
        let log = TraceLog::new(8);
        for i in 0..5u64 {
            log.event_at(i, "e", 0.0);
        }
        let tail = log.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!((tail[0].t_ns, tail[1].t_ns), (3, 4));
        assert_eq!(log.recent(100).len(), 5);
    }

    #[test]
    fn span_records_duration() {
        let log = Arc::new(TraceLog::new(8));
        {
            let _guard = log.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = log.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "work");
        assert!(
            events[0].value >= 1e6,
            "span shorter than slept: {} ns",
            events[0].value
        );
    }

    #[test]
    fn clear_keeps_counters() {
        let log = TraceLog::new(2);
        log.event_at(0, "a", 0.0);
        log.event_at(1, "b", 0.0);
        log.event_at(2, "c", 0.0);
        log.clear();
        assert!(log.events().is_empty());
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn monotonic_ns_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }
}
