//! The [`TraceLog`]: causally structured span tracing on a
//! fixed-slot ring — cheap enough to leave enabled in release builds.
//!
//! Recording is one `fetch_add` to claim a slot plus a seqlock'd
//! 80-byte store; there is no mutex and no queue shifting (the old
//! `Mutex<VecDeque>` ring this replaces paid a lock plus a pop/push
//! per event). Spans carry parent/child causality from a thread-local
//! stack ([`TraceCtx`]), so one event-loop tick decomposes into its
//! scope / render / net / store stages.
//!
//! The legacy point-event view ([`TraceLog::events`]) is preserved:
//! span End records surface as one `TraceEvent` whose value is the
//! duration and whose `t_ns` is the end time, exactly as before —
//! but ordering by *start* time is now possible too, because End
//! records carry `begin_ns` (the old `SpanGuard` recorded only the
//! end timestamp, which made Chrome-trace export impossible).

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

pub use crate::span::{fast_now_ns, monotonic_ns};
use crate::span::{SpanKind, SpanRecord, SpanRing, TraceCtx};

/// One recorded event (legacy flat view of the span ring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the process-wide trace epoch.
    pub t_ns: u64,
    /// Static label, e.g. `"gel.iteration"`.
    pub label: &'static str,
    /// Event payload: a span's duration in nanoseconds, or any
    /// caller-chosen scalar for point events.
    pub value: f64,
}

/// Bounded ring of span and point-event records.
pub struct TraceLog {
    ring: SpanRing,
}

impl TraceLog {
    /// Creates a ring retaining exactly the newest `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            ring: SpanRing::new(capacity),
        }
    }

    /// Creates a ring with an explicit shard count: the first
    /// `shards - 1` recording threads get an RMW-free exclusive shard
    /// each, later threads share the last; retention is the newest
    /// `capacity / shards` records per shard.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        TraceLog {
            ring: SpanRing::with_shards(capacity, shards),
        }
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Total records ever recorded.
    pub fn recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Records overwritten (ring full) or wiped by [`clear`](Self::clear).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Records a point event stamped with [`fast_now_ns`].
    pub fn event(&self, label: &'static str, value: f64) {
        self.event_at(fast_now_ns(), label, value);
    }

    /// Records a point event with an explicit timestamp (virtual-clock
    /// tests). The event is parented to the innermost open span.
    pub fn event_at(&self, t_ns: u64, label: &'static str, value: f64) {
        self.ring.record(SpanRecord {
            seq: 0,
            t_ns,
            begin_ns: t_ns,
            span: 0,
            parent: TraceCtx::current_span(),
            arg: value.to_bits(),
            label,
            kind: SpanKind::Instant,
            tid: TraceCtx::thread_id(),
        });
    }

    /// Starts a span; begin and end records bracket the guard's
    /// lifetime and nested spans become its children.
    pub fn span(self: &Arc<Self>, label: &'static str) -> SpanGuard {
        self.span_with(label, 0)
    }

    /// Starts a span carrying one payload word (tick number, byte
    /// count, …).
    pub fn span_with(self: &Arc<Self>, label: &'static str, arg: u64) -> SpanGuard {
        let (span, parent, tid) = TraceCtx::push();
        let begin_ns = fast_now_ns();
        self.ring.record(SpanRecord {
            seq: 0,
            t_ns: begin_ns,
            begin_ns,
            span,
            parent,
            arg,
            label,
            kind: SpanKind::Begin,
            tid,
        });
        SpanGuard {
            log: Arc::clone(self),
            label,
            arg,
            span,
            parent,
            tid,
            begin_ns,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Records an already-closed span with explicit timestamps; the
    /// span is parented to the innermost open span. Returns its id.
    #[inline(always)]
    pub fn record_span_at(&self, label: &'static str, arg: u64, begin_ns: u64, end_ns: u64) -> u64 {
        let (parent, tid) = TraceCtx::parent_tid();
        self.ring.record_complete(SpanRecord {
            seq: 0,
            t_ns: end_ns.max(begin_ns),
            begin_ns,
            span: 0,
            parent,
            arg,
            label,
            kind: SpanKind::End,
            tid,
        })
    }

    /// Copies out the raw span records, claim order (oldest first).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Raw records with `seq >= since` (incremental consumers). Older
    /// slots are skipped from their state word alone, so a per-tick
    /// poll pays for the new records, not the whole ring.
    pub fn records_since(&self, since: u64) -> Vec<SpanRecord> {
        self.ring.snapshot_since(since)
    }

    /// Copies out the retained events, oldest first (legacy view:
    /// Begin records are hidden, End records carry the duration).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .snapshot()
            .iter()
            .filter(|r| r.kind != SpanKind::Begin)
            .map(|r| TraceEvent {
                t_ns: r.t_ns,
                label: r.label,
                value: r.value(),
            })
            .collect()
    }

    /// Copies out the newest `n` retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let events = self.events();
        let skip = events.len().saturating_sub(n);
        events[skip..].to_vec()
    }

    /// Discards all retained records (counters are preserved).
    pub fn clear(&self) {
        self.ring.clear();
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Open span: records Begin at creation, End (with duration) on drop.
///
/// `!Send`: the guard belongs to the thread that opened it — its drop
/// pops that thread's span stack and records with that thread's id
/// (which may route to a shard of the ring only that thread may
/// write).
#[derive(Debug)]
pub struct SpanGuard {
    log: Arc<TraceLog>,
    label: &'static str,
    arg: u64,
    span: u64,
    parent: u64,
    tid: u32,
    begin_ns: u64,
    /// Pins the guard to its creating thread (`*const ()` is `!Send`).
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// This span's id (usable as a parent reference).
    pub fn id(&self) -> u64 {
        self.span
    }

    /// Replaces the payload word recorded with the End record.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = fast_now_ns();
        TraceCtx::pop();
        self.log.ring.record(SpanRecord {
            seq: 0,
            t_ns: end.max(self.begin_ns),
            begin_ns: self.begin_ns,
            span: self.span,
            parent: self.parent,
            arg: self.arg,
            label: self.label,
            kind: SpanKind::End,
            tid: self.tid,
        });
    }
}

/// Slots in the process-wide tracer (32k records, ~2.5 MB). Two
/// shards: the first recording thread — the event loop in every
/// gscope binary — owns half the slots with the RMW-free fast path;
/// all other threads share the rest under the CAS slot claim.
const GLOBAL_CAPACITY: usize = 32_768;
const GLOBAL_SHARDS: usize = 2;

static GLOBAL: OnceLock<Arc<TraceLog>> = OnceLock::new();

thread_local! {
    static OVERRIDE: RefCell<Option<Arc<TraceLog>>> = const { RefCell::new(None) };
}

/// The tracer instrumented code records into: this thread's override
/// if one is installed (tests, `gtool trace`), else the process-wide
/// log.
pub fn tracer() -> Arc<TraceLog> {
    if let Some(t) = OVERRIDE.with(|o| o.borrow().clone()) {
        return t;
    }
    Arc::clone(
        GLOBAL.get_or_init(|| Arc::new(TraceLog::with_shards(GLOBAL_CAPACITY, GLOBAL_SHARDS))),
    )
}

/// Installs (or with `None` removes) this thread's tracer override,
/// returning the previous one.
pub fn set_thread_tracer(tracer: Option<Arc<TraceLog>>) -> Option<Arc<TraceLog>> {
    OVERRIDE.with(|o| std::mem::replace(&mut *o.borrow_mut(), tracer))
}

/// Scoped tracer override: restores the previous tracer on drop.
#[derive(Debug)]
pub struct ThreadTracerGuard {
    prev: Option<Option<Arc<TraceLog>>>,
}

impl Drop for ThreadTracerGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            set_thread_tracer(prev);
        }
    }
}

/// Routes this thread's spans into `log` until the guard drops.
pub fn with_thread_tracer(log: Arc<TraceLog>) -> ThreadTracerGuard {
    ThreadTracerGuard {
        prev: Some(set_thread_tracer(Some(log))),
    }
}

/// Opens a span on the current tracer (see [`tracer`]).
#[inline]
pub fn span(label: &'static str, arg: u64) -> SpanGuard {
    tracer().span_with(label, arg)
}

/// Records a point event on the current tracer.
#[inline]
pub fn instant(label: &'static str, value: f64) {
    tracer().event(label, value);
}

/// Records a span that already ran (`begin_ns` from [`fast_now_ns`])
/// on the current tracer; for call sites that only know *after* the
/// work whether it is worth a span. Returns the span id.
#[inline]
pub fn complete_span(label: &'static str, arg: u64, begin_ns: u64) -> u64 {
    tracer().record_span_at(label, arg, begin_ns, fast_now_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_counts_drops() {
        let log = TraceLog::new(4);
        for i in 0..10u64 {
            log.event_at(i, "tick", i as f64);
        }
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.dropped(), 6);
        let events = log.events();
        assert_eq!(events.len(), 4);
        // Oldest-first, and only the newest four survive.
        let times: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, [6, 7, 8, 9]);
    }

    #[test]
    fn recent_takes_the_tail() {
        let log = TraceLog::new(8);
        for i in 0..5u64 {
            log.event_at(i, "e", 0.0);
        }
        let tail = log.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!((tail[0].t_ns, tail[1].t_ns), (3, 4));
        assert_eq!(log.recent(100).len(), 5);
    }

    #[test]
    fn span_records_duration() {
        let log = Arc::new(TraceLog::new(8));
        {
            let _guard = log.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = log.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "work");
        assert!(
            events[0].value >= 1e6,
            "span shorter than slept: {} ns",
            events[0].value
        );
    }

    #[test]
    fn span_records_begin_and_end() {
        let log = Arc::new(TraceLog::new(8));
        {
            let _guard = log.span_with("work", 7);
        }
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, SpanKind::Begin);
        assert_eq!(records[1].kind, SpanKind::End);
        assert_eq!(records[0].span, records[1].span);
        assert_eq!(records[1].begin_ns, records[0].t_ns);
        assert!(records[1].t_ns >= records[1].begin_ns);
        assert_eq!(records[1].arg, 7);
    }

    #[test]
    fn spans_nest_causally() {
        let log = Arc::new(TraceLog::new(16));
        {
            let outer = log.span("outer");
            let outer_id = outer.id();
            {
                let inner = log.span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            log.event("point", 1.0);
        }
        let records = log.records();
        let outer_end = records
            .iter()
            .find(|r| r.label == "outer" && r.kind == SpanKind::End)
            .unwrap();
        let inner_end = records
            .iter()
            .find(|r| r.label == "inner" && r.kind == SpanKind::End)
            .unwrap();
        let point = records.iter().find(|r| r.label == "point").unwrap();
        assert_eq!(outer_end.parent, 0);
        assert_eq!(inner_end.parent, outer_end.span);
        assert_eq!(point.parent, outer_end.span);
    }

    #[test]
    fn clear_keeps_counters() {
        let log = TraceLog::new(2);
        log.event_at(0, "a", 0.0);
        log.event_at(1, "b", 0.0);
        log.event_at(2, "c", 0.0);
        log.clear();
        assert!(log.events().is_empty());
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn monotonic_ns_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_tracer_override_isolates() {
        let log = Arc::new(TraceLog::new(32));
        {
            let _t = with_thread_tracer(Arc::clone(&log));
            let _s = span("isolated", 1);
        }
        assert_eq!(log.records().len(), 2);
        // Restored: new spans go elsewhere.
        {
            let _s = span("global", 1);
        }
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn record_span_at_is_self_contained() {
        let log = TraceLog::new(8);
        let id = log.record_span_at("late", 42, 100, 350);
        let records = log.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].span, id);
        assert_eq!(records[0].kind, SpanKind::End);
        assert_eq!(records[0].duration_ns(), 250);
        assert_eq!(records[0].arg, 42);
    }
}
