//! The [`Registry`]: a name → metric map handing out shared atomic
//! handles.
//!
//! Lookup takes a `RwLock`, so components resolve their handles once
//! at construction and keep the returned `Arc`s; after that every
//! record is lock-free. A process-wide [`global`] registry exists for
//! code without an obvious owner, but components default to their own
//! registry so tests stay isolated.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, HistogramSnapshot, HistogramStat, LatencyHistogram};

/// A handle to any registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Instantaneous value.
    Gauge(Arc<Gauge>),
    /// Log-scale latency histogram.
    Histogram(Arc<LatencyHistogram>),
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram digest.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Collapses the reading to one `f64` (histograms via `stat`).
    pub fn as_f64(&self, stat: HistogramStat) -> f64 {
        match self {
            MetricValue::Counter(n) => *n as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(s) => stat.read(s),
        }
    }
}

/// A named snapshot of every metric in a registry, sorted by name.
pub type Snapshot = Vec<(String, MetricValue)>;

/// A name → metric map; see the module docs for the locking story.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<HashMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates an empty registry behind an `Arc`, the shape components
    /// store.
    pub fn shared() -> Arc<Self> {
        Arc::new(Registry::new())
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        match self.get_or_insert(name, || {
            Metric::Histogram(Arc::new(LatencyHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.metrics.read().expect("registry lock").get(name) {
            return m.clone();
        }
        let mut map = self.metrics.write().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Looks up a metric without creating it.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .metrics
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().expect("registry lock").len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut out: Snapshot = self
            .metrics
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Returns a closure reading metric `name` as one `f64` — the
    /// self-scoping hook: wrap it in a `FUNC` signal source and a
    /// second Scope can plot gscope's own telemetry live. Histograms
    /// read out through `stat`; counters and gauges ignore it.
    ///
    /// Returns `None` if `name` is not registered.
    pub fn sampler(
        &self,
        name: &str,
        stat: HistogramStat,
    ) -> Option<impl FnMut() -> f64 + Send + 'static> {
        let metric = self.get(name)?;
        Some(move || match &metric {
            Metric::Counter(c) => c.get() as f64,
            Metric::Gauge(g) => g.get(),
            Metric::Histogram(h) => stat.read(&h.snapshot()),
        })
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::shared)
}

/// The process-wide registry as a shareable handle — the same map
/// [`global`] returns, for components that store an `Arc<Registry>`.
pub fn global_shared() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(Registry::shared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(5);
        r.gauge("a.depth").set(3.0);
        r.histogram("c.lat").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.depth", "b.count", "c.lat"]);
        assert_eq!(snap[1].1, MetricValue::Counter(5));
        assert_eq!(snap[0].1.as_f64(HistogramStat::Mean), 3.0);
        match snap[2].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn sampler_reads_live_values() {
        let r = Registry::new();
        let c = r.counter("ticks");
        let mut read = r.sampler("ticks", HistogramStat::Mean).expect("registered");
        assert_eq!(read(), 0.0);
        c.add(7);
        assert_eq!(read(), 7.0);
        assert!(r.sampler("absent", HistogramStat::Mean).is_none());
    }

    #[test]
    fn global_is_a_singleton() {
        global().counter("gtel.selftest").inc();
        assert!(global().get("gtel.selftest").is_some());
    }
}
