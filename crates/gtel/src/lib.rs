//! gtel — self-telemetry for the gscope stack.
//!
//! Gscope exists to expose the temporal behaviour of time-sensitive
//! programs (paper §1); gtel turns that lens on gscope itself. It
//! provides:
//!
//! * [`Counter`] / [`Gauge`] / [`LatencyHistogram`] — atomic metric
//!   primitives whose record path is a handful of relaxed RMWs
//!   (~20ns), cheap enough to run on every event-loop tick.
//! * [`Registry`] — a name → metric map handing out shared handles;
//!   components resolve handles once and record lock-free thereafter.
//! * [`TraceLog`] — a bounded ring buffer of timestamped events and
//!   spans for after-the-fact inspection of recent loop behaviour.
//! * [`export`] — snapshot serializers: the paper's §3.3 tuple
//!   format, Prometheus text exposition, and a human-readable table.
//!
//! The crate deliberately has no dependencies (it sits below `gel` in
//! the stack) and measures time as `u64` nanoseconds. The event loop,
//! scope core, and network layer all record into a registry, and
//! `Registry::sampler` lets any metric be replayed as a `FUNC` signal
//! source — so a second scope can visualize the first scope's tick
//! jitter live ("self-scoping", the observability analogue of the
//! paper's §4.5 microbenchmarks).

pub mod export;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use export::{format_ns, prometheus_text, stats_table, tuple_lines};
pub use metrics::{
    Counter, Gauge, HistogramSnapshot, HistogramStat, LatencyHistogram, HISTOGRAM_BUCKETS,
};
pub use registry::{global, Metric, MetricValue, Registry, Snapshot};
pub use trace::{monotonic_ns, SpanGuard, TraceEvent, TraceLog};
