//! gtel — self-telemetry for the gscope stack.
//!
//! Gscope exists to expose the temporal behaviour of time-sensitive
//! programs (paper §1); gtel turns that lens on gscope itself. It
//! provides:
//!
//! * [`Counter`] / [`Gauge`] / [`LatencyHistogram`] — atomic metric
//!   primitives whose record path is a handful of relaxed RMWs
//!   (~20ns), cheap enough to run on every event-loop tick.
//! * [`Registry`] — a name → metric map handing out shared handles;
//!   components resolve handles once and record lock-free thereafter.
//! * [`TraceLog`] — causally structured span tracing (gtrace) on a
//!   fixed-slot ring: begin/end records with parent/child
//!   links from a thread-local span stack, for after-the-fact
//!   decomposition of one event-loop tick into its pipeline stages.
//! * [`DeadlineMonitor`] — per-stage time budgets derived from the
//!   polling period with a rolling SLO window, exported as gauges.
//! * [`chrome`] — trace exporters: Chrome trace-event JSON
//!   (Perfetto-loadable), a causality text tree, slowest-span table.
//! * [`export`] — snapshot serializers: the paper's §3.3 tuple
//!   format, Prometheus text exposition, JSON, a human-readable
//!   table.
//!
//! The crate deliberately has no dependencies (it sits below `gel` in
//! the stack) and measures time as `u64` nanoseconds. The event loop,
//! scope core, and network layer all record into a registry, and
//! `Registry::sampler` lets any metric be replayed as a `FUNC` signal
//! source — so a second scope can visualize the first scope's tick
//! jitter live ("self-scoping", the observability analogue of the
//! paper's §4.5 microbenchmarks).

pub mod chrome;
pub mod deadline;
pub mod e2e;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use chrome::{aggregate_spans, chrome_trace_json, slowest_spans, span_tree, SpanAgg};
pub use deadline::{DeadlineMiss, DeadlineMonitor, StageBudget};
pub use e2e::{e2e, BatchMark, E2e, E2eSnapshot, Stage};
pub use export::{
    format_ns, json_stats, prometheus_text, span_tuple_rows, stats_table, tuple_lines,
};
pub use metrics::{
    Counter, Gauge, HistogramSnapshot, HistogramStat, LatencyHistogram, HISTOGRAM_BUCKETS,
};
pub use registry::{global, global_shared, Metric, MetricValue, Registry, Snapshot};
pub use span::{fast_now_ns, monotonic_ns, SpanKind, SpanRecord, TraceCtx, MAX_SPAN_DEPTH};
pub use trace::{
    complete_span, instant, set_thread_tracer, span, tracer, with_thread_tracer, SpanGuard,
    ThreadTracerGuard, TraceEvent, TraceLog,
};
