//! Span trace exporters: Chrome trace-event JSON (loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), a text
//! tree mirroring the causal structure, and a slowest-spans table.
//!
//! All exporters consume the raw [`SpanRecord`] snapshot. Complete
//! spans are reconstructed from End records alone (they carry
//! `begin_ns`), so spans whose Begin record was overwritten by ring
//! wrap-around still export correctly.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::export::format_ns;
use crate::span::{SpanKind, SpanRecord};

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_us(ns: u64, out: &mut String) {
    // Microseconds with nanosecond precision, integer math only.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Complete spans (End records) from a snapshot, begin-time order.
pub fn complete_spans(records: &[SpanRecord]) -> Vec<SpanRecord> {
    let mut spans: Vec<SpanRecord> = records
        .iter()
        .filter(|r| r.kind == SpanKind::End)
        .copied()
        .collect();
    spans.sort_by_key(|r| (r.begin_ns, r.seq));
    spans
}

/// Renders records as Chrome trace-event JSON: complete spans become
/// `"ph":"X"` duration events (nested by timestamp containment per
/// thread, which matches our causal nesting), point events become
/// `"ph":"i"` instants. Span/parent ids ride along in `args` so the
/// causal links survive the round trip.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 120 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for r in records {
        if r.kind == SpanKind::Begin {
            continue; // its End record (if retained) is self-contained
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(r.label, &mut out);
        out.push_str("\",\"cat\":\"gscope\",\"ph\":\"");
        match r.kind {
            SpanKind::End => {
                out.push_str("X\",\"ts\":");
                write_us(r.begin_ns, &mut out);
                out.push_str(",\"dur\":");
                write_us(r.duration_ns(), &mut out);
                let _ = write!(
                    out,
                    ",\"pid\":1,\"tid\":{},\"args\":{{\"arg\":{},\"span\":{},\"parent\":{}}}}}",
                    r.tid, r.arg, r.span, r.parent
                );
            }
            _ => {
                out.push_str("i\",\"s\":\"t\",\"ts\":");
                write_us(r.t_ns, &mut out);
                let _ = write!(
                    out,
                    ",\"pid\":1,\"tid\":{},\"args\":{{\"value\":{},\"parent\":{}}}}}",
                    r.tid,
                    crate::export::fmt_value(r.value()),
                    r.parent
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders complete spans as an indented causality tree, one root per
/// top-level span, begin-time order:
///
/// ```text
/// gel.iteration #3 1.20ms
/// ├─ scope.tick #3 512.00us
/// │  └─ scope.record 100.00us
/// └─ render.frame 300.00us
/// ```
pub fn span_tree(records: &[SpanRecord]) -> String {
    let spans = complete_spans(records);
    let known: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.span, i)).collect();
    // children[i] = indexes of spans whose parent is spans[i].
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match known.get(&s.parent) {
            Some(&p) if s.parent != 0 && p != i => children[p].push(i),
            // Parent 0 or evicted from the ring: treat as a root.
            _ => roots.push(i),
        }
    }
    let mut out = String::new();
    for &root in &roots {
        render_node(&spans, &children, root, "", "", &mut out);
    }
    out
}

fn render_node(
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    idx: usize,
    lead: &str,
    child_lead: &str,
    out: &mut String,
) {
    let s = &spans[idx];
    let _ = writeln!(
        out,
        "{lead}{} #{} {}",
        s.label,
        s.arg,
        format_ns(s.duration_ns())
    );
    let kids = &children[idx];
    for (i, &k) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        render_node(
            spans,
            children,
            k,
            &format!("{child_lead}{branch}"),
            &format!("{child_lead}{cont}"),
            out,
        );
    }
}

/// Per-label aggregate over complete spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanAgg {
    /// Span label.
    pub label: &'static str,
    /// Completed spans observed.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Worst single span.
    pub max_ns: u64,
}

impl SpanAgg {
    /// Mean duration per span.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregates complete spans by label, worst `max_ns` first.
pub fn aggregate_spans(records: &[SpanRecord]) -> Vec<SpanAgg> {
    let mut by_label: HashMap<&'static str, SpanAgg> = HashMap::new();
    for r in records.iter().filter(|r| r.kind == SpanKind::End) {
        let agg = by_label.entry(r.label).or_insert(SpanAgg {
            label: r.label,
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        agg.count += 1;
        agg.total_ns += r.duration_ns();
        agg.max_ns = agg.max_ns.max(r.duration_ns());
    }
    let mut out: Vec<SpanAgg> = by_label.into_values().collect();
    out.sort_by(|a, b| b.max_ns.cmp(&a.max_ns).then(a.label.cmp(b.label)));
    out
}

/// Renders the `n` slowest span labels as an aligned table.
pub fn slowest_spans(records: &[SpanRecord], n: usize) -> String {
    let aggs = aggregate_spans(records);
    let width = aggs
        .iter()
        .take(n)
        .map(|a| a.label.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}",
        "span", "count", "max", "mean", "total"
    );
    for a in aggs.iter().take(n) {
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}",
            a.label,
            a.count,
            format_ns(a.max_ns),
            format_ns(a.mean_ns()),
            format_ns(a.total_ns)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceLog;
    use std::sync::Arc;

    fn demo_log() -> Arc<TraceLog> {
        let log = Arc::new(TraceLog::new(64));
        {
            let _root = log.span_with("tick", 3);
            {
                let _child = log.span_with("poll", 3);
                log.record_span_at("record", 0, 100, 200);
            }
            let _render = log.span_with("render", 3);
        }
        log
    }

    #[test]
    fn chrome_json_has_complete_events() {
        let json = chrome_trace_json(&demo_log().records());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"tick\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Begin records are folded into their End events.
        assert_eq!(json.matches("\"name\":\"tick\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
    }

    #[test]
    fn chrome_json_instant_events() {
        let log = TraceLog::new(8);
        log.event_at(1_500, "mark", 2.5);
        let json = chrome_trace_json(&log.records());
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"value\":2.5"));
    }

    #[test]
    fn tree_nests_causally() {
        let tree = span_tree(&demo_log().records());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4, "tree:\n{tree}");
        assert!(lines[0].starts_with("tick #3"));
        assert!(lines[1].starts_with("├─ poll #3"));
        assert!(lines[2].starts_with("│  └─ record #0"));
        assert!(lines[3].starts_with("└─ render #3"));
    }

    #[test]
    fn orphaned_children_become_roots() {
        let log = TraceLog::new(64);
        log.record_span_at("lonely", 1, 10, 20);
        let tree = span_tree(&log.records());
        assert!(tree.starts_with("lonely #1"));
    }

    #[test]
    fn slowest_ranks_by_max() {
        let log = TraceLog::new(64);
        log.record_span_at("fast", 0, 0, 100);
        log.record_span_at("slow", 0, 0, 9_000);
        log.record_span_at("fast", 0, 0, 300);
        let aggs = aggregate_spans(&log.records());
        assert_eq!(aggs[0].label, "slow");
        assert_eq!(aggs[1].count, 2);
        assert_eq!(aggs[1].mean_ns(), 200);
        let table = slowest_spans(&log.records(), 10);
        let first_data_line = table.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("slow"));
    }
}
