//! Snapshot exporters: the paper's §3.3 whitespace tuple stream,
//! Prometheus text exposition, and a human-readable table for
//! `gtool stats`.

use std::fmt::Write as _;

use crate::registry::{MetricValue, Snapshot};
use crate::span::{SpanKind, SpanRecord};

/// Renders `ns` nanoseconds with an auto-selected unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

pub(crate) fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Emits the snapshot as §3.3 `time value name` tuple lines (time in
/// milliseconds, three decimals — the same shape `gtool stream`
/// produces for signals, so telemetry can feed straight back into a
/// scope). Histograms expand to `.count` plus millisecond-scaled
/// `.p50_ms`/`.p90_ms`/`.p99_ms`/`.max_ms` lines.
pub fn tuple_lines(snapshot: &Snapshot, now_ms: f64) -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |name: &str, value: String| {
        out.push(format!("{now_ms:.3} {value} {name}"));
    };
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(n) => push(name, n.to_string()),
            MetricValue::Gauge(v) => push(name, fmt_value(*v)),
            MetricValue::Histogram(h) => {
                push(&format!("{name}.count"), h.count.to_string());
                push(&format!("{name}.p50_ms"), fmt_value(h.p50 as f64 / 1e6));
                push(&format!("{name}.p90_ms"), fmt_value(h.p90 as f64 / 1e6));
                push(&format!("{name}.p99_ms"), fmt_value(h.p99 as f64 / 1e6));
                push(&format!("{name}.max_ms"), fmt_value(h.max as f64 / 1e6));
            }
        }
    }
    out
}

/// Converts completed span records into store-ready tuple rows
/// `(time_us, duration_ms, "label#tN")`.
///
/// Only [`SpanKind::End`] records contribute (an End record alone
/// reconstructs the whole span); the row time is the span *end* in
/// microseconds and the value is the duration in milliseconds, so the
/// rows plug straight into a `gstore` tuple store where the `.gidx`
/// sidecar derives span-label, thread, and severity terms from the
/// `label#tN` naming convention. Rows come back sorted by time, ready
/// for in-order append.
pub fn span_tuple_rows(records: &[SpanRecord]) -> Vec<(u64, f64, String)> {
    let mut rows: Vec<(u64, f64, String)> = records
        .iter()
        .filter(|r| r.kind == SpanKind::End)
        .map(|r| {
            (
                r.t_ns / 1_000,
                r.duration_ns() as f64 / 1e6,
                format!("{}#t{}", r.label, r.tid),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
    rows
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Emits the snapshot in the Prometheus text exposition format.
/// Histograms are exported as summaries (quantiles in nanoseconds)
/// plus a `_max` gauge.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let n = prom_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", fmt_value(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {n} summary");
                let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
                let _ = writeln!(out, "{n}{{quantile=\"0.9\"}} {}", h.p90);
                let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
                let _ = writeln!(out, "{n}_sum {}", h.sum);
                let _ = writeln!(out, "{n}_count {}", h.count);
                let _ = writeln!(out, "# TYPE {n}_max gauge\n{n}_max {}", h.max);
            }
        }
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Emits the snapshot as one JSON object for scripting and CI
/// assertions (`gtool stats --json`). Every metric shares the single
/// `t_ms` timestamp captured by the caller — unlike per-struct
/// `to_tuples` calls, nothing in the document can carry a skewed
/// clock reading. Histograms keep nanosecond integer fields.
pub fn json_stats(snapshot: &Snapshot, now_ms: f64) -> String {
    let mut out = String::with_capacity(snapshot.len() * 64 + 64);
    let _ = write!(out, "{{\"t_ms\":{now_ms:.3},\"stats\":{{");
    for (i, (name, value)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(name, &mut out);
        out.push_str("\":");
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", fmt_value(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"histogram\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\
                     \"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                    h.count,
                    h.mean() as u64,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                );
            }
        }
    }
    out.push_str("}}");
    out
}

/// Renders the snapshot as an aligned human-readable table (the
/// `gtool stats` default view).
pub fn stats_table(snapshot: &Snapshot) -> String {
    let name_width = snapshot
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_width$}  {:<9}  value", "metric", "type");
    for (name, value) in snapshot {
        let (kind, rendered) = match value {
            MetricValue::Counter(v) => ("counter", v.to_string()),
            MetricValue::Gauge(v) => ("gauge", fmt_value(*v)),
            MetricValue::Histogram(h) => (
                "histogram",
                format!(
                    "count={} mean={} p50={} p90={} p99={} max={}",
                    h.count,
                    format_ns(h.mean() as u64),
                    format_ns(h.p50),
                    format_ns(h.p90),
                    format_ns(h.p99),
                    format_ns(h.max)
                ),
            ),
        };
        let _ = writeln!(out, "{name:<name_width$}  {kind:<9}  {rendered}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("net.tuples_in").add(42);
        r.gauge("scope.buffer.depth").set(3.0);
        let h = r.histogram("gel.tick.lateness_ns");
        for v in [1_000u64, 2_000, 500_000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn tuple_lines_golden() {
        let lines = tuple_lines(&sample_snapshot(), 1250.0);
        assert_eq!(
            lines,
            [
                "1250.000 3 gel.tick.lateness_ns.count",
                "1250.000 0.002048 gel.tick.lateness_ns.p50_ms",
                "1250.000 0.500000 gel.tick.lateness_ns.p90_ms",
                "1250.000 0.500000 gel.tick.lateness_ns.p99_ms",
                "1250.000 0.500000 gel.tick.lateness_ns.max_ms",
                "1250.000 42 net.tuples_in",
                "1250.000 3 scope.buffer.depth",
            ]
        );
    }

    #[test]
    fn prometheus_golden() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE net_tuples_in counter\nnet_tuples_in 42\n"));
        assert!(text.contains("# TYPE scope_buffer_depth gauge\nscope_buffer_depth 3\n"));
        assert!(text.contains("# TYPE gel_tick_lateness_ns summary"));
        assert!(text.contains("gel_tick_lateness_ns{quantile=\"0.99\"} 500000"));
        assert!(text.contains("gel_tick_lateness_ns_sum 503000"));
        assert!(text.contains("gel_tick_lateness_ns_count 3"));
        assert!(text.contains("gel_tick_lateness_ns_max 500000"));
    }

    #[test]
    fn table_lines_up() {
        let table = stats_table(&sample_snapshot());
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[1].contains("histogram"));
        assert!(lines[1].contains("max=500.00us"));
        assert!(lines[2].contains("counter"));
        assert!(lines[3].contains("gauge"));
    }

    #[test]
    fn json_stats_single_timestamp() {
        let json = json_stats(&sample_snapshot(), 1250.0);
        assert!(json.starts_with("{\"t_ms\":1250.000,\"stats\":{"));
        assert!(json.ends_with("}}"));
        assert!(json.contains("\"net.tuples_in\":{\"type\":\"counter\",\"value\":42}"));
        assert!(json.contains("\"scope.buffer.depth\":{\"type\":\"gauge\",\"value\":3}"));
        assert!(json.contains("\"gel.tick.lateness_ns\":{\"type\":\"histogram\",\"count\":3,"));
        assert!(json.contains("\"max_ns\":500000"));
        // Exactly one timestamp in the whole document.
        assert_eq!(json.matches("t_ms").count(), 1);
    }

    #[test]
    fn span_tuple_rows_ends_only_sorted() {
        use crate::span::{SpanKind, SpanRecord};
        let rec =
            |t_ns: u64, begin_ns: u64, label: &'static str, tid: u32, kind: SpanKind| SpanRecord {
                seq: 0,
                t_ns,
                begin_ns,
                span: 1,
                parent: 0,
                arg: 0,
                label,
                kind,
                tid,
            };
        let records = [
            rec(5_000_000, 2_000_000, "scope.tick", 1, SpanKind::End),
            rec(1_000_000, 1_000_000, "scope.tick", 1, SpanKind::Begin),
            rec(3_000_000, 1_500_000, "gel.iteration", 0, SpanKind::End),
            rec(2_000_000, 2_000_000, "marker", 0, SpanKind::Instant),
        ];
        let rows = span_tuple_rows(&records);
        assert_eq!(
            rows,
            [
                (3_000, 1.5, "gel.iteration#t0".to_string()),
                (5_000, 3.0, "scope.tick#t1".to_string()),
            ]
        );
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_700), "1.70us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn empty_snapshot_exports() {
        let empty: Snapshot = Vec::new();
        assert!(tuple_lines(&empty, 0.0).is_empty());
        assert!(prometheus_text(&empty).is_empty());
        assert_eq!(stats_table(&empty).lines().count(), 1);
    }
}
