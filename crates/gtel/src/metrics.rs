//! Atomic metric primitives: [`Counter`], [`Gauge`], and
//! [`LatencyHistogram`].
//!
//! All hot-path operations are single relaxed atomic RMWs — no locks,
//! no allocation — so components can record on every tick even in
//! release builds without perturbing the timing they are measuring.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, buffer
/// occupancy, ...). Stored as `f64` bits so gauge readings plug
/// straight into `SigSource::FUNC` signals.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets from an integer quantity.
    #[inline]
    pub fn set_count(&self, n: usize) {
        self.set(n as f64);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets in a [`LatencyHistogram`]; covers
/// the full `u64` nanosecond range (bucket `i` holds values whose
/// highest set bit is `i - 1`, i.e. `[2^(i-1), 2^i)`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log-scale histogram of `u64` samples (nanoseconds by
/// convention). Recording is two relaxed `fetch_add`s plus a
/// `fetch_max` — roughly counter cost — and snapshots never block
/// recorders.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Point-in-time digest of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Exclusive upper bound of bucket `i` (`2^i`, saturating at
/// `u64::MAX`). The bucket's values all lie strictly below it.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough digest: percentile estimates are
    /// bucket upper bounds clamped to the true recorded max, so
    /// `p50 <= p90 <= p99 <= max` always holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the sample at quantile q, 1-based.
            let rank = ((total as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

/// Which scalar to read out of a histogram when it is exposed as a
/// single-valued signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramStat {
    /// Sample count.
    Count,
    /// Arithmetic mean.
    Mean,
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// Maximum.
    Max,
}

impl HistogramStat {
    /// Reads the selected scalar from a snapshot.
    pub fn read(self, s: &HistogramSnapshot) -> f64 {
        match self {
            HistogramStat::Count => s.count as f64,
            HistogramStat::Mean => s.mean(),
            HistogramStat::P50 => s.p50 as f64,
            HistogramStat::P90 => s.p90 as f64,
            HistogramStat::P99 => s.p99 as f64,
            HistogramStat::Max => s.max as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_count(17);
        assert_eq!(g.get(), 17.0);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 2);
        assert_eq!(bucket_upper(2), 4);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::new();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p50 lands in the [2,4) bucket, clamped to its upper bound.
        assert_eq!(s.p50, 4);
        // p99 is the rank-10 sample: the 1000ns outlier, clamped to max.
        assert_eq!(s.p99, 1000);
    }

    #[test]
    fn single_sample_is_fully_clamped() {
        let h = LatencyHistogram::new();
        h.record(37);
        let s = h.snapshot();
        // Every percentile of a single sample is that sample.
        assert_eq!((s.p50, s.p90, s.p99, s.max), (37, 37, 37, 37));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn histogram_stat_readout() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        let s = h.snapshot();
        assert_eq!(HistogramStat::Count.read(&s), 2.0);
        assert_eq!(HistogramStat::Mean.read(&s), 15.0);
        assert_eq!(HistogramStat::Max.read(&s), 20.0);
        assert!(HistogramStat::P50.read(&s) <= HistogramStat::P99.read(&s));
    }
}
