//! The query expression language: a whitespace-joined AND of
//! predicates, small enough to type in a shell and total enough to
//! plan against the `.gidx` sidecar classes.
//!
//! ```text
//! name=scope.tick dur>2ms thread=3 within=postmortem-*
//! name=net.* val>=0.5 from=1.5s to=2s
//! severity=breach
//! ```
//!
//! | predicate      | meaning                                            |
//! |----------------|----------------------------------------------------|
//! | `name=PAT`     | signal name, or span base label (`PAT` may use `*`)|
//! | `thread=N`     | span recorded on thread `N` (`…#tN` suffix)        |
//! | `severity=breach` | deadline-breach tuples (`breach.…` names)       |
//! | `dur OP T`     | value compared as a duration (`ns`/`us`/`ms`/`s`)  |
//! | `val OP X`     | value compared as a raw number                     |
//! | `from=T`/`to=T`| inclusive time range (`ms` default, unit suffixes) |
//! | `within=PAT`   | restrict to sources whose label matches the glob   |
//!
//! `OP` is one of `>`, `>=`, `<`, `<=`, `=`. Span tuples store their
//! duration in milliseconds as the value, so `dur` is the natural
//! spelling for them and `val` for plain signals; both compile to the
//! same value predicate.

/// A comparison operator in a `dur`/`val` predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
}

impl Cmp {
    /// Does `value OP rhs` hold? (`NaN` never matches.)
    #[must_use]
    pub fn matches(self, value: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => value > rhs,
            Cmp::Ge => value >= rhs,
            Cmp::Lt => value < rhs,
            Cmp::Le => value <= rhs,
            Cmp::Eq => value == rhs,
        }
    }

    /// Could *any* value in `[min, max]` satisfy `value OP rhs`? The
    /// planner's block-pruning test: `false` proves the block holds no
    /// match and its payload is never read.
    #[must_use]
    pub fn feasible(self, min: f64, max: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => max > rhs,
            Cmp::Ge => max >= rhs,
            Cmp::Lt => min < rhs,
            Cmp::Le => min <= rhs,
            Cmp::Eq => min <= rhs && rhs <= max,
        }
    }
}

/// A parsed query: the AND of every present predicate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Query {
    /// Signal name or span base label; `*` wildcards allowed.
    pub name: Option<String>,
    /// Recording thread id (matches the `#tN` name suffix).
    pub thread: Option<u32>,
    /// Only deadline breaches (`breach.…` names).
    pub breach: bool,
    /// Value predicates (`dur`/`val`), all of which must hold.
    pub value: Vec<(Cmp, f64)>,
    /// Inclusive lower time bound, microseconds.
    pub from_us: Option<u64>,
    /// Inclusive upper time bound, microseconds.
    pub to_us: Option<u64>,
    /// Source-label glob (`within=postmortem-*`).
    pub within: Option<String>,
}

impl Query {
    /// True when no predicate is set (matches everything).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Query::default()
    }
}

/// Matches `pat` against `s`, where `*` matches any run of characters
/// (including none). Classic two-pointer glob with backtracking.
#[must_use]
pub fn glob_match(pat: &str, s: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Parses a number with an optional duration unit into milliseconds
/// (`ns`, `us`, `ms`, `s`; bare numbers are milliseconds).
fn parse_duration_ms(s: &str) -> Result<f64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1e-6)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e3)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad duration {s:?}"))
}

/// Parses a timestamp with an optional unit into microseconds (bare
/// numbers are milliseconds, matching the §3.3 tuple time column).
fn parse_time_us(s: &str) -> Result<u64, String> {
    let ms = parse_duration_ms(s)?;
    if ms < 0.0 {
        return Err(format!("negative time {s:?}"));
    }
    Ok((ms * 1_000.0).round() as u64)
}

fn parse_cmp(tok: &str) -> Option<(&str, Cmp, &str)> {
    for (op, cmp) in [
        (">=", Cmp::Ge),
        ("<=", Cmp::Le),
        (">", Cmp::Gt),
        ("<", Cmp::Lt),
        ("=", Cmp::Eq),
    ] {
        if let Some(at) = tok.find(op) {
            // Longest-op-first keeps `>=` from splitting as `>` + `=…`.
            return Some((&tok[..at], cmp, &tok[at + op.len()..]));
        }
    }
    None
}

/// Parses one expression string into a [`Query`].
///
/// # Errors
///
/// A human-readable message naming the offending token.
pub fn parse_query(expr: &str) -> Result<Query, String> {
    let mut q = Query::default();
    for tok in expr.split_whitespace() {
        let Some((key, cmp, rhs)) = parse_cmp(tok) else {
            return Err(format!("bad predicate {tok:?} (expected key=value)"));
        };
        if rhs.is_empty() {
            return Err(format!("empty value in {tok:?}"));
        }
        match (key, cmp) {
            ("name", Cmp::Eq) => q.name = Some(rhs.to_string()),
            ("thread", Cmp::Eq) => {
                q.thread = Some(
                    rhs.parse::<u32>()
                        .map_err(|_| format!("bad thread id {rhs:?} (expected an integer)"))?,
                );
            }
            ("severity", Cmp::Eq) => {
                if rhs != "breach" {
                    return Err(format!(
                        "unknown severity {rhs:?} (only \"breach\" is indexed)"
                    ));
                }
                q.breach = true;
            }
            ("within", Cmp::Eq) => q.within = Some(rhs.to_string()),
            ("from", Cmp::Eq) => q.from_us = Some(parse_time_us(rhs)?),
            ("to", Cmp::Eq) => q.to_us = Some(parse_time_us(rhs)?),
            ("dur", cmp) => q.value.push((cmp, parse_duration_ms(rhs)?)),
            ("val", cmp) => {
                q.value.push((
                    cmp,
                    rhs.parse::<f64>()
                        .map_err(|_| format!("bad value {rhs:?}"))?,
                ));
            }
            ("name" | "thread" | "severity" | "within" | "from" | "to", _) => {
                return Err(format!("{key} takes `=`, not a comparison ({tok:?})"));
            }
            _ => return Err(format!("unknown predicate key {key:?} in {tok:?}")),
        }
    }
    if let (Some(a), Some(b)) = (q.from_us, q.to_us) {
        if a > b {
            return Err(format!("empty time range: from={a}us > to={b}us"));
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let q = parse_query("name=scope.tick dur>2ms thread=3 within=postmortem-*").unwrap();
        assert_eq!(q.name.as_deref(), Some("scope.tick"));
        assert_eq!(q.thread, Some(3));
        assert_eq!(q.value, vec![(Cmp::Gt, 2.0)]);
        assert_eq!(q.within.as_deref(), Some("postmortem-*"));
        assert!(!q.breach);
    }

    #[test]
    fn duration_units_normalise_to_ms() {
        let q = parse_query("dur>1500us dur<=2s dur>=3 val<7.5").unwrap();
        assert_eq!(
            q.value,
            vec![
                (Cmp::Gt, 1.5),
                (Cmp::Le, 2000.0),
                (Cmp::Ge, 3.0),
                (Cmp::Lt, 7.5),
            ]
        );
    }

    #[test]
    fn time_range_units() {
        let q = parse_query("from=1.5s to=2500").unwrap();
        assert_eq!(q.from_us, Some(1_500_000));
        assert_eq!(q.to_us, Some(2_500_000));
        assert!(parse_query("from=2s to=1s").is_err());
    }

    #[test]
    fn severity_is_breach_only() {
        assert!(parse_query("severity=breach").unwrap().breach);
        assert!(parse_query("severity=warn").is_err());
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(parse_query("frobnicate=1").is_err());
        assert!(parse_query("name>x").is_err());
        assert!(parse_query("thread=abc").is_err());
        assert!(parse_query("dur>").is_err());
        assert!(parse_query("justaword").is_err());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("scope.*", "scope.tick"));
        assert!(glob_match("*#t3", "scope.tick#t3"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("scope.*", "net.poll"));
        assert!(!glob_match("a*b", "a-b-c"));
    }

    #[test]
    fn feasible_is_conservative() {
        assert!(Cmp::Gt.feasible(0.0, 5.0, 2.0));
        assert!(!Cmp::Gt.feasible(0.0, 2.0, 2.0));
        assert!(Cmp::Lt.feasible(1.0, 9.0, 2.0));
        assert!(!Cmp::Lt.feasible(2.0, 9.0, 2.0));
        assert!(Cmp::Eq.feasible(1.0, 3.0, 2.0));
        assert!(!Cmp::Eq.feasible(1.0, 3.0, 4.0));
        // An all-NaN block carries inverted (+inf, -inf) bounds and is
        // never feasible — NaN values cannot match any comparison.
        assert!(!Cmp::Gt.feasible(f64::INFINITY, f64::NEG_INFINITY, 0.0));
    }
}
