//! The `timeline` merge view: spans, tuples, and deadline breaches
//! from every source of a recording, interleaved around an anchor.
//!
//! Post-mortem bundles carry two timebases: `stats/` tuples are
//! stamped with pipeline loop time, while `spans/` records carry
//! monotonic wall-clock time. Absolute timestamps from the two can't
//! be compared directly — but the *trigger moment* is the same event
//! in both. By default each source is therefore **tail-aligned**: its
//! last event is taken as "the moment the recorder fired" and every
//! event is shown relative to that (`-12.500ms` = 12.5 ms before the
//! trigger). Passing an explicit anchor switches to absolute mode for
//! stores where one clock rules all sources.

use std::fmt::Write as _;

use gel::TimeStamp;
use gscope::{Result, TupleSource};
use gstore::{load_or_rebuild_index, split_thread, StoreReader};

use crate::engine::{QueryEngine, SourceRef};
use crate::expr::glob_match;

/// What kind of record a timeline row is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A plain telemetry/signal sample.
    Tuple,
    /// A completed span (`label#tN`, value = duration ms).
    Span,
    /// A deadline breach (`breach.<label>`, value = overrun ms).
    Breach,
}

impl EventKind {
    fn classify(name: &str) -> EventKind {
        if name.starts_with("breach.") {
            EventKind::Breach
        } else if split_thread(name).is_some() {
            EventKind::Span
        } else {
            EventKind::Tuple
        }
    }

    fn tag(self) -> &'static str {
        match self {
            EventKind::Tuple => "tuple",
            EventKind::Span => "span",
            EventKind::Breach => "BREACH",
        }
    }
}

/// One merged timeline row.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Source label the event came from.
    pub source: String,
    /// Time relative to the source's anchor, microseconds (negative =
    /// before the anchor).
    pub rel_us: i64,
    /// Absolute event time, microseconds (source-local clock).
    pub time_us: u64,
    /// Signal name.
    pub name: String,
    /// Sample value (durations are in milliseconds).
    pub value: f64,
    /// Row classification, derived from the name.
    pub kind: EventKind,
}

/// Options for [`build_timeline`].
#[derive(Clone, Debug)]
pub struct TimelineOptions {
    /// Half-width of the window around the anchor, milliseconds.
    pub window_ms: f64,
    /// Absolute anchor (milliseconds on the sources' clock). `None`
    /// tail-aligns every source on its own last event.
    pub anchor_ms: Option<f64>,
    /// Source-label glob, like the query language's `within=`.
    pub within: Option<String>,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            window_ms: 100.0,
            anchor_ms: None,
            within: None,
        }
    }
}

/// Last frame time of a store, read from `.gidx` sidecars — segments
/// are only opened if a sidecar must be rebuilt.
fn source_end_us(source: &SourceRef) -> Option<u64> {
    let mut end = None;
    if let Ok(entries) = std::fs::read_dir(&source.path) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((_, 0)) = gstore::segment::parse_segment_file_name(name) {
                if let Ok((idx, _)) = load_or_rebuild_index(&entry.path()) {
                    end = end.max(idx.last_us());
                }
            }
        }
    }
    end
}

/// Merges every selected source's events inside the anchor window.
///
/// # Errors
///
/// [`gscope::ScopeError::Io`] from the underlying store readers.
pub fn build_timeline(engine: &QueryEngine, opts: &TimelineOptions) -> Result<Vec<TimelineEvent>> {
    let window_us = (opts.window_ms.max(0.0) * 1_000.0).round() as u64;
    let mut events = Vec::new();
    for source in engine.sources() {
        if let Some(pat) = &opts.within {
            if !glob_match(pat, &source.label) {
                continue;
            }
        }
        let anchor_us = match opts.anchor_ms {
            Some(ms) => (ms * 1_000.0).round() as u64,
            None => match source_end_us(source) {
                Some(end) => end,
                None => continue, // empty source: nothing to anchor on
            },
        };
        let t0 = anchor_us.saturating_sub(window_us);
        let t1 = anchor_us.saturating_add(window_us);
        let mut reader = StoreReader::open(&source.path)?;
        reader.seek(TimeStamp::from_micros(t0))?;
        while let Some(t) = reader.next_tuple()? {
            let time_us = t.time.as_micros();
            if time_us > t1 {
                break;
            }
            let name = t.name.as_deref().unwrap_or("").to_string();
            events.push(TimelineEvent {
                source: source.label.clone(),
                rel_us: time_us as i64 - anchor_us as i64,
                time_us,
                kind: EventKind::classify(&name),
                name,
                value: t.value,
            });
        }
    }
    events.sort_by(|a, b| {
        a.rel_us
            .cmp(&b.rel_us)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(events)
}

fn fmt_value(kind: EventKind, value: f64) -> String {
    match kind {
        EventKind::Span | EventKind::Breach => format!("{value:.3}ms"),
        EventKind::Tuple => {
            if value == value.trunc() && value.abs() < 1e15 {
                format!("{}", value as i64)
            } else {
                format!("{value:.6}")
            }
        }
    }
}

/// Renders merged events as an aligned text table (one row per
/// event, times relative to the anchor).
#[must_use]
pub fn format_timeline(events: &[TimelineEvent]) -> String {
    let src_w = events
        .iter()
        .map(|e| e.source.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let name_w = events
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12}  {:<src_w$}  {:<6}  {:<name_w$}  value",
        "t-anchor", "source", "kind", "name"
    );
    for e in events {
        let _ = writeln!(
            out,
            "{:>+10.3}ms  {:<src_w$}  {:<6}  {:<name_w$}  {}",
            e.rel_us as f64 / 1_000.0,
            e.source,
            e.kind.tag(),
            e.name,
            fmt_value(e.kind, e.value),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_naming() {
        assert_eq!(EventKind::classify("scope.tick#t3"), EventKind::Span);
        assert_eq!(EventKind::classify("breach.scope.tick"), EventKind::Breach);
        assert_eq!(EventKind::classify("net.tuples_in"), EventKind::Tuple);
        assert_eq!(EventKind::classify(""), EventKind::Tuple);
    }

    #[test]
    fn formatting_is_aligned_and_signed() {
        let events = vec![
            TimelineEvent {
                source: "spans".into(),
                rel_us: -2_500,
                time_us: 97_500,
                name: "scope.tick#t0".into(),
                value: 1.25,
                kind: EventKind::Span,
            },
            TimelineEvent {
                source: "spans".into(),
                rel_us: 0,
                time_us: 100_000,
                name: "breach.scope.tick".into(),
                value: 4.0,
                kind: EventKind::Breach,
            },
        ];
        let text = format_timeline(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("-2.500ms"));
        assert!(lines[1].contains("1.250ms"));
        assert!(lines[2].contains("+0.000ms"));
        assert!(lines[2].contains("BREACH"));
    }
}
