//! The index-aware query planner.
//!
//! Planning order — each stage can only *shrink* the work of the next:
//!
//! 1. **Sources**: discover stores and post-mortem bundles under the
//!    root; `within=` drops whole sources by label.
//! 2. **Index**: per tier-0 segment, read the `.gidx` sidecar (a probe
//!    is one sidecar read plus one `stat` of the segment — the segment
//!    file itself stays closed). Missing/stale/corrupt sidecars are
//!    rebuilt once and re-persisted.
//! 3. **Postings**: look up the posting set of every class predicate
//!    (`name` → Signal ∪ Span terms, `thread` → Thread, `severity` →
//!    Severity) and intersect by block offset. An empty intersection
//!    skips the segment without opening it.
//! 4. **Pruning**: drop surviving blocks whose `[first_us, last_us]`
//!    misses the time range or whose `[min, max]` value envelope makes
//!    every value predicate infeasible.
//! 5. **Decode**: only now open the segment, seek straight to each
//!    surviving block via its header offset, and run every decoded
//!    frame through the exact same [`frame_matches`] filter a linear
//!    replay would use.
//!
//! [`QueryStats`] counts each stage, so tests can assert the negative
//! space: segments without a match are *never opened*.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gscope::{Result, ScopeError, TupleSource};
use gstore::segment::{
    decode_records, parse_segment_file_name, read_block_header_at, read_block_payload,
};
use gstore::{
    load_or_rebuild_index, probe_index, split_thread, IndexProbe, StoreReader, TermClass,
};

use crate::expr::{glob_match, Query};

/// One searchable tuple store under the query root.
#[derive(Clone, Debug)]
pub struct SourceRef {
    /// Display label (`store`, `postmortem-0003/spans`, …) — the
    /// string `within=` globs against.
    pub label: String,
    /// The store directory.
    pub path: PathBuf,
}

/// One matching tuple.
#[derive(Clone, Debug)]
pub struct Match {
    /// Label of the source the tuple came from.
    pub source: String,
    /// Sample time, microseconds.
    pub time_us: u64,
    /// Sample value.
    pub value: f64,
    /// Signal name (`None` for unnamed streams).
    pub name: Option<Arc<str>>,
}

impl PartialEq for Match {
    fn eq(&self, other: &Self) -> bool {
        // Bit-exact value comparison: the planner/reference
        // equivalence property must not be blurred by NaN != NaN or
        // -0.0 == 0.0.
        self.source == other.source
            && self.time_us == other.time_us
            && self.value.to_bits() == other.value.to_bits()
            && self.name.as_deref() == other.name.as_deref()
    }
}

/// Work counters for one query — the proof of what was *not* done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Sources searched (after `within=` filtering).
    pub sources: u64,
    /// Tier-0 segments considered across those sources.
    pub segments_total: u64,
    /// Segments whose data file was opened for block reads.
    pub segments_opened: u64,
    /// Segments dismissed from the index alone (file never opened).
    pub segments_skipped: u64,
    /// Sidecars that were missing/stale/corrupt and rebuilt.
    pub indexes_rebuilt: u64,
    /// Blocks whose payload was read and decoded.
    pub blocks_decoded: u64,
    /// Candidate blocks pruned by time/value envelopes.
    pub blocks_pruned: u64,
    /// Frames decoded out of opened blocks.
    pub frames_decoded: u64,
    /// Frames that matched every predicate.
    pub frames_matched: u64,
}

/// Matches plus the work it took to find them.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Matching tuples in (source, time) order.
    pub matches: Vec<Match>,
    /// Planner work counters.
    pub stats: QueryStats,
}

/// Conservative envelope for frames that could match every class
/// predicate inside one block.
#[derive(Clone, Copy, Debug)]
struct Bounds {
    first_us: u64,
    last_us: u64,
    min_v: f64,
    max_v: f64,
}

/// Does one frame satisfy every predicate of `q` (ignoring `within`,
/// which selects sources, not frames)? This single function is both
/// the planner's last stage and the linear reference filter — they
/// cannot disagree on semantics, only on how much work finding the
/// frames took.
#[must_use]
pub fn frame_matches(q: &Query, time_us: u64, value: f64, name: Option<&str>) -> bool {
    if let Some(t0) = q.from_us {
        if time_us < t0 {
            return false;
        }
    }
    if let Some(t1) = q.to_us {
        if time_us > t1 {
            return false;
        }
    }
    let n = name.unwrap_or("");
    if let Some(pat) = &q.name {
        // A query names either the full signal or a span's base label
        // (`scope.tick` finds `scope.tick#t3`).
        let base = split_thread(n).map(|(base, _)| base);
        if !glob_match(pat, n) && !base.is_some_and(|b| glob_match(pat, b)) {
            return false;
        }
    }
    if let Some(tid) = q.thread {
        match split_thread(n) {
            Some((_, t)) if t == tid => {}
            _ => return false,
        }
    }
    if q.breach && !n.starts_with("breach.") {
        return false;
    }
    q.value.iter().all(|(cmp, rhs)| cmp.matches(value, *rhs))
}

/// Lists a store's tier-`tier` segments in sequence (= time) order.
/// Tier 0 is the raw log; tiers above it are glod min/max envelope
/// pyramids, searchable with the same planner.
fn tier_segments(dir: &Path, tier: u16) -> std::io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((seq, t)) = parse_segment_file_name(name) {
            if t == tier {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

fn dir_has_segments(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .and_then(parse_segment_file_name)
                .is_some()
        })
    })
}

/// A query root: a plain store, a single post-mortem bundle, or a
/// flight directory holding several bundles (any mix).
#[derive(Debug)]
pub struct QueryEngine {
    sources: Vec<SourceRef>,
}

impl QueryEngine {
    /// Discovers every searchable source under `root`:
    ///
    /// * `.gseg` files directly under `root` → source `store`;
    /// * `root` itself a bundle (`meta.txt`) → `stats` and `spans`;
    /// * `postmortem-NNNN/` children → `postmortem-NNNN/stats` and
    ///   `postmortem-NNNN/spans`.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] when `root` cannot be listed or holds no
    /// recognisable store or bundle.
    pub fn open(root: impl AsRef<Path>) -> Result<QueryEngine> {
        let root = root.as_ref();
        let mut sources = Vec::new();
        let mut push = |label: String, path: PathBuf| {
            if dir_has_segments(&path) {
                sources.push(SourceRef { label, path });
            }
        };
        push("store".to_string(), root.to_path_buf());
        if root.join("meta.txt").is_file() {
            push("stats".to_string(), root.join("stats"));
            push("spans".to_string(), root.join("spans"));
        }
        let mut bundles: Vec<String> = std::fs::read_dir(root)
            .map_err(ScopeError::Io)?
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .filter(|n| n.starts_with("postmortem-"))
            .collect();
        bundles.sort();
        for bundle in bundles {
            push(format!("{bundle}/stats"), root.join(&bundle).join("stats"));
            push(format!("{bundle}/spans"), root.join(&bundle).join("spans"));
        }
        if sources.is_empty() {
            return Err(ScopeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{}: no store or post-mortem bundle found", root.display()),
            )));
        }
        Ok(QueryEngine { sources })
    }

    /// Every discovered source, in search order.
    #[must_use]
    pub fn sources(&self) -> &[SourceRef] {
        &self.sources
    }

    fn selected<'a>(&'a self, q: &'a Query) -> impl Iterator<Item = &'a SourceRef> {
        self.sources.iter().filter(move |s| {
            q.within
                .as_ref()
                .is_none_or(|pat| glob_match(pat, &s.label))
        })
    }

    /// Runs `q` through the index-aware planner.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on unreadable segments or sidecar rebuild
    /// failures; damaged blocks are skipped, not fatal.
    pub fn query(&self, q: &Query) -> Result<QueryOutcome> {
        self.query_tier(q, 0)
    }

    /// Runs `q` against one glod pyramid tier: tier 0 searches every
    /// raw frame; a coarser tier searches only its pre-decimated
    /// min/max envelope frames — same planner, a fraction of the
    /// blocks.
    ///
    /// # Errors
    ///
    /// Same as [`QueryEngine::query`].
    pub fn query_tier(&self, q: &Query, tier: u16) -> Result<QueryOutcome> {
        let mut stats = QueryStats::default();
        let mut matches = Vec::new();
        for source in self.selected(q) {
            stats.sources += 1;
            for seg in tier_segments(&source.path, tier).map_err(ScopeError::Io)? {
                stats.segments_total += 1;
                query_segment(&seg, &source.label, q, &mut stats, &mut matches)
                    .map_err(ScopeError::Io)?;
            }
        }
        Ok(QueryOutcome { matches, stats })
    }

    /// The reference implementation: replay every selected source
    /// linearly through [`StoreReader`] and filter with the same
    /// [`frame_matches`]. Exists so tests (and the benchmark) can
    /// prove the planner returns byte-identical results for a fraction
    /// of the work.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] from the underlying reader.
    pub fn linear_scan(&self, q: &Query) -> Result<QueryOutcome> {
        let mut stats = QueryStats::default();
        let mut matches = Vec::new();
        for source in self.selected(q) {
            stats.sources += 1;
            let mut reader = StoreReader::open(&source.path)?;
            while let Some(t) = reader.next_tuple()? {
                if frame_matches(q, t.time.as_micros(), t.value, t.name.as_deref()) {
                    stats.frames_matched += 1;
                    matches.push(Match {
                        source: source.label.clone(),
                        time_us: t.time.as_micros(),
                        value: t.value,
                        name: t.name,
                    });
                }
            }
            let r = reader.stats();
            stats.segments_total += r.segments_indexed;
            stats.segments_opened += r.segments_indexed;
            stats.blocks_decoded += r.blocks_decoded;
            stats.frames_decoded += r.frames_decoded;
        }
        Ok(QueryOutcome { matches, stats })
    }
}

/// Plans and (only if necessary) decodes one segment.
fn query_segment(
    seg: &Path,
    label: &str,
    q: &Query,
    stats: &mut QueryStats,
    out: &mut Vec<Match>,
) -> std::io::Result<()> {
    let idx = match probe_index(seg)? {
        IndexProbe::Valid(idx) => idx,
        IndexProbe::Missing | IndexProbe::Stale | IndexProbe::Corrupt => {
            stats.indexes_rebuilt += 1;
            load_or_rebuild_index(seg)?.0
        }
    };

    // One posting set per class predicate; a frame matching the whole
    // query must appear in every one of them.
    let mut sets: Vec<BTreeMap<u64, Bounds>> = Vec::new();
    if let Some(pat) = &q.name {
        let mut set = BTreeMap::new();
        if pat.contains('*') {
            for class in [TermClass::Signal, TermClass::Span] {
                for term in idx.terms_of(class).filter(|t| glob_match(pat, &t.name)) {
                    union_postings(&mut set, term);
                }
            }
        } else {
            for class in [TermClass::Signal, TermClass::Span] {
                if let Some(term) = idx.find(class, pat) {
                    union_postings(&mut set, term);
                }
            }
        }
        sets.push(set);
    }
    if let Some(tid) = q.thread {
        let mut set = BTreeMap::new();
        if let Some(term) = idx.find(TermClass::Thread, &tid.to_string()) {
            union_postings(&mut set, term);
        }
        sets.push(set);
    }
    if q.breach {
        let mut set = BTreeMap::new();
        if let Some(term) = idx.find(TermClass::Severity, "breach") {
            union_postings(&mut set, term);
        }
        sets.push(set);
    }
    if sets.is_empty() {
        // No class predicate: every frame is a candidate. Each frame
        // carries exactly one Signal term, so the union over the
        // Signal class covers the whole segment.
        let mut set = BTreeMap::new();
        for term in idx.terms_of(TermClass::Signal) {
            union_postings(&mut set, term);
        }
        sets.push(set);
    }

    // Intersect by block offset, tightening the envelope: a matching
    // frame lies in every set, so its time/value sit inside the
    // *intersection* of the per-set envelopes.
    sets.sort_by_key(BTreeMap::len);
    let mut candidates = sets.remove(0);
    for set in &sets {
        candidates.retain(|offset, b| {
            let Some(o) = set.get(offset) else {
                return false;
            };
            b.first_us = b.first_us.max(o.first_us);
            b.last_us = b.last_us.min(o.last_us);
            b.min_v = b.min_v.max(o.min_v);
            b.max_v = b.max_v.min(o.max_v);
            true
        });
    }

    // Time / value envelope pruning.
    candidates.retain(|_, b| {
        let alive = q.from_us.is_none_or(|t0| b.last_us >= t0)
            && q.to_us.is_none_or(|t1| b.first_us <= t1)
            && q.value
                .iter()
                .all(|(cmp, rhs)| cmp.feasible(b.min_v, b.max_v, *rhs));
        if !alive {
            stats.blocks_pruned += 1;
        }
        alive
    });

    if candidates.is_empty() {
        stats.segments_skipped += 1;
        return Ok(());
    }

    // Only now does the segment file get opened; block offsets come
    // straight from the postings, so no header scan either.
    let mut file = File::open(seg)?;
    stats.segments_opened += 1;
    for &offset in candidates.keys() {
        let Some(meta) = read_block_header_at(&mut file, offset)? else {
            continue;
        };
        let Some(payload) = read_block_payload(&mut file, &meta)? else {
            continue; // CRC mismatch: same skip a linear replay does
        };
        let (frames, _) = decode_records(&payload, meta.first_us);
        stats.blocks_decoded += 1;
        stats.frames_decoded += frames.len() as u64;
        for f in frames {
            if frame_matches(q, f.time_us, f.value, f.name.as_deref()) {
                stats.frames_matched += 1;
                out.push(Match {
                    source: label.to_string(),
                    time_us: f.time_us,
                    value: f.value,
                    name: f.name,
                });
            }
        }
    }
    Ok(())
}

fn union_postings(set: &mut BTreeMap<u64, Bounds>, term: &gstore::TermEntry) {
    for p in &term.postings {
        set.entry(p.offset)
            .and_modify(|b| {
                b.first_us = b.first_us.min(p.first_us);
                b.last_us = b.last_us.max(p.last_us);
                b.min_v = b.min_v.min(p.min_value);
                b.max_v = b.max_v.max(p.max_value);
            })
            .or_insert(Bounds {
                first_us: p.first_us,
                last_us: p.last_us,
                min_v: p.min_value,
                max_v: p.max_value,
            });
    }
}
