//! gquery — index-aware search over gscope recordings.
//!
//! The paper's premise is that you find timing bugs by *looking at*
//! the data; at production volumes, looking starts with *searching*.
//! After a long run, a store directory holds gigabytes of sealed
//! segments and a handful of post-mortem bundles — and the only
//! question that matters is "show me the slow `scope.tick` spans
//! around the breach". Linear replay answers it by decoding
//! everything; gquery answers it from the `.gidx` sidecars
//! ([`gstore::index`]) that every sealed segment already carries:
//!
//! * [`expr`] — the predicate language (`name=scope.tick dur>2ms
//!   thread=3 within=postmortem-*`).
//! * [`engine`] — the planner: index → posting intersection →
//!   time/value envelope pruning → selective block decode, with
//!   [`QueryStats`] counting what was *skipped* so tests can prove
//!   non-matching segments are never opened.
//! * [`timeline`] — the merge view interleaving spans, tuples, and
//!   deadline breaches from every source around an anchor.
//!
//! The planner's last stage and the linear reference scan share one
//! [`frame_matches`] filter, so `query()` is byte-identical to a full
//! replay by construction — the property test in
//! `tests/planner_props.rs` holds it to that.

pub mod engine;
pub mod expr;
pub mod timeline;

pub use engine::{frame_matches, Match, QueryEngine, QueryOutcome, QueryStats, SourceRef};
pub use expr::{glob_match, parse_query, Cmp, Query};
pub use timeline::{build_timeline, format_timeline, EventKind, TimelineEvent, TimelineOptions};
