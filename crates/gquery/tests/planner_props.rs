//! Planner correctness properties (ISSUE 6 satellite 3):
//!
//! 1. For random stores and random queries, `query()` is
//!    **byte-identical** to a linear-replay reference filter —
//!    times to the microsecond, values to the bit, names exactly.
//! 2. The planner's stats prove the negative space: segments with no
//!    candidate postings are *never opened*, and a query for a name
//!    the store has never seen opens nothing at all.

use gel::TimeStamp;
use gquery::{parse_query, Query, QueryEngine};
use gstore::{Store, StoreConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gquery-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> StoreConfig {
    StoreConfig {
        block_bytes: 256,
        block_frames: 16,
        segment_bytes: 2048,
        ..StoreConfig::default()
    }
}

const NAMES: [Option<&str>; 6] = [
    None,
    Some("pulse"),
    Some("net.rx"),
    Some("scope.tick#t0"),
    Some("scope.tick#t1"),
    Some("breach.scope.tick"),
];

fn random_store(dir: &PathBuf, rng: &mut StdRng, n: usize) {
    let mut store = Store::open(dir, small_cfg()).unwrap();
    let mut time_us = 0u64;
    for _ in 0..n {
        time_us += rng.gen_range(0u64..4_000);
        let value = if rng.gen_bool(0.05) {
            f64::NAN
        } else {
            (rng.gen_range(-8_000i64..8_000) as f64) / 16.0
        };
        let name = NAMES[rng.gen_range(0usize..NAMES.len())];
        store
            .append(TimeStamp::from_micros(time_us), value, name)
            .unwrap();
    }
    store.close().unwrap();
}

fn random_query(rng: &mut StdRng) -> Query {
    let mut expr = String::new();
    if rng.gen_bool(0.7) {
        let pat = [
            "pulse",
            "net.rx",
            "scope.tick",
            "scope.*",
            "*",
            "breach.*",
            "scope.tick#t0",
        ][rng.gen_range(0usize..7)];
        expr.push_str(&format!("name={pat} "));
    }
    if rng.gen_bool(0.3) {
        expr.push_str(&format!("thread={} ", rng.gen_range(0u32..3)));
    }
    if rng.gen_bool(0.2) {
        expr.push_str("severity=breach ");
    }
    if rng.gen_bool(0.5) {
        let op = [">", ">=", "<", "<="][rng.gen_range(0usize..4)];
        let rhs = rng.gen_range(-500i64..500);
        expr.push_str(&format!("val{op}{rhs} "));
    }
    if rng.gen_bool(0.3) {
        let from = rng.gen_range(0u64..400);
        let to = from + rng.gen_range(0u64..800);
        expr.push_str(&format!("from={from} to={to} "));
    }
    parse_query(&expr).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Core equivalence: planner output == linear reference, bit for
    /// bit, and the planner never decodes more frames than the replay.
    #[test]
    fn planner_matches_linear_reference(
        seed in 0u64..1_000_000,
        n in 60usize..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6771);
        let dir = tmp_dir(&format!("equiv-{seed}-{n}"));
        random_store(&dir, &mut rng, n);
        let engine = QueryEngine::open(&dir).unwrap();
        for _ in 0..4 {
            let q = random_query(&mut rng);
            let planned = engine.query(&q).unwrap();
            let reference = engine.linear_scan(&q).unwrap();
            prop_assert_eq!(&planned.matches, &reference.matches);
            prop_assert_eq!(
                planned.stats.frames_matched,
                reference.stats.frames_matched
            );
            prop_assert!(planned.stats.frames_decoded <= reference.stats.frames_decoded);
            prop_assert!(planned.stats.segments_opened <= planned.stats.segments_total);
            // Sidecars were sealed by close(): nothing to rebuild.
            prop_assert_eq!(planned.stats.indexes_rebuilt, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic negative-space check: signals live in disjoint
/// phases, so a query for the last phase's signal must leave the
/// earlier phases' segments unopened — and a query for a signal the
/// store never saw must open nothing.
#[test]
fn untouched_segments_stay_unopened() {
    let dir = tmp_dir("phases");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for (phase, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        for i in 0..400u64 {
            let t = (phase as u64) * 1_000_000 + i * 1_000;
            store
                .append(TimeStamp::from_micros(t), i as f64, Some(name))
                .unwrap();
        }
    }
    store.close().unwrap();

    let engine = QueryEngine::open(&dir).unwrap();
    let q = parse_query("name=gamma").unwrap();
    let planned = engine.query(&q).unwrap();
    let reference = engine.linear_scan(&q).unwrap();
    assert_eq!(planned.matches, reference.matches);
    assert_eq!(planned.matches.len(), 400);
    assert!(
        planned.stats.segments_total >= 3,
        "store should span several segments"
    );
    assert!(
        planned.stats.segments_opened < planned.stats.segments_total,
        "alpha/beta segments must stay unopened: opened {} of {}",
        planned.stats.segments_opened,
        planned.stats.segments_total
    );
    assert!(planned.stats.segments_skipped > 0);
    assert!(planned.stats.frames_decoded < reference.stats.frames_decoded);

    // A name the store never recorded: the index alone answers "no".
    let nothing = engine
        .query(&parse_query("name=nosuch.signal").unwrap())
        .unwrap();
    assert!(nothing.matches.is_empty());
    assert_eq!(nothing.stats.segments_opened, 0);
    assert_eq!(nothing.stats.blocks_decoded, 0);
    assert_eq!(nothing.stats.segments_skipped, nothing.stats.segments_total);
    std::fs::remove_dir_all(&dir).ok();
}

/// Value-envelope pruning: a monotone ramp means only the top blocks
/// can satisfy a high `val>` threshold; the rest are pruned from the
/// sidecar's min/max bounds without being decoded.
#[test]
fn value_envelopes_prune_blocks() {
    let dir = tmp_dir("ramp");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for i in 0..2_000u64 {
        store
            .append(TimeStamp::from_micros(i * 500), i as f64, Some("ramp"))
            .unwrap();
    }
    store.close().unwrap();

    let engine = QueryEngine::open(&dir).unwrap();
    let q = parse_query("name=ramp val>=1990").unwrap();
    let planned = engine.query(&q).unwrap();
    let reference = engine.linear_scan(&q).unwrap();
    assert_eq!(planned.matches, reference.matches);
    assert_eq!(planned.matches.len(), 10);
    assert!(planned.stats.blocks_pruned > 0);
    assert!(
        planned.stats.blocks_decoded < reference.stats.blocks_decoded / 10,
        "expected <10% of blocks decoded, got {} of {}",
        planned.stats.blocks_decoded,
        reference.stats.blocks_decoded
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Time-range pruning composes with the block-header seek design:
/// asking for a narrow window decodes a narrow band of blocks.
#[test]
fn time_ranges_prune_blocks() {
    let dir = tmp_dir("timerange");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for i in 0..2_000u64 {
        store
            .append(TimeStamp::from_micros(i * 1_000), (i % 7) as f64, Some("s"))
            .unwrap();
    }
    store.close().unwrap();

    let engine = QueryEngine::open(&dir).unwrap();
    // Bare from/to numbers are milliseconds: [1.0s, 1.05s].
    let q = parse_query("from=1000 to=1050").unwrap();
    let planned = engine.query(&q).unwrap();
    let reference = engine.linear_scan(&q).unwrap();
    assert_eq!(planned.matches, reference.matches);
    assert_eq!(planned.matches.len(), 51);
    assert!(planned.stats.frames_decoded < reference.stats.frames_decoded / 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// A store damaged after sealing still answers correctly: the stale
/// sidecar is rebuilt on first query and results match the reference.
#[test]
fn stale_sidecar_is_rebuilt_on_query() {
    let dir = tmp_dir("stale");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for i in 0..600u64 {
        store
            .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("sig"))
            .unwrap();
    }
    store.close().unwrap();

    // Damage every sidecar.
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "gidx") {
            std::fs::write(&p, b"garbage").unwrap();
        }
    }

    let engine = QueryEngine::open(&dir).unwrap();
    let q = parse_query("name=sig val>=590").unwrap();
    let planned = engine.query(&q).unwrap();
    let reference = engine.linear_scan(&q).unwrap();
    assert_eq!(planned.matches, reference.matches);
    assert_eq!(planned.matches.len(), 10);
    assert!(planned.stats.indexes_rebuilt > 0);

    // Rebuilt sidecars persist: the next query probes clean.
    let again = engine.query(&q).unwrap();
    assert_eq!(again.stats.indexes_rebuilt, 0);
    assert_eq!(again.matches, reference.matches);
    std::fs::remove_dir_all(&dir).ok();
}
