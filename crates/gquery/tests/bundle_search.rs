//! End-to-end over a real flight-recorder bundle: the moment
//! `trigger` publishes a post-mortem, it is searchable — `gquery`
//! finds the spans and breaches from the sidecars, and the timeline
//! view interleaves all three record kinds around the trigger.

use gel::TimeStamp;
use gquery::{
    build_timeline, format_timeline, parse_query, EventKind, QueryEngine, TimelineOptions,
};
use gstore::FlightRecorder;
use gtel::{DeadlineMiss, Registry, TraceLog};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gquery-bundle").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A trace whose spans sit in the first ~12 ms of the clock, so the
/// whole story fits one timeline window.
fn demo_log() -> TraceLog {
    let log = TraceLog::new(64);
    log.record_span_at("gel.iteration", 1, 0, 12_000_000);
    log.record_span_at("scope.tick", 1, 1_000_000, 9_000_000);
    log.record_span_at("render.frame", 1, 2_000_000, 5_000_000);
    log
}

fn write_bundle(dir: &PathBuf) -> PathBuf {
    let mut fr = FlightRecorder::new(dir, 4);
    let reg = Registry::shared();
    reg.counter("scope.ticks").add(7);
    reg.gauge("scope.buffer.depth").set(2.0);
    fr.note_stats(TimeStamp::from_micros(11_500), &reg);
    fr.note_stats(TimeStamp::from_micros(12_000), &reg);
    fr.note_breach(&DeadlineMiss {
        label: "scope.tick",
        t_ns: 9_000_000,
        duration_ns: 8_000_000,
        budget_ns: 4_000_000,
    });
    let info = fr
        .trigger("deadline miss: scope.tick", &demo_log())
        .unwrap()
        .unwrap();
    assert_eq!(info.breaches, 1);
    info.path
}

#[test]
fn fresh_bundle_is_immediately_searchable() {
    let flight = tmp_dir("searchable");
    write_bundle(&flight);

    // Open the *flight directory*: sources are discovered per bundle.
    let engine = QueryEngine::open(&flight).unwrap();
    let labels: Vec<&str> = engine.sources().iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, ["postmortem-0000/stats", "postmortem-0000/spans"]);

    // The CI smoke query: a span found by base label with a duration
    // predicate, answered from index + block headers.
    let q = parse_query("name=gel.iteration dur>0 within=postmortem-*").unwrap();
    let out = engine.query(&q).unwrap();
    assert_eq!(out.matches.len(), 1);
    let m = &out.matches[0];
    assert_eq!(m.source, "postmortem-0000/spans");
    let span_name = m.name.as_deref().unwrap().to_string();
    assert!(span_name.starts_with("gel.iteration#t"));
    assert_eq!(m.time_us, 12_000);
    assert!((m.value - 12.0).abs() < 1e-9);
    assert_eq!(
        out.stats.indexes_rebuilt, 0,
        "bundle stores seal their sidecars"
    );

    // Breach class + thread predicates work on the same bundle.
    let breaches = engine
        .query(&parse_query("severity=breach").unwrap())
        .unwrap();
    assert_eq!(breaches.matches.len(), 1);
    assert_eq!(
        breaches.matches[0].name.as_deref(),
        Some("breach.scope.tick")
    );
    let tid = gstore::split_thread(&span_name).unwrap().1;
    let by_thread = engine
        .query(&parse_query(&format!("thread={tid} dur>5ms")).unwrap())
        .unwrap();
    assert!(!by_thread.matches.is_empty());
    let suffix = format!("#t{tid}");
    assert!(by_thread.matches.iter().all(|m| m
        .name
        .as_deref()
        .is_some_and(|n| n.ends_with(&suffix))
        && m.value > 5.0));

    // Equivalence holds on bundles too.
    let reference = engine.linear_scan(&q).unwrap();
    assert_eq!(out.matches, reference.matches);
    std::fs::remove_dir_all(&flight).ok();
}

#[test]
fn bundle_root_and_within_filtering() {
    let flight = tmp_dir("within");
    let bundle = write_bundle(&flight);

    // Opening the bundle directory itself also works.
    let engine = QueryEngine::open(&bundle).unwrap();
    let labels: Vec<&str> = engine.sources().iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, ["stats", "spans"]);

    // `within=` restricts sources before any segment is considered.
    let q = parse_query("name=* within=spans").unwrap();
    let out = engine.query(&q).unwrap();
    assert!(out.matches.iter().all(|m| m.source == "spans"));
    assert_eq!(out.stats.sources, 1);

    let none = engine
        .query(&parse_query("name=* within=nomatch-*").unwrap())
        .unwrap();
    assert_eq!(none.stats.sources, 0);
    assert!(none.matches.is_empty());
    std::fs::remove_dir_all(&flight).ok();
}

#[test]
fn timeline_interleaves_spans_stats_and_breaches() {
    let flight = tmp_dir("timeline");
    write_bundle(&flight);

    let engine = QueryEngine::open(&flight).unwrap();
    let events = build_timeline(&engine, &TimelineOptions::default()).unwrap();
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| e.kind == EventKind::Span));
    assert!(events.iter().any(|e| e.kind == EventKind::Tuple));
    assert!(events.iter().any(|e| e.kind == EventKind::Breach));
    // Tail alignment: nothing is after its source's anchor.
    assert!(events.iter().all(|e| e.rel_us <= 0));
    // Events arrive sorted by relative time.
    assert!(events.windows(2).all(|w| w[0].rel_us <= w[1].rel_us));

    let text = format_timeline(&events);
    assert!(text.contains("BREACH"));
    assert!(text.contains("scope.tick#t"));
    assert!(text.contains("scope.buffer.depth"));

    // An explicit anchor switches to absolute time: a window around
    // t=9ms still catches the breach.
    let opts = TimelineOptions {
        window_ms: 2.0,
        anchor_ms: Some(9.0),
        within: Some("*spans".to_string()),
    };
    let around = build_timeline(&engine, &opts).unwrap();
    assert!(around.iter().any(|e| e.kind == EventKind::Breach));
    assert!(around.iter().all(|e| e.source.ends_with("spans")));
    std::fs::remove_dir_all(&flight).ok();
}
