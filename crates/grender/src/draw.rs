//! Drawing primitives: lines, rectangles, and grid strokes.

use gscope::Color;

use crate::framebuffer::Framebuffer;

/// Draws a horizontal line from `(x0, y)` to `(x1, y)` inclusive.
pub fn hline(fb: &mut Framebuffer, x0: i64, x1: i64, y: i64, c: Color) {
    let (a, b) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    for x in a..=b {
        fb.set(x, y, c);
    }
}

/// Draws a vertical line from `(x, y0)` to `(x, y1)` inclusive.
pub fn vline(fb: &mut Framebuffer, x: i64, y0: i64, y1: i64, c: Color) {
    let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
    for y in a..=b {
        fb.set(x, y, c);
    }
}

/// Draws a dashed horizontal line (grid strokes): `on` pixels drawn,
/// `off` skipped.
pub fn hline_dashed(fb: &mut Framebuffer, x0: i64, x1: i64, y: i64, c: Color, on: i64, off: i64) {
    let (a, b) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    let cycle = (on + off).max(1);
    for x in a..=b {
        if (x - a) % cycle < on {
            fb.set(x, y, c);
        }
    }
}

/// Draws a dashed vertical line.
pub fn vline_dashed(fb: &mut Framebuffer, x: i64, y0: i64, y1: i64, c: Color, on: i64, off: i64) {
    let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
    let cycle = (on + off).max(1);
    for y in a..=b {
        if (y - a) % cycle < on {
            fb.set(x, y, c);
        }
    }
}

/// Walks the pixels of a Bresenham line segment, endpoints inclusive,
/// calling `plot` for each. The pixel sequence is a pure function of
/// the endpoint deltas, so a translated segment visits translated
/// pixels — the invariant the incremental renderer's scroll blit
/// relies on.
pub fn line_pts(x0: i64, y0: i64, x1: i64, y1: i64, mut plot: impl FnMut(i64, i64)) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        plot(x, y);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Draws an arbitrary line segment with Bresenham's algorithm, endpoints
/// inclusive.
pub fn line(fb: &mut Framebuffer, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
    line_pts(x0, y0, x1, y1, |x, y| fb.set(x, y, c));
}

/// Fills the rectangle with corner `(x, y)` and the given size.
pub fn fill_rect(fb: &mut Framebuffer, x: i64, y: i64, w: i64, h: i64, c: Color) {
    for yy in y..y + h {
        hline(fb, x, x + w - 1, yy, c);
    }
}

/// Outlines the rectangle with corner `(x, y)` and the given size.
pub fn rect(fb: &mut Framebuffer, x: i64, y: i64, w: i64, h: i64, c: Color) {
    if w <= 0 || h <= 0 {
        return;
    }
    hline(fb, x, x + w - 1, y, c);
    hline(fb, x, x + w - 1, y + h - 1, c);
    vline(fb, x, y, y + h - 1, c);
    vline(fb, x + w - 1, y, y + h - 1, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hline_vline_paint_expected_pixels() {
        let mut fb = Framebuffer::new(8, 8);
        hline(&mut fb, 1, 5, 3, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 5);
        vline(&mut fb, 6, 0, 7, Color::CYAN);
        assert_eq!(fb.count_color(Color::CYAN), 8);
        // Reversed endpoints work too.
        hline(&mut fb, 5, 1, 4, Color::GREEN);
        assert_eq!(fb.count_color(Color::GREEN), 5);
    }

    #[test]
    fn bresenham_endpoints_and_connectivity() {
        let mut fb = Framebuffer::new(16, 16);
        line(&mut fb, 1, 2, 12, 9, Color::WHITE);
        assert_eq!(fb.get(1, 2), Some(Color::WHITE));
        assert_eq!(fb.get(12, 9), Some(Color::WHITE));
        // A Bresenham line on a 12-wide span paints exactly max(dx,dy)+1
        // pixels.
        assert_eq!(fb.count_color(Color::WHITE), 12);
    }

    #[test]
    fn steep_and_degenerate_lines() {
        let mut fb = Framebuffer::new(8, 8);
        line(&mut fb, 2, 7, 2, 1, Color::RED); // vertical, reversed
        assert_eq!(fb.count_color(Color::RED), 7);
        line(&mut fb, 5, 5, 5, 5, Color::GREEN); // single point
        assert_eq!(fb.count_color(Color::GREEN), 1);
    }

    #[test]
    fn rect_and_fill() {
        let mut fb = Framebuffer::new(10, 10);
        fill_rect(&mut fb, 2, 3, 4, 2, Color::BLUE);
        assert_eq!(fb.count_color(Color::BLUE), 8);
        rect(&mut fb, 0, 0, 10, 10, Color::GRAY);
        assert_eq!(fb.count_color(Color::GRAY), 4 * 10 - 4);
        rect(&mut fb, 0, 0, 0, 5, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 0);
    }

    #[test]
    fn dashes_alternate() {
        let mut fb = Framebuffer::new(12, 3);
        hline_dashed(&mut fb, 0, 11, 1, Color::WHITE, 2, 2);
        assert_eq!(fb.get(0, 1), Some(Color::WHITE));
        assert_eq!(fb.get(1, 1), Some(Color::WHITE));
        assert_eq!(fb.get(2, 1), Some(Color::BLACK));
        assert_eq!(fb.get(3, 1), Some(Color::BLACK));
        assert_eq!(fb.get(4, 1), Some(Color::WHITE));
        assert_eq!(fb.count_color(Color::WHITE), 6);
        let mut fb = Framebuffer::new(3, 9);
        vline_dashed(&mut fb, 1, 0, 8, Color::WHITE, 1, 2);
        assert_eq!(fb.count_color(Color::WHITE), 3);
    }

    #[test]
    fn line_pts_is_translation_invariant() {
        let collect = |x0, y0, x1, y1| {
            let mut pts = Vec::new();
            line_pts(x0, y0, x1, y1, |x, y| pts.push((x, y)));
            pts
        };
        for &(x0, y0, x1, y1) in &[(0, 0, 9, 4), (3, 8, -2, 1), (5, 5, 5, 9), (7, 2, 1, 2)] {
            let base = collect(x0, y0, x1, y1);
            let shifted = collect(x0 - 3, y0 + 11, x1 - 3, y1 + 11);
            let back: Vec<_> = shifted.iter().map(|&(x, y)| (x + 3, y - 11)).collect();
            assert_eq!(base, back);
        }
    }

    #[test]
    fn clipping_is_safe() {
        let mut fb = Framebuffer::new(4, 4);
        line(&mut fb, -5, -5, 10, 10, Color::WHITE);
        fill_rect(&mut fb, -2, -2, 20, 20, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 16);
    }
}
