//! Output-surface abstraction.
//!
//! Widget drawing code (the `GtkScope` layout, the parameter windows)
//! targets the [`Surface`] trait, so every scene renders identically to
//! a raster [`Framebuffer`] (PPM snapshots, pixel tests) and to SVG —
//! the vector path covers §6's "printing of recorded data".

use std::fmt::Write as _;

use gscope::Color;

use crate::draw;
use crate::font;
use crate::framebuffer::Framebuffer;

/// A 2-D drawing target.
pub trait Surface {
    /// Surface width in pixels.
    fn width(&self) -> usize;
    /// Surface height in pixels.
    fn height(&self) -> usize;
    /// Fills the whole surface.
    fn clear(&mut self, c: Color);
    /// Draws a 1-px line segment, endpoints inclusive.
    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color);
    /// Draws a dashed horizontal grid stroke.
    fn hline_dashed(&mut self, x0: i64, x1: i64, y: i64, c: Color);
    /// Draws a dashed vertical grid stroke.
    fn vline_dashed(&mut self, x: i64, y0: i64, y1: i64, c: Color);
    /// Draws a rectangle (filled or outlined).
    fn rect(&mut self, x: i64, y: i64, w: i64, h: i64, c: Color, fill: bool);
    /// Draws 5×7 text with top-left at `(x, y)`; returns the end x.
    fn text(&mut self, x: i64, y: i64, s: &str, c: Color) -> i64;
    /// Draws a translucent vertical band (envelope shading).
    fn band(&mut self, x: i64, y0: i64, y1: i64, c: Color, alpha: f64);
    /// Draws a single point (sample dot).
    fn point(&mut self, x: i64, y: i64, c: Color);
}

/// [`Surface`] backed by a [`Framebuffer`].
pub struct RasterSurface {
    fb: Framebuffer,
}

impl RasterSurface {
    /// Creates a raster surface of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        RasterSurface {
            fb: Framebuffer::new(width, height),
        }
    }

    /// Wraps an existing framebuffer (e.g. a cached layer being
    /// redrawn in place) without reallocating.
    pub fn from_framebuffer(fb: Framebuffer) -> Self {
        RasterSurface { fb }
    }

    /// Consumes the surface, returning the framebuffer.
    pub fn into_framebuffer(self) -> Framebuffer {
        self.fb
    }

    /// Borrows the framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }
}

impl Surface for RasterSurface {
    fn width(&self) -> usize {
        self.fb.width()
    }

    fn height(&self) -> usize {
        self.fb.height()
    }

    fn clear(&mut self, c: Color) {
        self.fb.clear(c);
    }

    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        draw::line(&mut self.fb, x0, y0, x1, y1, c);
    }

    fn hline_dashed(&mut self, x0: i64, x1: i64, y: i64, c: Color) {
        draw::hline_dashed(&mut self.fb, x0, x1, y, c, 1, 3);
    }

    fn vline_dashed(&mut self, x: i64, y0: i64, y1: i64, c: Color) {
        draw::vline_dashed(&mut self.fb, x, y0, y1, c, 1, 3);
    }

    fn rect(&mut self, x: i64, y: i64, w: i64, h: i64, c: Color, fill: bool) {
        if fill {
            draw::fill_rect(&mut self.fb, x, y, w, h, c);
        } else {
            draw::rect(&mut self.fb, x, y, w, h, c);
        }
    }

    fn text(&mut self, x: i64, y: i64, s: &str, c: Color) -> i64 {
        font::draw_text(&mut self.fb, x, y, s, c)
    }

    fn band(&mut self, x: i64, y0: i64, y1: i64, c: Color, alpha: f64) {
        let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        for y in a..=b {
            self.fb.blend(x, y, c, alpha);
        }
    }

    fn point(&mut self, x: i64, y: i64, c: Color) {
        self.fb.set(x, y, c);
    }
}

fn css(c: Color) -> String {
    format!("#{:02x}{:02x}{:02x}", c.r, c.g, c.b)
}

/// [`Surface`] that accumulates an SVG document.
pub struct SvgSurface {
    width: usize,
    height: usize,
    body: String,
}

impl SvgSurface {
    /// Creates an SVG surface of the given nominal pixel size.
    pub fn new(width: usize, height: usize) -> Self {
        SvgSurface {
            width,
            height,
            body: String::new(),
        }
    }

    /// Finishes the document and returns the SVG text.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

impl Surface for SvgSurface {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }

    fn clear(&mut self, c: Color) {
        let _ = writeln!(
            self.body,
            "<rect x=\"0\" y=\"0\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
            self.width,
            self.height,
            css(c)
        );
    }

    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y1}\" stroke=\"{}\"/>",
            css(c)
        );
    }

    fn hline_dashed(&mut self, x0: i64, x1: i64, y: i64, c: Color) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x0}\" y1=\"{y}\" x2=\"{x1}\" y2=\"{y}\" stroke=\"{}\" \
             stroke-dasharray=\"1 3\"/>",
            css(c)
        );
    }

    fn vline_dashed(&mut self, x: i64, y0: i64, y1: i64, c: Color) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x}\" y1=\"{y0}\" x2=\"{x}\" y2=\"{y1}\" stroke=\"{}\" \
             stroke-dasharray=\"1 3\"/>",
            css(c)
        );
    }

    fn rect(&mut self, x: i64, y: i64, w: i64, h: i64, c: Color, fill: bool) {
        let style = if fill {
            format!("fill=\"{}\"", css(c))
        } else {
            format!("fill=\"none\" stroke=\"{}\"", css(c))
        };
        let _ = writeln!(
            self.body,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" {style}/>"
        );
    }

    fn text(&mut self, x: i64, y: i64, s: &str, c: Color) -> i64 {
        let escaped = s
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        // Match the raster font's 8 px line height; SVG anchors text at
        // the baseline, so shift down.
        let _ = writeln!(
            self.body,
            "<text x=\"{x}\" y=\"{}\" fill=\"{}\" font-family=\"monospace\" \
             font-size=\"8\">{escaped}</text>",
            y + 7,
            css(c)
        );
        x + font::text_width(s, 1)
    }

    fn band(&mut self, x: i64, y0: i64, y1: i64, c: Color, alpha: f64) {
        let (a, b) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        let _ = writeln!(
            self.body,
            "<rect x=\"{x}\" y=\"{a}\" width=\"1\" height=\"{}\" fill=\"{}\" \
             fill-opacity=\"{alpha:.2}\"/>",
            b - a + 1,
            css(c)
        );
    }

    fn point(&mut self, x: i64, y: i64, c: Color) {
        let _ = writeln!(
            self.body,
            "<rect x=\"{x}\" y=\"{y}\" width=\"1\" height=\"1\" fill=\"{}\"/>",
            css(c)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_surface_draws() {
        let mut s = RasterSurface::new(16, 16);
        s.clear(Color::BLACK);
        s.line(0, 0, 15, 15, Color::GREEN);
        s.rect(2, 2, 4, 4, Color::RED, true);
        s.point(10, 2, Color::WHITE);
        let fb = s.into_framebuffer();
        assert!(fb.count_color(Color::GREEN) >= 12);
        assert_eq!(fb.count_color(Color::RED), 16);
        assert_eq!(fb.get(10, 2), Some(Color::WHITE));
    }

    #[test]
    fn svg_surface_emits_elements() {
        let mut s = SvgSurface::new(100, 50);
        s.clear(Color::BLACK);
        s.line(0, 0, 10, 10, Color::GREEN);
        s.text(5, 5, "CWND <1>", Color::WHITE);
        s.band(3, 10, 20, Color::CYAN, 0.25);
        let doc = s.finish();
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>\n"));
        assert!(doc.contains("#00e640"), "green line color present");
        assert!(doc.contains("CWND &lt;1&gt;"), "text is escaped");
        assert!(doc.contains("fill-opacity=\"0.25\""));
        assert!(doc.contains("viewBox=\"0 0 100 50\""));
    }

    #[test]
    fn band_normalizes_order() {
        let mut s = SvgSurface::new(10, 30);
        s.band(1, 20, 5, Color::RED, 0.5);
        assert!(s.finish().contains("y=\"5\" width=\"1\" height=\"16\""));
    }

    #[test]
    fn text_advance_matches_font_metrics() {
        let mut r = RasterSurface::new(100, 20);
        let mut v = SvgSurface::new(100, 20);
        let end_r = r.text(4, 4, "abc", Color::WHITE);
        let end_v = v.text(4, 4, "abc", Color::WHITE);
        assert_eq!(end_r, end_v);
        assert_eq!(end_r, 4 + font::text_width("abc", 1));
    }
}
