//! An RGB framebuffer with PPM export.
//!
//! The original gscope drew on a GTK/Gnome canvas; this workspace
//! renders headlessly into a plain pixel buffer so scope scenes can be
//! generated deterministically in tests, benchmarks, and figure
//! regeneration, then written as binary PPM (readable by every image
//! tool).

use std::io::Write;
use std::path::Path;

use gscope::Color;

/// A width × height, 24-bit RGB pixel buffer.
///
/// The [`Default`] buffer is empty (0 × 0) — a placeholder until the
/// first real frame is rendered.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Framebuffer {
    /// Creates a black framebuffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            pixels: vec![0; width * height * 3],
        }
    }

    /// Returns the width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fills the whole buffer with one color.
    pub fn clear(&mut self, c: Color) {
        for px in self.pixels.chunks_exact_mut(3) {
            px[0] = c.r;
            px[1] = c.g;
            px[2] = c.b;
        }
    }

    /// Sets one pixel; coordinates outside the buffer are ignored
    /// (clipping happens here, so drawing code stays simple).
    pub fn set(&mut self, x: i64, y: i64, c: Color) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let i = (y as usize * self.width + x as usize) * 3;
        self.pixels[i] = c.r;
        self.pixels[i + 1] = c.g;
        self.pixels[i + 2] = c.b;
    }

    /// Returns the pixel at `(x, y)`, or `None` outside the buffer.
    pub fn get(&self, x: i64, y: i64) -> Option<Color> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return None;
        }
        let i = (y as usize * self.width + x as usize) * 3;
        Some(Color::new(
            self.pixels[i],
            self.pixels[i + 1],
            self.pixels[i + 2],
        ))
    }

    /// Blends `c` into the pixel with opacity `alpha` ∈ [0, 1] (used for
    /// envelope shading).
    pub fn blend(&mut self, x: i64, y: i64, c: Color, alpha: f64) {
        let Some(bg) = self.get(x, y) else { return };
        let a = alpha.clamp(0.0, 1.0);
        let mix = |f: u8, b: u8| -> u8 { (f as f64 * a + b as f64 * (1.0 - a)).round() as u8 };
        self.set(
            x,
            y,
            Color::new(mix(c.r, bg.r), mix(c.g, bg.g), mix(c.b, bg.b)),
        );
    }

    /// Raw RGB bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Scrolls the rectangle at `(x, y)` of size `w × h` left by `dx`
    /// pixels in place — one `copy_within` per row, no allocation. The
    /// rightmost `dx` columns of the rectangle keep their old content;
    /// the caller repaints them (the freshly exposed strip of a strip
    /// chart). Out-of-range rectangles are clamped; `dx >= w` is a
    /// no-op.
    pub fn scroll_left(&mut self, x: usize, y: usize, w: usize, h: usize, dx: usize) {
        let x = x.min(self.width);
        let w = w.min(self.width - x);
        if dx == 0 || dx >= w {
            return;
        }
        let row_bytes = self.width * 3;
        for row in y..(y + h).min(self.height) {
            let start = row * row_bytes + x * 3;
            let end = start + w * 3;
            self.pixels.copy_within(start + dx * 3..end, start);
        }
    }

    /// Copies the rectangle at `(x, y)` of size `w × h` from `src`
    /// (same position), clamped to both buffers — restoring a region
    /// from a cached layer.
    pub fn copy_rect_from(&mut self, src: &Framebuffer, x: usize, y: usize, w: usize, h: usize) {
        let x = x.min(self.width).min(src.width);
        let w = w.min(self.width - x).min(src.width - x);
        if w == 0 {
            return;
        }
        for row in y..(y + h).min(self.height).min(src.height) {
            let dst_start = (row * self.width + x) * 3;
            let src_start = (row * src.width + x) * 3;
            self.pixels[dst_start..dst_start + w * 3]
                .copy_from_slice(&src.pixels[src_start..src_start + w * 3]);
        }
    }

    /// Copies the entire contents of `src`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, src: &Framebuffer) {
        assert!(
            self.width == src.width && self.height == src.height,
            "copy_from requires equal dimensions"
        );
        self.pixels.copy_from_slice(&src.pixels);
    }

    /// Counts pixels exactly matching `c` (test helper).
    pub fn count_color(&self, c: Color) -> usize {
        self.pixels
            .chunks_exact(3)
            .filter(|p| p[0] == c.r && p[1] == c.g && p[2] == c.b)
            .count()
    }

    /// Parses a binary PPM (P6, maxval 255) back into a framebuffer —
    /// the inverse of [`Framebuffer::to_ppm`], used by tooling that
    /// recombines rendered figures.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for malformed input.
    pub fn from_ppm(bytes: &[u8]) -> Result<Self, String> {
        // Header: "P6" <ws> width <ws> height <ws> maxval <single ws>.
        let mut pos = 0usize;
        let mut token = |bytes: &[u8]| -> Result<Vec<u8>, String> {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                    pos += 1;
                }
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err("truncated PPM header".into());
            }
            Ok(bytes[start..pos].to_vec())
        };
        if token(bytes)? != b"P6" {
            return Err("not a binary PPM (P6) file".into());
        }
        let parse = |t: Vec<u8>| -> Result<usize, String> {
            std::str::from_utf8(&t)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| "bad number in PPM header".into())
        };
        let width = parse(token(bytes)?)?;
        let height = parse(token(bytes)?)?;
        let maxval = parse(token(bytes)?)?;
        if maxval != 255 {
            return Err(format!("unsupported PPM maxval {maxval}"));
        }
        if width == 0 || height == 0 {
            return Err("empty PPM".into());
        }
        // Exactly one whitespace byte separates header from pixels.
        pos += 1;
        let need = width * height * 3;
        let data = bytes
            .get(pos..pos + need)
            .ok_or_else(|| "PPM pixel data truncated".to_owned())?;
        Ok(Framebuffer {
            width,
            height,
            pixels: data.to_vec(),
        })
    }

    /// Serializes as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Writes a binary PPM to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_ppm<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.to_ppm())
    }

    /// Writes a binary PPM file at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_ppm())
    }
}

/// Stacks framebuffers vertically with a separator gap — how the
/// paper's side-by-side figures (4 above 5) and multi-scope sessions
/// ("one or more scopes", §4.4) compose into one image.
///
/// The result is as wide as the widest input; narrower rows are
/// left-aligned on `background`.
///
/// # Panics
///
/// Panics if `frames` is empty.
pub fn compose_vertical(frames: &[&Framebuffer], gap: usize, background: Color) -> Framebuffer {
    assert!(!frames.is_empty(), "nothing to compose");
    let width = frames.iter().map(|f| f.width()).max().expect("non-empty");
    let height: usize = frames.iter().map(|f| f.height()).sum::<usize>() + gap * (frames.len() - 1);
    let mut out = Framebuffer::new(width, height);
    out.clear(background);
    let mut y0 = 0usize;
    for frame in frames {
        for y in 0..frame.height() {
            for x in 0..frame.width() {
                if let Some(c) = frame.get(x as i64, y as i64) {
                    out.set(x as i64, (y0 + y) as i64, c);
                }
            }
        }
        y0 += frame.height() + gap;
    }
    out
}

impl std::fmt::Debug for Framebuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Framebuffer({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scroll_left_shifts_rows_and_keeps_outside_pixels() {
        let mut fb = Framebuffer::new(6, 4);
        // Paint a distinct color per column inside a 4x2 rect at (1, 1).
        for x in 1..5usize {
            let c = Color::new(x as u8 * 10, 0, 0);
            fb.set(x as i64, 1, c);
            fb.set(x as i64, 2, c);
        }
        fb.set(0, 1, Color::new(1, 2, 3)); // outside, must survive
        fb.set(5, 1, Color::new(4, 5, 6));
        fb.scroll_left(1, 1, 4, 2, 2);
        for y in [1i64, 2] {
            // Columns 1..3 now hold what was at 3..5.
            assert_eq!(fb.get(1, y), Some(Color::new(30, 0, 0)));
            assert_eq!(fb.get(2, y), Some(Color::new(40, 0, 0)));
            // Rightmost dx columns keep their old content.
            assert_eq!(fb.get(3, y), Some(Color::new(30, 0, 0)));
            assert_eq!(fb.get(4, y), Some(Color::new(40, 0, 0)));
        }
        assert_eq!(fb.get(0, 1), Some(Color::new(1, 2, 3)));
        assert_eq!(fb.get(5, 1), Some(Color::new(4, 5, 6)));
        assert_eq!(fb.get(1, 0), Some(Color::BLACK));
        assert_eq!(fb.get(1, 3), Some(Color::BLACK));
    }

    #[test]
    fn scroll_left_degenerate_cases_are_noops() {
        let mut fb = Framebuffer::new(4, 2);
        fb.set(2, 1, Color::WHITE);
        let before = fb.clone();
        fb.scroll_left(0, 0, 4, 2, 0); // dx == 0
        assert_eq!(fb, before);
        fb.scroll_left(0, 0, 4, 2, 4); // dx >= w
        assert_eq!(fb, before);
        fb.scroll_left(9, 0, 4, 2, 1); // x beyond buffer
        assert_eq!(fb, before);
    }

    #[test]
    fn copy_rect_from_restores_region_only() {
        let mut src = Framebuffer::new(5, 4);
        for y in 0..4 {
            for x in 0..5 {
                src.set(x, y, Color::new(x as u8, y as u8, 7));
            }
        }
        let mut dst = Framebuffer::new(5, 4);
        dst.copy_rect_from(&src, 1, 1, 2, 2);
        assert_eq!(dst.get(1, 1), Some(Color::new(1, 1, 7)));
        assert_eq!(dst.get(2, 2), Some(Color::new(2, 2, 7)));
        assert_eq!(dst.get(0, 1), Some(Color::BLACK));
        assert_eq!(dst.get(3, 1), Some(Color::BLACK));
        assert_eq!(dst.get(1, 0), Some(Color::BLACK));
        assert_eq!(dst.get(1, 3), Some(Color::BLACK));
        // Clamped overflow copies the intersection.
        dst.copy_rect_from(&src, 3, 3, 99, 99);
        assert_eq!(dst.get(4, 3), Some(Color::new(4, 3, 7)));
    }

    #[test]
    fn copy_from_replicates_whole_buffer() {
        let mut src = Framebuffer::new(3, 3);
        src.set(2, 2, Color::WHITE);
        let mut dst = Framebuffer::new(3, 3);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn new_buffer_is_black() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.count_color(Color::BLACK), 12);
        assert_eq!(fb.get(0, 0), Some(Color::BLACK));
    }

    #[test]
    fn set_get_round_trip() {
        let mut fb = Framebuffer::new(10, 10);
        fb.set(3, 7, Color::RED);
        assert_eq!(fb.get(3, 7), Some(Color::RED));
        assert_eq!(fb.get(7, 3), Some(Color::BLACK));
    }

    #[test]
    fn out_of_bounds_is_clipped() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set(-1, 0, Color::RED);
        fb.set(0, -1, Color::RED);
        fb.set(2, 0, Color::RED);
        fb.set(0, 2, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 0);
        assert_eq!(fb.get(5, 5), None);
        assert_eq!(fb.get(-1, 0), None);
    }

    #[test]
    fn clear_fills() {
        let mut fb = Framebuffer::new(3, 3);
        fb.clear(Color::CYAN);
        assert_eq!(fb.count_color(Color::CYAN), 9);
    }

    #[test]
    fn blend_mixes_colors() {
        let mut fb = Framebuffer::new(1, 1);
        fb.clear(Color::BLACK);
        fb.blend(0, 0, Color::new(200, 100, 50), 0.5);
        assert_eq!(fb.get(0, 0), Some(Color::new(100, 50, 25)));
        fb.clear(Color::WHITE);
        fb.blend(0, 0, Color::BLACK, 1.0);
        assert_eq!(fb.get(0, 0), Some(Color::BLACK));
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(5, 4);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = Framebuffer::new(0, 5);
    }

    #[test]
    fn ppm_round_trips_through_parser() {
        let mut fb = Framebuffer::new(7, 3);
        fb.set(2, 1, Color::RED);
        fb.set(6, 2, Color::CYAN);
        let back = Framebuffer::from_ppm(&fb.to_ppm()).unwrap();
        assert_eq!(back, fb);
    }

    #[test]
    fn ppm_parser_rejects_garbage() {
        assert!(Framebuffer::from_ppm(b"P5\n1 1\n255\nx").is_err());
        assert!(
            Framebuffer::from_ppm(b"P6\n2 2\n255\nxx").is_err(),
            "truncated"
        );
        assert!(Framebuffer::from_ppm(b"P6\n1 1\n65535\n??????").is_err());
        assert!(Framebuffer::from_ppm(b"").is_err());
    }

    #[test]
    fn compose_stacks_with_gap() {
        let mut a = Framebuffer::new(4, 2);
        a.clear(Color::RED);
        let mut b = Framebuffer::new(6, 3);
        b.clear(Color::CYAN);
        let out = compose_vertical(&[&a, &b], 2, Color::GRAY);
        assert_eq!(out.width(), 6);
        assert_eq!(out.height(), 2 + 2 + 3);
        assert_eq!(out.get(0, 0), Some(Color::RED));
        assert_eq!(out.get(4, 0), Some(Color::GRAY), "narrow row padded");
        assert_eq!(out.get(0, 2), Some(Color::GRAY), "gap row");
        assert_eq!(out.get(5, 4), Some(Color::CYAN));
        assert_eq!(out.count_color(Color::RED), 8);
        assert_eq!(out.count_color(Color::CYAN), 18);
    }

    #[test]
    #[should_panic(expected = "nothing to compose")]
    fn compose_rejects_empty() {
        let _ = compose_vertical(&[], 1, Color::BLACK);
    }
}
