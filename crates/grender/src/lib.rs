//! `grender` — headless rendering for the gscope workspace.
//!
//! The original gscope drew its `GtkScope` widget with GTK/Gnome on X11.
//! This crate replaces that stack with a from-scratch software
//! rasterizer so scope scenes render deterministically anywhere: in
//! tests, benchmarks, and the figure-regeneration binaries. Scenes can
//! be written as binary PPM (raster) or SVG (vector — covering §6's
//! "printing of recorded data" future work).
//!
//! * [`Framebuffer`] + [`draw`] — pixels and primitives.
//! * [`font`] — an embedded 5×7 bitmap font.
//! * [`Surface`] — one drawing abstraction, two backends
//!   ([`RasterSurface`], [`SvgSurface`]).
//! * [`render_scope`] / [`render_scope_svg`] — the Figure 1/4/5 widget.
//! * [`FrameCache`] — incremental strip-chart rendering: scroll-blit
//!   damage tracking over a cached chrome layer, pixel-identical to the
//!   full redraw.
//! * [`render_signal_window`] — the Figure 2 signal-parameters window.
//! * [`render_param_window`] — the Figure 3 control-parameters window.
//! * [`render_spectrum`] — the §3.1 frequency-domain view.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use gel::VirtualClock;
//! use gscope::{IntVar, Scope, SigConfig};
//!
//! let mut scope = Scope::new("demo", 64, 48, Arc::new(VirtualClock::new()));
//! scope.add_signal("x", IntVar::new(5).into(), SigConfig::default()).unwrap();
//! let fb = grender::render_scope(&scope);
//! assert!(fb.to_ppm().starts_with(b"P6"));
//! ```

pub mod draw;
pub mod font;

mod cache;
mod framebuffer;
mod surface;
mod view;
mod windows;

pub use cache::{FrameCache, RenderStats};
pub use framebuffer::{compose_vertical, Framebuffer};
pub use surface::{RasterSurface, Surface, SvgSurface};
pub use view::{draw_scope, render_scope, render_scope_svg, render_spectrum, widget_size};
pub use windows::{
    draw_param_window, draw_signal_window, param_window_height, render_param_window,
    render_param_window_svg, render_signal_window, render_signal_window_svg, signal_window_height,
};
