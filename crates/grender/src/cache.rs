//! Incremental strip-chart rendering (§5.3 of DESIGN.md).
//!
//! Strip-chart frames are almost identical to their predecessors: every
//! tick appends one sample per signal and the whole trace shifts left
//! by one column. [`FrameCache`] exploits that by keeping two
//! framebuffers between frames — the static *chrome* layer (title,
//! rulers, grid, readout strip, signal rows) and the last composited
//! *frame* — and advancing the frame with a scroll blit plus a repaint
//! of the freshly exposed column strip, instead of redrawing the full
//! widget.
//!
//! Incremental frames are **pixel-identical** to a cold
//! [`render_scope`](crate::render_scope): the full redraw stays the
//! correctness oracle (and the property tests in
//! `tests/render_incremental.rs` compare the two byte-for-byte). When a
//! frame is not eligible for the blit (settings changed, trigger or
//! envelope active, non-uniform sample arrival), the cache falls back
//! to redrawing content over the cached chrome, or to a full rebuild.

use std::fmt::Write as _;
use std::mem;

use gscope::{Color, LineMode, Scope, Trigger};

use crate::draw;
use crate::font;
use crate::framebuffer::Framebuffer;
use crate::surface::RasterSurface;
use crate::view::{self, TracePainter};

/// Counters describing which path each [`FrameCache::render`] call
/// took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Chrome rebuilt and content redrawn (settings/geometry changed).
    pub full: u64,
    /// Chrome reused, content redrawn (ineligible for the blit).
    pub content: u64,
    /// Scroll blit + strip repaint.
    pub incremental: u64,
    /// Nothing changed; the cached frame was returned untouched.
    pub cached: u64,
}

/// Everything that affects rendered pixels *except* the sample data.
/// While this key matches, the chrome layer is valid and the previous
/// frame differs from the next only by appended samples.
struct ChromeKey {
    w: usize,
    h: usize,
    cw: usize,
    ch: usize,
    name: String,
    mode: &'static str,
    zoom: f64,
    bias: f64,
    period_ms: u64,
    delay_ms: u64,
    trigger: Option<(String, Trigger)>,
    signals: Vec<SigKey>,
}

struct SigKey {
    name: String,
    color: Color,
    hidden: bool,
    show_value: bool,
    line: LineMode,
    min: f64,
    max: f64,
    envelope: bool,
}

impl ChromeKey {
    fn build(scope: &Scope, w: usize, h: usize) -> Self {
        ChromeKey {
            w,
            h,
            cw: scope.width(),
            ch: scope.height(),
            name: scope.name().to_owned(),
            mode: scope.mode_name(),
            zoom: scope.zoom(),
            bias: scope.bias(),
            period_ms: scope.period().as_millis(),
            delay_ms: scope.delay().as_millis(),
            trigger: scope.trigger().map(|(n, t)| (n.to_owned(), *t)),
            signals: scope
                .signals()
                .iter()
                .map(|sig| {
                    let c = sig.config();
                    SigKey {
                        name: sig.name().to_owned(),
                        color: sig.color(),
                        hidden: c.hidden,
                        show_value: c.show_value,
                        line: c.line,
                        min: c.min,
                        max: c.max,
                        envelope: scope.envelope(sig.name()).is_some(),
                    }
                })
                .collect(),
        }
    }

    /// Compares against the scope in place — no allocation on the
    /// per-frame hot path.
    fn matches(&self, scope: &Scope, w: usize, h: usize) -> bool {
        if self.w != w
            || self.h != h
            || self.cw != scope.width()
            || self.ch != scope.height()
            || self.name != scope.name()
            || self.mode != scope.mode_name()
            || self.zoom != scope.zoom()
            || self.bias != scope.bias()
            || self.period_ms != scope.period().as_millis()
            || self.delay_ms != scope.delay().as_millis()
        {
            return false;
        }
        let trig = scope.trigger();
        match (&self.trigger, trig) {
            (None, None) => {}
            (Some((kn, kt)), Some((n, t))) if kn == n && kt == t => {}
            _ => return false,
        }
        if self.signals.len() != scope.signals().len() {
            return false;
        }
        self.signals.iter().zip(scope.signals()).all(|(k, sig)| {
            let c = sig.config();
            k.name == sig.name()
                && k.color == sig.color()
                && k.hidden == c.hidden
                && k.show_value == c.show_value
                && k.line == c.line
                && k.min == c.min
                && k.max == c.max
                && k.envelope == scope.envelope(sig.name()).is_some()
        })
    }
}

/// Completes pending lateness-attribution chains: a frame carrying
/// these signals' newest columns just reached the framebuffer. Cached
/// (no-new-column) frames do not stamp — nothing new was shown.
fn note_render_columns(scope: &Scope) {
    let e2e = gtel::e2e();
    if !e2e.is_active() {
        return;
    }
    let now_us = gtel::fast_now_ns() / 1_000;
    for sig in scope.signals() {
        e2e.note_render(sig.name(), now_us);
    }
}

/// Persistent renderer state: cached chrome, the previous frame, and
/// the bookkeeping needed to decide whether the next frame can be
/// produced by a scroll blit.
#[derive(Default)]
pub struct FrameCache {
    chrome: Framebuffer,
    frame: Framebuffer,
    key: Option<ChromeKey>,
    /// `History::total_pushed` per signal at the cached frame.
    pushed: Vec<u64>,
    /// Display-window length per signal at the cached frame.
    lens: Vec<usize>,
    scratch: String,
    stats: RenderStats,
}

impl FrameCache {
    /// Creates an empty cache; the first [`render`](Self::render) is a
    /// full redraw.
    pub fn new() -> Self {
        Self::default()
    }

    /// Path counters accumulated so far.
    pub fn stats(&self) -> RenderStats {
        self.stats
    }

    /// Drops all cached state; the next frame is a full redraw.
    pub fn invalidate(&mut self) {
        self.key = None;
        self.pushed.clear();
        self.lens.clear();
    }

    /// Renders the scope, reusing as much of the previous frame as
    /// possible. The result is pixel-identical to
    /// [`render_scope`](crate::render_scope).
    pub fn render(&mut self, scope: &Scope) -> &Framebuffer {
        let frame_no =
            self.stats.full + self.stats.content + self.stats.incremental + self.stats.cached + 1;
        let _span = gtel::span("render.frame", frame_no);
        let (w, h) = view::widget_size(scope);
        let key_ok = self.key.as_ref().is_some_and(|k| k.matches(scope, w, h));
        if !key_ok {
            self.rebuild_chrome(scope, w, h);
            self.redraw_content(scope);
            self.record(scope);
            self.stats.full += 1;
            note_render_columns(scope);
            return &self.frame;
        }
        match self.delta(scope) {
            Some(0) => self.stats.cached += 1,
            Some(d) if self.blit_eligible(scope, d) => {
                self.advance(scope, d as usize);
                self.record(scope);
                self.stats.incremental += 1;
                note_render_columns(scope);
            }
            _ => {
                self.redraw_content(scope);
                self.record(scope);
                self.stats.content += 1;
                note_render_columns(scope);
            }
        }
        &self.frame
    }

    fn rebuild_chrome(&mut self, scope: &Scope, w: usize, h: usize) {
        if self.chrome.width() != w || self.chrome.height() != h {
            self.chrome = Framebuffer::new(w, h);
            self.frame = Framebuffer::new(w, h);
        }
        let fb = mem::take(&mut self.chrome);
        let mut s = RasterSurface::from_framebuffer(fb);
        view::draw_chrome(scope, &mut s, &mut self.scratch);
        self.chrome = s.into_framebuffer();
        self.key = Some(ChromeKey::build(scope, w, h));
    }

    /// Full content redraw over a copy of the cached chrome — the same
    /// pixels as `draw_scope` on a fresh surface, minus the chrome
    /// cost.
    fn redraw_content(&mut self, scope: &Scope) {
        self.frame.copy_from(&self.chrome);
        let fb = mem::take(&mut self.frame);
        let mut s = RasterSurface::from_framebuffer(fb);
        view::draw_content(scope, &mut s);
        view::draw_values(scope, &mut s, &mut self.scratch);
        self.frame = s.into_framebuffer();
    }

    fn record(&mut self, scope: &Scope) {
        self.pushed.clear();
        self.lens.clear();
        for sig in scope.signals() {
            self.pushed.push(sig.history().total_pushed());
            self.lens.push(scope.display_cols(sig.name()).len());
        }
    }

    /// The uniform number of samples appended to every signal since the
    /// cached frame, or `None` if signals advanced unevenly or a
    /// history was reset.
    fn delta(&self, scope: &Scope) -> Option<u64> {
        if self.pushed.len() != scope.signals().len() {
            return None;
        }
        let mut delta: Option<u64> = None;
        for (sig, &prev) in scope.signals().iter().zip(&self.pushed) {
            let d = sig.history().total_pushed().checked_sub(prev)?;
            match delta {
                None => delta = Some(d),
                Some(x) if x == d => {}
                _ => return None,
            }
        }
        Some(delta.unwrap_or(0))
    }

    /// Whether a `d`-column scroll blit reproduces the full redraw
    /// exactly. Requires untriggered right-aligned windows that either
    /// grew by `d` or stayed saturated at canvas width, no envelope
    /// shading, and trace colors distinguishable from the canvas
    /// background and grid.
    fn blit_eligible(&self, scope: &Scope, d: u64) -> bool {
        let cw = scope.width();
        if d as usize >= cw || scope.trigger().is_some() {
            return false;
        }
        for (i, sig) in scope.signals().iter().enumerate() {
            if scope.envelope(sig.name()).is_some() {
                return false;
            }
            if sig.config().hidden {
                continue;
            }
            let c = sig.color();
            if c == view::BG || c == view::GRID {
                return false;
            }
            let n = scope.display_cols(sig.name()).len();
            let grown = n == self.lens[i] + d as usize;
            let steady = n == self.lens[i] && n == cw;
            if !(grown || steady) {
                return false;
            }
        }
        true
    }

    /// The incremental path: scroll the canvas left by `d`, repair the
    /// (non-scrolling) grid analytically, erase evicted left-edge
    /// segments, repaint the freshly exposed right strip, and refresh
    /// the value readouts.
    fn advance(&mut self, scope: &Scope, d: usize) {
        let (canvas_x, canvas_y) = view::canvas_origin();
        let cw = scope.width() as i64;
        let ch = scope.height() as i64;
        let di = d as i64;
        // Everything left of `cs` is produced by the blit; [cs, cw) is
        // restored from chrome and repainted. `cs` starts one column
        // before the strictly-new columns because segments entering the
        // strip interleave with other signals' old pixels there, and
        // only a clear + in-order repaint reproduces the full redraw's
        // z-order.
        let cs = cw - di - 1;

        self.frame.scroll_left(
            canvas_x as usize,
            canvas_y as usize,
            cw as usize,
            ch as usize,
            d,
        );

        // Grid repair: chrome pixels do not scroll. A blitted pixel
        // that showed chrome (background or grid) before the shift must
        // show the chrome of its *new* position. Trace pixels are
        // untouched: eligibility guarantees trace colors differ from
        // both chrome colors, so `frame == chrome-at-old-position`
        // exactly identifies chrome-showing pixels. Candidates are the
        // only places where chrome differs under a d-shift: grid
        // pixels and their shifted images.
        {
            let (frame, chrome) = (&mut self.frame, &self.chrome);
            let mut repair = |x: i64, y: i64| {
                if frame.get(x, y) == chrome.get(x + di, y) {
                    if let Some(c) = chrome.get(x, y) {
                        frame.set(x, y, c);
                    }
                }
            };
            // Horizontal grid rows: dashes every DASH_CYCLE px.
            for y in view::hgrid_rows(canvas_y, ch) {
                let mut c = 0i64;
                while c < cs {
                    repair(canvas_x + c, y);
                    c += view::DASH_CYCLE;
                }
                let mut c = (view::DASH_CYCLE - di.rem_euclid(view::DASH_CYCLE))
                    .rem_euclid(view::DASH_CYCLE);
                while c < cs {
                    repair(canvas_x + c, y);
                    c += view::DASH_CYCLE;
                }
            }
            // Vertical grid columns and their shifted images.
            let mut gx = view::GRID_PX;
            while gx < cw {
                for c in [gx, gx - di] {
                    if (0..cs).contains(&c) {
                        let mut y = canvas_y;
                        while y < canvas_y + ch {
                            repair(canvas_x + c, y);
                            y += view::DASH_CYCLE;
                        }
                    }
                }
                gx += view::GRID_PX;
            }
        }

        // Left-edge eviction: a saturated window dropped its oldest
        // samples, and the blit carried the segment that led into the
        // now-evicted sample onto column 0. Restore the column from
        // chrome and repaint every signal's contribution to it.
        let evicted = scope
            .signals()
            .iter()
            .enumerate()
            .any(|(i, sig)| !sig.config().hidden && self.lens[i] == cw as usize);
        if evicted {
            self.frame.copy_rect_from(
                &self.chrome,
                canvas_x as usize,
                canvas_y as usize,
                1,
                ch as usize,
            );
            // Only a window's first two samples can touch column 0.
            self.paint_clipped(scope, canvas_x, canvas_x, 0, 2);
        }

        // Freshly exposed strip: restore chrome, then repaint all
        // signals in order from the sample just before the strip.
        self.frame.copy_rect_from(
            &self.chrome,
            (canvas_x + cs) as usize,
            canvas_y as usize,
            (cw - cs) as usize,
            ch as usize,
        );
        self.paint_clipped(scope, canvas_x + cs, canvas_x + cw - 1, cs, usize::MAX);

        // Value readouts: restore the chrome to the right of each
        // label and redraw the text.
        let mut ry = canvas_y + ch + view::X_RULER_H + view::WIDGET_ROW_H;
        for sig in scope.signals() {
            if sig.config().show_value {
                let vx = view::value_text_x(sig);
                let w = self.frame.width().saturating_sub(vx as usize);
                self.frame
                    .copy_rect_from(&self.chrome, vx as usize, (ry + 1) as usize, w, 8);
                self.scratch.clear();
                match sig.value_readout() {
                    Some(v) => {
                        let _ = write!(self.scratch, "Value: {v:.3}");
                    }
                    None => self.scratch.push_str("Value: -"),
                }
                font::draw_text(&mut self.frame, vx, ry + 1, &self.scratch, sig.color());
            }
            ry += view::SIG_ROW_H;
        }
    }

    /// Repaints every visible signal's trace clipped to the column span
    /// `[min_x, max_x]`, bounded to the window sample range
    /// `[from_col - offset, until)` that can actually touch it.
    fn paint_clipped(
        &mut self,
        scope: &Scope,
        min_x: i64,
        max_x: i64,
        from_col: i64,
        until: usize,
    ) {
        let (canvas_x, canvas_y) = view::canvas_origin();
        let cw = scope.width() as i64;
        let ch = scope.height() as i64;
        for sig in scope.signals() {
            if sig.config().hidden {
                continue;
            }
            let window = scope.display_cols(sig.name());
            let offset = cw - window.len() as i64;
            let first = (from_col - offset).max(0) as usize;
            let mut p = ClippedFrame {
                fb: &mut self.frame,
                min_x,
                max_x,
            };
            view::paint_trace(
                scope,
                sig.config(),
                sig.color(),
                window,
                &mut p,
                canvas_x,
                canvas_y,
                cw,
                ch,
                first,
                until,
            );
        }
    }
}

/// [`TracePainter`] over a framebuffer that only writes pixels inside a
/// column span — partial repaints draw full segments and let the clip
/// keep them inside the damaged region, so the painted pixels match the
/// full redraw's Bresenham output exactly.
struct ClippedFrame<'a> {
    fb: &'a mut Framebuffer,
    min_x: i64,
    max_x: i64,
}

impl TracePainter for ClippedFrame<'_> {
    fn point(&mut self, x: i64, y: i64, c: Color) {
        if x >= self.min_x && x <= self.max_x {
            self.fb.set(x, y, c);
        }
    }

    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        let (min_x, max_x) = (self.min_x, self.max_x);
        let fb = &mut *self.fb;
        draw::line_pts(x0, y0, x1, y1, |x, y| {
            if x >= min_x && x <= max_x {
                fb.set(x, y, c);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::render_scope;
    use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
    use gscope::{IntVar, SigConfig};
    use std::sync::Arc;

    fn demo() -> (Scope, IntVar) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("demo", 120, 80, clock);
        let v = IntVar::new(0);
        scope
            .add_signal(
                "ramp",
                v.clone().into(),
                SigConfig::default()
                    .with_range(0.0, 60.0)
                    .with_show_value(true),
            )
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        (scope, v)
    }

    fn tick(scope: &mut Scope, i: u64) {
        let t = TimeStamp::from_millis(50 * (i + 1));
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }

    #[test]
    fn incremental_matches_full_redraw_through_saturation() {
        let (mut scope, v) = demo();
        let mut cache = FrameCache::new();
        // Far past saturation: the window fills at 120 columns.
        for i in 0..200u64 {
            v.set((i as i64 * 3) % 60);
            tick(&mut scope, i);
            assert_eq!(
                *cache.render(&scope),
                render_scope(&scope),
                "frame {i} diverged"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.full, 1, "only the first frame rebuilds chrome");
        assert!(stats.incremental >= 190, "steady state takes the blit path");
    }

    #[test]
    fn unchanged_scope_returns_cached_frame() {
        let (mut scope, v) = demo();
        v.set(17);
        tick(&mut scope, 0);
        let mut cache = FrameCache::new();
        let first = cache.render(&scope).clone();
        let second = cache.render(&scope);
        assert_eq!(first, *second);
        assert_eq!(cache.stats().cached, 1);
    }

    #[test]
    fn settings_change_invalidates_chrome() {
        let (mut scope, v) = demo();
        let mut cache = FrameCache::new();
        for i in 0..10u64 {
            v.set(i as i64);
            tick(&mut scope, i);
            cache.render(&scope);
        }
        scope.set_zoom(2.0).unwrap();
        assert_eq!(*cache.render(&scope), render_scope(&scope));
        assert_eq!(cache.stats().full, 2);
    }

    #[test]
    fn invalidate_forces_full_rebuild() {
        let (mut scope, v) = demo();
        let mut cache = FrameCache::new();
        v.set(5);
        tick(&mut scope, 0);
        cache.render(&scope);
        cache.invalidate();
        assert_eq!(*cache.render(&scope), render_scope(&scope));
        assert_eq!(cache.stats().full, 2);
    }
}
