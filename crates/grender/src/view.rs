//! The `GtkScope` widget rendering (Figures 1, 4, 5).
//!
//! Layout, matching the paper's description (§2): an embedded canvas
//! with signal traces, an x-axis ruler "sized in seconds", a y-axis
//! ruler "from 0 to 100", zoom/bias/period/delay readouts under the
//! canvas, and one row per signal showing its color, name and (when the
//! Value button is pressed) the live value.

use std::fmt::Write as _;

use gscope::{Color, Cols, LineMode, Scope};

use crate::font;
use crate::framebuffer::Framebuffer;
use crate::surface::{RasterSurface, Surface, SvgSurface};

/// Width reserved for the y-axis ruler labels.
pub(crate) const Y_RULER_W: i64 = 26;
/// Height of the x-axis ruler strip.
pub(crate) const X_RULER_H: i64 = 11;
/// Height of the title strip.
pub(crate) const TITLE_H: i64 = 12;
/// Height of the zoom/bias/period/delay readout strip.
pub(crate) const WIDGET_ROW_H: i64 = 12;
/// Height of one signal row.
pub(crate) const SIG_ROW_H: i64 = 11;
/// Outer margin.
pub(crate) const MARGIN: i64 = 2;
/// Vertical grid pitch in pixels.
pub(crate) const GRID_PX: i64 = 50;
/// Dash cycle of the grid strokes (1 px on, 3 px off).
pub(crate) const DASH_CYCLE: i64 = 4;

/// Canvas background.
pub(crate) const BG: Color = Color::new(18, 18, 18);
/// Chrome background.
pub(crate) const CHROME: Color = Color::new(40, 40, 44);
/// Grid stroke color.
pub(crate) const GRID: Color = Color::new(70, 90, 70);
/// Label text color.
pub(crate) const TEXT: Color = Color::new(210, 210, 210);

/// Top-left corner of the trace canvas inside the widget.
pub(crate) const fn canvas_origin() -> (i64, i64) {
    (MARGIN + Y_RULER_W, MARGIN + TITLE_H)
}

/// Y coordinates of the horizontal grid rows (the 0–100 ruler).
pub(crate) fn hgrid_rows(canvas_y: i64, ch: i64) -> [i64; 5] {
    [0i64, 25, 50, 75, 100].map(|pct| canvas_y + ch - 1 - (ch - 1) * pct / 100)
}

/// X where a signal row's value readout starts: after the swatch, the
/// label, and the 12 px gap — matching what [`draw_chrome`]'s label
/// `text` call returns.
pub(crate) fn value_text_x(sig: &gscope::Signal) -> i64 {
    let (canvas_x, _) = canvas_origin();
    let mut w = font::text_width(sig.name(), 1);
    if sig.config().hidden {
        w += font::text_width(" (hidden)", 1);
    }
    canvas_x + 10 + w + 12
}

/// Computes the full widget size for a scope: `(width, height)`.
pub fn widget_size(scope: &Scope) -> (usize, usize) {
    let w = Y_RULER_W + scope.width() as i64 + 2 * MARGIN;
    let h = TITLE_H
        + scope.height() as i64
        + X_RULER_H
        + WIDGET_ROW_H
        + scope.signal_count() as i64 * SIG_ROW_H
        + 2 * MARGIN;
    (w as usize, h as usize)
}

/// Draws the complete scope widget onto `s`.
///
/// The surface should be at least [`widget_size`] big; smaller surfaces
/// clip safely. The scene is layered — static chrome, then trace
/// content, then the live value readouts — and the three layers touch
/// disjoint pixels, which is what lets [`crate::FrameCache`] cache the
/// chrome and update the rest incrementally.
pub fn draw_scope(scope: &Scope, s: &mut dyn Surface) {
    let mut scratch = String::new();
    draw_chrome(scope, s, &mut scratch);
    draw_content(scope, s);
    draw_values(scope, s, &mut scratch);
}

/// Draws the static layer: background, title, canvas frame, grid,
/// rulers, readout strip, and the signal rows (swatch + label). Changes
/// only when the widget geometry, scope settings, or signal set change.
pub(crate) fn draw_chrome(scope: &Scope, s: &mut dyn Surface, scratch: &mut String) {
    s.clear(CHROME);
    let (canvas_x, canvas_y) = canvas_origin();
    let cw = scope.width() as i64;
    let ch = scope.height() as i64;

    // Title strip: name and acquisition mode.
    scratch.clear();
    let _ = write!(scratch, "{} [{}]", scope.name(), scope.mode_name());
    s.text(MARGIN + 2, MARGIN + 2, scratch, TEXT);

    // Canvas.
    s.rect(canvas_x, canvas_y, cw, ch, BG, true);
    s.rect(canvas_x - 1, canvas_y - 1, cw + 2, ch + 2, TEXT, false);

    // Horizontal grid + y ruler (0–100, §2).
    for pct in [0i64, 25, 50, 75, 100] {
        let y = canvas_y + ch - 1 - (ch - 1) * pct / 100;
        s.hline_dashed(canvas_x, canvas_x + cw - 1, y, GRID);
        scratch.clear();
        let _ = write!(scratch, "{pct}");
        s.text(MARGIN + 1, (y - 3).max(canvas_y - 4), scratch, TEXT);
    }

    // Vertical grid + x ruler in seconds (§2).
    let period_s = scope.period().as_secs_f64();
    let mut gx = 0i64;
    while gx < cw {
        let x = canvas_x + gx;
        if gx > 0 {
            s.vline_dashed(x, canvas_y, canvas_y + ch - 1, GRID);
        }
        let secs = gx as f64 * period_s;
        scratch.clear();
        let _ = write!(scratch, "{secs:.0}");
        s.text(x, canvas_y + ch + 2, scratch, TEXT);
        gx += GRID_PX;
    }

    // Widget readout strip: the zoom/bias/period/delay widgets (§2).
    let wy = canvas_y + ch + X_RULER_H;
    scratch.clear();
    let _ = write!(
        scratch,
        "zoom {:.2}  bias {:+.2}  period {}ms  delay {}ms",
        scope.zoom(),
        scope.bias(),
        scope.period().as_millis(),
        scope.delay().as_millis()
    );
    s.text(canvas_x, wy + 2, scratch, TEXT);

    // Signal rows: swatch and label (the value text is a separate
    // layer, see `draw_values`).
    let mut ry = wy + WIDGET_ROW_H;
    for sig in scope.signals() {
        s.rect(canvas_x, ry + 2, 6, 6, sig.color(), true);
        scratch.clear();
        scratch.push_str(sig.name());
        if sig.config().hidden {
            scratch.push_str(" (hidden)");
        }
        s.text(canvas_x + 10, ry + 1, scratch, TEXT);
        ry += SIG_ROW_H;
    }
}

/// Draws the per-sample layer: envelope shading, signal traces, and the
/// trigger level marker.
pub(crate) fn draw_content(scope: &Scope, s: &mut dyn Surface) {
    let (canvas_x, canvas_y) = canvas_origin();
    let cw = scope.width() as i64;
    let ch = scope.height() as i64;

    // Envelope shading first (under the traces). When the signal has
    // no live display window the envelope IS the trace — pre-decimated
    // min/max columns straight off a store's LOD pyramid — so it draws
    // as solid columns instead of a translucent accumulation band.
    for sig in scope.signals() {
        if sig.config().hidden {
            continue;
        }
        if let Some(env) = scope.envelope(sig.name()) {
            let solid = scope.display_cols(sig.name()).iter().all(|c| c.is_none());
            for px in 0..cw.min(env.width() as i64) {
                if let Some((lo, hi)) = env.band(px as usize) {
                    let ylo = value_to_y(scope, sig.config(), lo, canvas_y, ch);
                    let yhi = value_to_y(scope, sig.config(), hi, canvas_y, ch);
                    if solid {
                        s.line(canvas_x + px, yhi, canvas_x + px, ylo, sig.color());
                    } else {
                        s.band(canvas_x + px, yhi, ylo, sig.color(), 0.25);
                    }
                }
            }
        }
    }

    // Traces.
    for sig in scope.signals() {
        if sig.config().hidden {
            continue;
        }
        let window = scope.display_cols(sig.name());
        let mut p = SurfacePainter(s);
        paint_trace(
            scope,
            sig.config(),
            sig.color(),
            window,
            &mut p,
            canvas_x,
            canvas_y,
            cw,
            ch,
            0,
            usize::MAX,
        );
    }

    // Trigger level marker on the canvas edge.
    if let Some((name, trig)) = scope.trigger() {
        if let Some(sig) = scope.signal(name) {
            let y = value_to_y(scope, sig.config(), trig.level, canvas_y, ch);
            s.line(canvas_x - 4, y, canvas_x - 1, y, Color::RED);
            s.point(canvas_x - 5, y, Color::RED);
        }
    }
}

/// Draws the live value readouts in the signal rows.
pub(crate) fn draw_values(scope: &Scope, s: &mut dyn Surface, scratch: &mut String) {
    let (_, canvas_y) = canvas_origin();
    let ch = scope.height() as i64;
    let mut ry = canvas_y + ch + X_RULER_H + WIDGET_ROW_H;
    for sig in scope.signals() {
        if sig.config().show_value {
            scratch.clear();
            match sig.value_readout() {
                Some(v) => {
                    let _ = write!(scratch, "Value: {v:.3}");
                }
                None => scratch.push_str("Value: -"),
            }
            s.text(value_text_x(sig), ry + 1, scratch, sig.color());
        }
        ry += SIG_ROW_H;
    }
}

pub(crate) fn value_to_y(
    scope: &Scope,
    config: &gscope::SigConfig,
    v: f64,
    canvas_y: i64,
    ch: i64,
) -> i64 {
    let frac = scope.display_fraction(config, v);
    canvas_y + ch - 1 - ((ch - 1) as f64 * frac).round() as i64
}

/// Pixel sink for trace painting — implemented by whole surfaces and by
/// the frame cache's column-clipped framebuffer view, so full and
/// incremental redraws share one code path (and therefore one pixel
/// output).
pub(crate) trait TracePainter {
    fn point(&mut self, x: i64, y: i64, c: Color);
    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color);
}

/// [`TracePainter`] that forwards to a [`Surface`].
pub(crate) struct SurfacePainter<'a>(pub &'a mut dyn Surface);

impl TracePainter for SurfacePainter<'_> {
    fn point(&mut self, x: i64, y: i64, c: Color) {
        self.0.point(x, y, c);
    }

    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        self.0.line(x0, y0, x1, y1, c);
    }
}

/// Paints one signal's trace over the sample index range
/// `[first, until)` of the display window (`0, usize::MAX` paints
/// everything). When `first > 0` the segment leading into it is seeded
/// from sample `first - 1`, so a partial repaint continues the line
/// exactly as a full redraw would.
///
/// Windows wider than the canvas are decimated to per-column min/max
/// bands so draw cost is bounded by pixel width, not sample count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn paint_trace<P: TracePainter>(
    scope: &Scope,
    config: &gscope::SigConfig,
    color: Color,
    window: Cols<'_>,
    p: &mut P,
    canvas_x: i64,
    canvas_y: i64,
    cw: i64,
    ch: i64,
    first: usize,
    until: usize,
) {
    let n = window.len() as i64;
    if n > cw {
        // More samples than columns: draw each column's min/max band.
        for (b, band) in gscope::decimate_minmax(window, cw as usize)
            .into_iter()
            .enumerate()
        {
            let Some((lo, hi)) = band else { continue };
            let x = canvas_x + b as i64;
            let ylo = value_to_y(scope, config, lo, canvas_y, ch);
            let yhi = value_to_y(scope, config, hi, canvas_y, ch);
            p.line(x, yhi, x, ylo, color);
        }
        return;
    }
    // Right-align the window on the canvas, like a strip chart.
    let offset = cw - n;
    let zero_y = value_to_y(scope, config, 0.0_f64.max(config.min), canvas_y, ch);
    let mut prev: Option<(i64, i64)> = None;
    if first > 0 {
        if let Some(v) = window.get(first - 1).flatten() {
            let x = canvas_x + offset + first as i64 - 1;
            prev = Some((x, value_to_y(scope, config, v, canvas_y, ch)));
        }
    }
    let count = until.min(window.len()).saturating_sub(first);
    for (i, sample) in window.iter_from(first).take(count).enumerate() {
        let x = canvas_x + offset + (first + i) as i64;
        let Some(v) = sample else {
            prev = None;
            continue;
        };
        let y = value_to_y(scope, config, v, canvas_y, ch);
        match config.line {
            LineMode::Points => p.point(x, y, color),
            LineMode::Bars => p.line(x, zero_y, x, y, color),
            LineMode::Line => match prev {
                Some((px, py)) => p.line(px, py, x, y, color),
                None => p.point(x, y, color),
            },
            LineMode::Step => match prev {
                Some((px, py)) => {
                    p.line(px, py, x, py, color);
                    p.line(x, py, x, y, color);
                }
                None => p.point(x, y, color),
            },
        }
        prev = Some((x, y));
    }
}

/// Renders the scope widget to a fresh framebuffer sized by
/// [`widget_size`].
pub fn render_scope(scope: &Scope) -> Framebuffer {
    let (w, h) = widget_size(scope);
    let mut s = RasterSurface::new(w, h);
    draw_scope(scope, &mut s);
    s.into_framebuffer()
}

/// Renders the scope widget as an SVG document.
pub fn render_scope_svg(scope: &Scope) -> String {
    let (w, h) = widget_size(scope);
    let mut s = SvgSurface::new(w, h);
    draw_scope(scope, &mut s);
    s.finish()
}

/// Renders a signal's frequency-domain view (§3.1) as a bar spectrum.
///
/// `n` is the FFT size (power of two).
///
/// # Errors
///
/// Propagates scope errors (unknown signal, bad FFT size).
pub fn render_spectrum(
    scope: &Scope,
    name: &str,
    n: usize,
    config: gdsp::SpectrumConfig,
) -> gscope::Result<Framebuffer> {
    let bins = scope.spectrum(name, n, config)?;
    let w = (bins.len() * 4 + Y_RULER_W as usize + 2 * MARGIN as usize).max(64);
    let h = 120usize;
    let mut s = RasterSurface::new(w, h);
    s.clear(CHROME);
    let cx = MARGIN + Y_RULER_W;
    let cy = MARGIN + TITLE_H;
    let ch = (h as i64) - TITLE_H - X_RULER_H - 2 * MARGIN;
    s.text(MARGIN + 2, MARGIN + 2, &format!("{name} [frequency]"), TEXT);
    s.rect(cx, cy, bins.len() as i64 * 4, ch, BG, true);
    let peak = bins
        .iter()
        .map(|b| b.magnitude)
        .fold(f64::EPSILON, f64::max);
    let color = scope
        .signal(name)
        .map(|s| s.color())
        .unwrap_or(Color::GREEN);
    for (i, b) in bins.iter().enumerate() {
        let x = cx + i as i64 * 4 + 1;
        let bar = ((b.magnitude / peak).clamp(0.0, 1.0) * (ch - 1) as f64).round() as i64;
        let y0 = cy + ch - 1;
        s.rect(x, y0 - bar, 2, bar + 1, color, true);
    }
    s.text(cx, cy + ch + 2, "0", TEXT);
    s.text(cx + bins.len() as i64 * 4 - 18, cy + ch + 2, "f/2", TEXT);
    Ok(s.into_framebuffer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
    use gscope::{IntVar, SigConfig};
    use std::sync::Arc;

    fn demo_scope() -> (Scope, IntVar) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("demo", 120, 80, clock);
        let v = IntVar::new(0);
        scope
            .add_signal(
                "ramp",
                v.clone().into(),
                SigConfig::default()
                    .with_range(0.0, 60.0)
                    .with_show_value(true),
            )
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        for i in 0..60i64 {
            v.set(i);
            scope.tick(&TickInfo {
                now: TimeStamp::from_millis(50 * (i as u64 + 1)),
                scheduled: TimeStamp::from_millis(50 * (i as u64 + 1)),
                missed: 0,
            });
        }
        (scope, v)
    }

    #[test]
    fn widget_size_accounts_for_signals() {
        let (scope, _) = demo_scope();
        let (w, h) = widget_size(&scope);
        assert!(w > 120 && h > 80);
        let base_h = h;
        let clock = Arc::new(VirtualClock::new());
        let mut s2 = Scope::new("x", 120, 80, clock);
        s2.add_signal("a", IntVar::new(0).into(), SigConfig::default())
            .unwrap();
        s2.add_signal("b", IntVar::new(0).into(), SigConfig::default())
            .unwrap();
        let (_, h2) = widget_size(&s2);
        assert_eq!(h2 as i64, base_h as i64 + SIG_ROW_H);
    }

    #[test]
    fn render_paints_trace_in_signal_color() {
        let (scope, _) = demo_scope();
        let fb = render_scope(&scope);
        let trace_color = scope.signal("ramp").unwrap().color();
        assert!(
            fb.count_color(trace_color) >= 50,
            "ramp trace should paint many pixels"
        );
    }

    #[test]
    fn hidden_signal_draws_no_trace() {
        let (mut scope, _) = demo_scope();
        let color = scope.signal("ramp").unwrap().color();
        let visible = render_scope(&scope).count_color(color);
        scope.signal_mut("ramp").unwrap().toggle_hidden();
        let hidden = render_scope(&scope).count_color(color);
        assert!(
            hidden < visible / 2,
            "hiding removes the trace ({hidden} vs {visible})"
        );
        assert!(hidden > 0, "the color swatch row remains");
    }

    #[test]
    fn svg_and_raster_share_layout() {
        let (scope, _) = demo_scope();
        let svg = render_scope_svg(&scope);
        assert!(svg.contains("demo [polling]"));
        assert!(svg.contains("zoom 1.00"));
        assert!(svg.contains("ramp"));
        let (w, h) = widget_size(&scope);
        assert!(svg.contains(&format!("viewBox=\"0 0 {w} {h}\"")));
    }

    #[test]
    fn line_modes_all_render() {
        for mode in LineMode::ALL {
            let (mut scope, _) = demo_scope();
            let mut cfg = scope.signal("ramp").unwrap().config().clone();
            cfg.line = mode;
            scope.signal_mut("ramp").unwrap().set_config(cfg).unwrap();
            let fb = render_scope(&scope);
            let color = scope.signal("ramp").unwrap().color();
            assert!(
                fb.count_color(color) > 10,
                "mode {} paints pixels",
                mode.name()
            );
        }
    }

    #[test]
    fn spectrum_renders_bars() {
        let (scope, _) = demo_scope();
        let fb = render_spectrum(&scope, "ramp", 32, gdsp::SpectrumConfig::default()).unwrap();
        assert!(fb.width() >= 64);
        assert!(render_spectrum(&scope, "nope", 32, gdsp::SpectrumConfig::default()).is_err());
    }

    #[test]
    fn envelope_band_is_shaded() {
        let (mut scope, v) = demo_scope();
        scope.enable_envelope("ramp").unwrap();
        for i in 0..30i64 {
            v.set((i * 7) % 60);
            scope.tick(&TickInfo {
                now: TimeStamp::from_millis(5000 + 50 * (i as u64 + 1)),
                scheduled: TimeStamp::from_millis(5000 + 50 * (i as u64 + 1)),
                missed: 0,
            });
        }
        let fb = render_scope(&scope);
        // Shaded pixels are neither the pure trace color nor background;
        // just check rendering stays safe and the envelope exists.
        assert!(scope.envelope("ramp").unwrap().sweeps() > 0);
        assert!(fb.width() > 0);
    }
}
