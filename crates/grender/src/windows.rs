//! The pop-up windows: signal parameters (Figure 2) and
//! application/control parameters (Figure 3).
//!
//! Right-clicking a signal name in the original gscope opens a window
//! listing the signal's `GtkScopeSig` fields; the control-parameter
//! window lists application-wide read/write parameters. These renders
//! regenerate both figures from live data.

use gscope::{Color, ParamSet, Scope};

use crate::framebuffer::Framebuffer;
use crate::surface::{RasterSurface, Surface, SvgSurface};

const ROW_H: i64 = 12;
const PAD: i64 = 6;
const WIDTH: usize = 230;
const CHROME: Color = Color::new(40, 40, 44);
const TEXT: Color = Color::new(210, 210, 210);
const LABEL: Color = Color::new(150, 150, 160);

fn window_frame(s: &mut dyn Surface, title: &str, rows: i64) {
    s.clear(CHROME);
    s.rect(0, 0, s.width() as i64, s.height() as i64, TEXT, false);
    s.rect(
        1,
        1,
        s.width() as i64 - 2,
        ROW_H,
        Color::new(60, 60, 80),
        true,
    );
    s.text(PAD, 3, title, TEXT);
    let _ = rows;
}

fn kv_row(s: &mut dyn Surface, row: i64, key: &str, value: &str) {
    let y = ROW_H + 4 + row * ROW_H;
    s.text(PAD, y, key, LABEL);
    s.text(PAD + 90, y, value, TEXT);
}

/// Pixel height of the signal-parameters window.
pub fn signal_window_height() -> usize {
    (ROW_H + 4 + 8 * ROW_H + PAD) as usize
}

/// Draws the Figure 2 signal-parameters window for `name` onto `s`.
///
/// # Errors
///
/// Returns [`gscope::ScopeError::UnknownSignal`] if the signal does not
/// exist.
pub fn draw_signal_window(scope: &Scope, name: &str, s: &mut dyn Surface) -> gscope::Result<()> {
    let sig = scope
        .signal(name)
        .ok_or_else(|| gscope::ScopeError::UnknownSignal(name.into()))?;
    let cfg = sig.config();
    window_frame(s, &format!("Signal Parameters: {name}"), 8);
    kv_row(s, 0, "Name", name);
    let c = sig.color();
    kv_row(
        s,
        1,
        "Color",
        &format!("#{:02x}{:02x}{:02x}", c.r, c.g, c.b),
    );
    s.rect(PAD + 60, ROW_H + 4 + ROW_H, 8, 8, c, true);
    kv_row(s, 2, "Minimum", &format!("{}", cfg.min));
    kv_row(s, 3, "Maximum", &format!("{}", cfg.max));
    kv_row(s, 4, "Line mode", cfg.line.name());
    kv_row(s, 5, "Hidden", if cfg.hidden { "yes" } else { "no" });
    kv_row(s, 6, "Filter alpha", &format!("{:.2}", cfg.filter_alpha));
    kv_row(s, 7, "Aggregation", cfg.aggregation.name());
    Ok(())
}

/// Renders the Figure 2 window to a framebuffer.
///
/// # Errors
///
/// Returns [`gscope::ScopeError::UnknownSignal`] if the signal does not
/// exist.
pub fn render_signal_window(scope: &Scope, name: &str) -> gscope::Result<Framebuffer> {
    let mut s = RasterSurface::new(WIDTH, signal_window_height());
    draw_signal_window(scope, name, &mut s)?;
    Ok(s.into_framebuffer())
}

/// Renders the Figure 2 window as SVG.
///
/// # Errors
///
/// Returns [`gscope::ScopeError::UnknownSignal`] if the signal does not
/// exist.
pub fn render_signal_window_svg(scope: &Scope, name: &str) -> gscope::Result<String> {
    let mut s = SvgSurface::new(WIDTH, signal_window_height());
    draw_signal_window(scope, name, &mut s)?;
    Ok(s.finish())
}

/// Pixel height of the control-parameters window for `n` parameters.
pub fn param_window_height(n: usize) -> usize {
    (ROW_H + 4 + (n.max(1) as i64 + 1) * ROW_H + PAD) as usize
}

/// Draws the Figure 3 application/control-parameters window onto `s`.
pub fn draw_param_window(params: &ParamSet, s: &mut dyn Surface) {
    let rows = params.snapshot();
    window_frame(s, "Application Parameters", rows.len() as i64);
    // Header row.
    let y0 = ROW_H + 4;
    s.text(PAD, y0, "name", LABEL);
    s.text(PAD + 90, y0, "value", LABEL);
    s.text(PAD + 150, y0, "range", LABEL);
    for (i, (name, value, (min, max), _step)) in rows.iter().enumerate() {
        let y = y0 + (i as i64 + 1) * ROW_H;
        s.text(PAD, y, name, TEXT);
        let v = match value {
            gscope::ParamValue::Int(v) => format!("{v}"),
            gscope::ParamValue::Float(v) => format!("{v:.3}"),
            gscope::ParamValue::Bool(v) => (if *v { "on" } else { "off" }).to_owned(),
        };
        s.text(PAD + 90, y, &v, TEXT);
        s.text(PAD + 150, y, &format!("{min}..{max}"), LABEL);
    }
}

/// Renders the Figure 3 window to a framebuffer.
pub fn render_param_window(params: &ParamSet) -> Framebuffer {
    let mut s = RasterSurface::new(WIDTH, param_window_height(params.len()));
    draw_param_window(params, &mut s);
    s.into_framebuffer()
}

/// Renders the Figure 3 window as SVG.
pub fn render_param_window_svg(params: &ParamSet) -> String {
    let mut s = SvgSurface::new(WIDTH, param_window_height(params.len()));
    draw_param_window(params, &mut s);
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::VirtualClock;
    use gscope::{IntVar, Parameter, SigConfig};
    use std::sync::Arc;

    fn scope() -> Scope {
        let clock = Arc::new(VirtualClock::new());
        let mut sc = Scope::new("w", 64, 48, clock);
        sc.add_signal(
            "CWND",
            IntVar::new(10).into(),
            SigConfig::default().with_range(0.0, 64.0).with_filter(0.25),
        )
        .unwrap();
        sc
    }

    #[test]
    fn signal_window_renders_fields() {
        let sc = scope();
        let fb = render_signal_window(&sc, "CWND").unwrap();
        assert_eq!(fb.width(), WIDTH);
        assert_eq!(fb.height(), signal_window_height());
        let svg = render_signal_window_svg(&sc, "CWND").unwrap();
        assert!(svg.contains("Signal Parameters: CWND"));
        assert!(svg.contains("0.25"), "alpha shown");
        assert!(svg.contains("64"), "max shown");
        assert!(render_signal_window(&sc, "none").is_err());
    }

    #[test]
    fn param_window_lists_parameters() {
        let params = ParamSet::new();
        params
            .add(Parameter::int("elephants", IntVar::new(8), 0, 40))
            .unwrap();
        params
            .add(Parameter::bool("ecn", gscope::BoolVar::new(true)))
            .unwrap();
        let fb = render_param_window(&params);
        assert_eq!(fb.height(), param_window_height(2));
        let svg = render_param_window_svg(&params);
        assert!(svg.contains("Application Parameters"));
        assert!(svg.contains("elephants"));
        assert!(svg.contains("0..40"));
        assert!(svg.contains("on"));
    }

    #[test]
    fn empty_param_window_is_valid() {
        let params = ParamSet::new();
        let fb = render_param_window(&params);
        assert!(fb.height() >= param_window_height(0));
    }
}
