//! `loadmeter` — CPU-overhead measurement for the §4.6 experiment.
//!
//! The paper measures gscope's cost with "a CPU load program that runs
//! in a tight loop at a low priority and measures the number of loop
//! iterations it can perform at any given period. The ratio of the
//! iteration count when running gscope versus on an idle system gives
//! an estimate of the gscope overhead."
//!
//! Two meters are provided:
//!
//! * [`SpinLoop`] — the paper's method verbatim: a counter thread in a
//!   tight loop. Meaningful when the workload competes for the same
//!   core (the paper's machine was a uniprocessor 600 MHz P-III; on a
//!   multi-core host, pin both threads to one CPU, e.g. with
//!   `taskset -c 0`, to reproduce the contention).
//! * [`BusyMeter`] — a core-count-independent substitute: it accumulates
//!   the wall time actually spent inside the instrumented work (the
//!   scope's poll ticks) and reports the duty cycle, which on a
//!   uniprocessor is exactly what the spin-loop ratio estimates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overhead estimate from a baseline and a loaded measurement.
///
/// Returns the fraction of capacity lost, clamped to `[0, 1]`.
pub fn overhead_fraction(baseline: u64, loaded: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (1.0 - loaded as f64 / baseline as f64).clamp(0.0, 1.0)
}

/// The paper's low-priority tight-loop iteration counter.
pub struct SpinLoop {
    count: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SpinLoop {
    /// Starts the spin thread.
    pub fn start() -> Self {
        let count = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let c = Arc::clone(&count);
        let s = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // `yield_now` approximates "low priority": any runnable
            // thread on the same core gets in first.
            while !s.load(Ordering::Relaxed) {
                for _ in 0..1000 {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });
        SpinLoop {
            count,
            stop,
            handle: Some(handle),
        }
    }

    /// Iterations counted so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Counts iterations over the next `period`.
    pub fn sample(&self, period: Duration) -> u64 {
        let before = self.count();
        std::thread::sleep(period);
        self.count() - before
    }

    /// Stops the spin thread and returns the final count.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.count()
    }
}

impl Drop for SpinLoop {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Accumulates time spent inside instrumented work and reports the duty
/// cycle over a wall-clock window.
#[derive(Debug)]
pub struct BusyMeter {
    busy: Duration,
    window_start: Instant,
    samples: u64,
}

impl Default for BusyMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl BusyMeter {
    /// Creates a meter; the wall window starts now.
    pub fn new() -> Self {
        BusyMeter {
            busy: Duration::ZERO,
            window_start: Instant::now(),
            samples: 0,
        }
    }

    /// Runs `f`, charging its duration to the meter.
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.busy += t0.elapsed();
        self.samples += 1;
        out
    }

    /// Adds an externally measured busy span.
    pub fn add_busy(&mut self, d: Duration) {
        self.busy += d;
        self.samples += 1;
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// Number of measured spans.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Busy time ÷ wall time since creation (or the last reset),
    /// clamped to `[0, 1]` — the uniprocessor-equivalent CPU overhead.
    pub fn duty_cycle(&self) -> f64 {
        let wall = self.window_start.elapsed();
        if wall.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / wall.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Resets the busy accumulator and restarts the wall window.
    pub fn reset(&mut self) {
        self.busy = Duration::ZERO;
        self.samples = 0;
        self.window_start = Instant::now();
    }

    /// Mean busy time per measured span.
    pub fn mean_busy(&self) -> Duration {
        if self.samples == 0 {
            Duration::ZERO
        } else {
            self.busy / self.samples as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_math() {
        assert_eq!(overhead_fraction(1000, 1000), 0.0);
        assert!((overhead_fraction(1000, 990) - 0.01).abs() < 1e-12);
        assert_eq!(overhead_fraction(1000, 0), 1.0);
        assert_eq!(overhead_fraction(0, 5), 0.0);
        // Noise can push loaded above baseline; clamp to zero.
        assert_eq!(overhead_fraction(1000, 1100), 0.0);
    }

    #[test]
    fn spin_loop_counts_and_stops() {
        let spin = SpinLoop::start();
        let n = spin.sample(Duration::from_millis(50));
        assert!(n > 10_000, "a 50 ms spin should count plenty, got {n}");
        let total = spin.stop();
        assert!(total >= n);
    }

    #[test]
    fn spin_loop_rate_is_roughly_linear_in_time() {
        let spin = SpinLoop::start();
        let short = spin.sample(Duration::from_millis(40));
        let long = spin.sample(Duration::from_millis(120));
        drop(spin);
        let ratio = long as f64 / short as f64;
        // Wide bounds: a loaded host skews spin-loop scheduling a lot,
        // and this test only guards against gross accounting bugs.
        assert!(
            (1.2..12.0).contains(&ratio),
            "3x window should give roughly 3x counts, got {ratio:.2}"
        );
    }

    #[test]
    fn busy_meter_measures_duty_cycle() {
        let mut m = BusyMeter::new();
        // ~30% duty: 3 ms busy / 10 ms wall, repeated.
        for _ in 0..10 {
            m.measure(|| {
                let t0 = Instant::now();
                while t0.elapsed() < Duration::from_millis(3) {
                    std::hint::spin_loop();
                }
            });
            std::thread::sleep(Duration::from_millis(7));
        }
        let duty = m.duty_cycle();
        // ~0.3 nominal; loose bounds tolerate scheduling noise on a
        // busy host.
        assert!(
            (0.08..0.6).contains(&duty),
            "expected ~0.3 duty cycle, got {duty:.3}"
        );
        assert_eq!(m.samples(), 10);
        assert!(m.mean_busy() >= Duration::from_millis(2));
    }

    #[test]
    fn busy_meter_reset() {
        let mut m = BusyMeter::new();
        m.add_busy(Duration::from_millis(5));
        assert!(m.busy() >= Duration::from_millis(5));
        m.reset();
        assert_eq!(m.busy(), Duration::ZERO);
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn idle_meter_reports_zero() {
        let m = BusyMeter::new();
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.duty_cycle() < 0.01);
    }
}
