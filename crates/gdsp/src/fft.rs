//! Radix-2 Cooley–Tukey FFT, implemented from scratch.
//!
//! The gscope frequency-domain view (§3.1: "polled signals can be
//! displayed in the time or frequency domain") needs a power spectrum of
//! the most recent window of samples. An iterative in-place radix-2
//! transform is ample for scope-sized windows (≤ a few thousand points).

use crate::complex::Complex;

/// Errors returned by the transforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftError {
    /// The input length is not a power of two (radix-2 requirement).
    NotPowerOfTwo(usize),
    /// The input is empty.
    Empty,
}

impl core::fmt::Display for FftError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a power of two")
            }
            FftError::Empty => write!(f, "FFT input is empty"),
        }
    }
}

impl std::error::Error for FftError {}

fn check_len(n: usize) -> Result<(), FftError> {
    if n == 0 {
        return Err(FftError::Empty);
    }
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    Ok(())
}

/// Reverses the lowest `bits` bits of `x`.
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    // Bit-reversal permutation.
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Computes the forward FFT of `data` in place.
///
/// Uses the engineering sign convention `X_k = Σ x_n e^{-2πi kn/N}` with
/// no normalization (normalization happens in [`ifft`]).
///
/// # Errors
///
/// Returns [`FftError`] unless `data.len()` is a non-zero power of two.
pub fn fft(data: &mut [Complex]) -> Result<(), FftError> {
    check_len(data.len())?;
    fft_in_place(data, false);
    Ok(())
}

/// Computes the inverse FFT of `data` in place, including the `1/N`
/// normalization, so `ifft(fft(x)) == x` up to rounding.
///
/// # Errors
///
/// Returns [`FftError`] unless `data.len()` is a non-zero power of two.
pub fn ifft(data: &mut [Complex]) -> Result<(), FftError> {
    check_len(data.len())?;
    fft_in_place(data, true);
    let k = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(k);
    }
    Ok(())
}

/// Computes the FFT of a real-valued slice, returning the complex
/// spectrum.
///
/// # Errors
///
/// Returns [`FftError`] unless `data.len()` is a non-zero power of two.
pub fn fft_real(data: &[f64]) -> Result<Vec<Complex>, FftError> {
    check_len(data.len())?;
    let mut buf: Vec<Complex> = data.iter().map(|&x| Complex::from_real(x)).collect();
    fft_in_place(&mut buf, false);
    Ok(buf)
}

/// Naive `O(n²)` DFT, used as a correctness oracle in tests and kept
/// public so benchmarks can report the FFT speed-up.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in data.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex::cis(ang);
        }
        *out_k = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(fft(&mut []), Err(FftError::Empty));
        let mut three = [Complex::ZERO; 3];
        assert_eq!(fft(&mut three), Err(FftError::NotPowerOfTwo(3)));
        assert_eq!(
            fft_real(&[0.0; 12]).unwrap_err(),
            FftError::NotPowerOfTwo(12)
        );
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data).unwrap();
        for z in &data {
            assert!(close(z.re, 1.0, 1e-12) && close(z.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let mut data = vec![Complex::ONE; 16];
        fft(&mut data).unwrap();
        assert!(close(data[0].re, 16.0, 1e-9));
        for z in &data[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 64;
        let freq_bin = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&x).unwrap();
        // A real sine of amplitude 1 puts N/2 magnitude in bins ±k.
        assert!(close(spec[freq_bin].abs(), n as f64 / 2.0, 1e-9));
        assert!(close(spec[n - freq_bin].abs(), n as f64 / 2.0, 1e-9));
        for (k, z) in spec.iter().enumerate() {
            if k != freq_bin && k != n - freq_bin {
                assert!(z.abs() < 1e-9, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn round_trip_identity() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y).unwrap();
        ifft(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!(close(a.re, b.re, 1e-10) && close(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(a.re, b.re, 1e-8) && close(a.im, b.im, 1e-8));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<f64> = (0..128).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft_real(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!(close(time_energy, freq_energy, 1e-6));
    }

    #[test]
    fn single_point_is_identity() {
        let mut one = [Complex::new(3.5, -1.0)];
        fft(&mut one).unwrap();
        assert_eq!(one[0], Complex::new(3.5, -1.0));
    }
}
