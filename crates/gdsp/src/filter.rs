//! The paper's per-signal low-pass filter (§3.1).
//!
//! Gscope filters each displayed sample with
//! `y_i = α·y_{i−1} + (1−α)·x_i`, where α ranges from 0 (unfiltered,
//! the default) to 1. This module holds the canonical implementation;
//! the scope engine in the `gscope` crate drives it per signal.

/// Errors constructing a filter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FilterError {
    /// α must be finite and in `[0, 1]`.
    AlphaOutOfRange(f64),
}

impl core::fmt::Display for FilterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FilterError::AlphaOutOfRange(a) => {
                write!(f, "filter alpha {a} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FilterError {}

/// A single-pole low-pass filter with the paper's exact recurrence.
///
/// The first sample seeds the state (`y_0 = x_0`), so a constant input
/// passes through unchanged for every α.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LowPass {
    alpha: f64,
    state: Option<f64>,
}

impl LowPass {
    /// Creates a filter with coefficient `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::AlphaOutOfRange`] unless `alpha` is finite
    /// and within `[0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, FilterError> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            return Err(FilterError::AlphaOutOfRange(alpha));
        }
        Ok(LowPass { alpha, state: None })
    }

    /// The identity filter (α = 0), gscope's default.
    pub fn identity() -> Self {
        LowPass {
            alpha: 0.0,
            state: None,
        }
    }

    /// Returns α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes α without resetting the state.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::AlphaOutOfRange`] for invalid values.
    pub fn set_alpha(&mut self, alpha: f64) -> Result<(), FilterError> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            return Err(FilterError::AlphaOutOfRange(alpha));
        }
        self.alpha = alpha;
        Ok(())
    }

    /// Clears the filter state; the next sample re-seeds it.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Returns the current filtered value, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Feeds one sample and returns the filtered output.
    pub fn feed(&mut self, x: f64) -> f64 {
        let y = match self.state {
            None => x,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * x,
        };
        self.state = Some(y);
        y
    }

    /// Filters a whole slice, returning the outputs.
    pub fn feed_all(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.feed(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_is_identity() {
        let mut f = LowPass::identity();
        for x in [1.0, -5.0, 42.0, 0.25] {
            assert_eq!(f.feed(x), x);
        }
    }

    #[test]
    fn alpha_one_freezes_at_seed() {
        let mut f = LowPass::new(1.0).unwrap();
        assert_eq!(f.feed(7.0), 7.0);
        assert_eq!(f.feed(100.0), 7.0);
        assert_eq!(f.feed(-3.0), 7.0);
    }

    #[test]
    fn recurrence_matches_paper_equation() {
        let alpha = 0.75;
        let mut f = LowPass::new(alpha).unwrap();
        let xs = [10.0, 0.0, 20.0, -4.0];
        let mut y = xs[0];
        assert_eq!(f.feed(xs[0]), y);
        for &x in &xs[1..] {
            y = alpha * y + (1.0 - alpha) * x;
            assert!((f.feed(x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_input_passes_through() {
        for alpha in [0.0, 0.3, 0.9, 1.0] {
            let mut f = LowPass::new(alpha).unwrap();
            for _ in 0..50 {
                assert_eq!(f.feed(5.5), 5.5);
            }
        }
    }

    #[test]
    fn step_response_converges() {
        let mut f = LowPass::new(0.9).unwrap();
        f.feed(0.0);
        let mut y = 0.0;
        for _ in 0..400 {
            y = f.feed(1.0);
        }
        assert!((y - 1.0).abs() < 1e-10, "step should converge, got {y}");
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(LowPass::new(-0.1).is_err());
        assert!(LowPass::new(1.1).is_err());
        assert!(LowPass::new(f64::NAN).is_err());
        let mut f = LowPass::identity();
        assert!(f.set_alpha(2.0).is_err());
        assert!(f.set_alpha(0.5).is_ok());
        assert_eq!(f.alpha(), 0.5);
    }

    #[test]
    fn reset_reseeds() {
        let mut f = LowPass::new(0.5).unwrap();
        f.feed(100.0);
        f.reset();
        assert_eq!(f.value(), None);
        assert_eq!(f.feed(2.0), 2.0);
    }

    #[test]
    fn output_stays_within_input_hull() {
        let mut f = LowPass::new(0.6).unwrap();
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 21) as f64 - 10.0).collect();
        let (lo, hi) = (-10.0, 10.0);
        for y in f.feed_all(&xs) {
            assert!((lo..=hi).contains(&y));
        }
    }
}
