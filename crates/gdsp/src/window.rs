//! Window functions applied before the frequency-domain transform.
//!
//! The scope's FFT runs over an arbitrary slice of a live signal, so a
//! taper reduces spectral leakage. The classic trio plus rectangular is
//! plenty for a software oscilloscope.

/// A spectral window shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Window {
    /// No taper (all ones).
    Rectangular,
    /// Hann (raised cosine); the scope's default.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman.
    Blackman,
}

impl Window {
    /// Returns the window coefficient at position `i` of `n`.
    ///
    /// For `n <= 1` the coefficient is 1.0.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Multiplies `data` by the window in place and returns the window's
    /// coherent gain (mean coefficient), used to rescale magnitudes.
    pub fn apply(self, data: &mut [f64]) -> f64 {
        let n = data.len();
        if n == 0 {
            return 1.0;
        }
        let mut sum = 0.0;
        for (i, v) in data.iter_mut().enumerate() {
            let c = self.coefficient(i, n);
            *v *= c;
            sum += c;
        }
        sum / n as f64
    }

    /// All window variants, for UIs and parameter sweeps.
    pub const ALL: [Window; 4] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
    ];

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Window::Rectangular => "rect",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let mut d = vec![2.0; 7];
        let gain = Window::Rectangular.apply(&mut d);
        assert_eq!(d, vec![2.0; 7]);
        assert_eq!(gain, 1.0);
    }

    #[test]
    fn tapers_are_symmetric_and_end_near_zero() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let n = 33;
            for i in 0..n {
                let a = w.coefficient(i, n);
                let b = w.coefficient(n - 1 - i, n);
                assert!((a - b).abs() < 1e-12, "{} not symmetric", w.name());
                // The truncated Blackman coefficients (0.42/0.5/0.08) dip
                // a hair below zero near the edges; allow that.
                assert!((-1e-3..=1.0001).contains(&a));
            }
            assert!(w.coefficient(0, n) < 0.1, "{} should taper ends", w.name());
            assert!(
                (w.coefficient(n / 2, n) - 1.0).abs() < 0.08,
                "{} should peak mid-window",
                w.name()
            );
        }
    }

    #[test]
    fn hann_known_values() {
        // Hann at the midpoint of an odd window is exactly 1.
        assert!((Window::Hann.coefficient(8, 17) - 1.0).abs() < 1e-12);
        assert!(Window::Hann.coefficient(0, 17).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        for w in Window::ALL {
            assert_eq!(w.coefficient(0, 0), 1.0);
            assert_eq!(w.coefficient(0, 1), 1.0);
            let mut empty: Vec<f64> = vec![];
            assert_eq!(w.apply(&mut empty), 1.0);
        }
    }

    #[test]
    fn coherent_gain_matches_mean() {
        let mut ones = vec![1.0; 64];
        let gain = Window::Hann.apply(&mut ones);
        let mean: f64 = ones.iter().sum::<f64>() / 64.0;
        assert!((gain - mean).abs() < 1e-12);
        // Hann coherent gain is ~0.5.
        assert!((gain - 0.5).abs() < 0.02);
    }
}
