//! Decimation for high-rate buffered signals.
//!
//! §4.5's prescription for signals faster than the polling ceiling is
//! to buffer and display them with delay; when the buffered rate is
//! far above what one pixel per period can show, decimating with an
//! anti-alias pre-filter preserves the trace's shape better than
//! naive sample dropping.

use crate::filter::LowPass;

/// Downsamples `xs` by an integer `factor`, applying a single-pole
/// anti-alias low-pass before picking every `factor`-th sample.
///
/// The filter coefficient is derived from the factor (heavier smoothing
/// for heavier decimation); `factor == 1` returns the input unchanged.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn decimate(xs: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be non-zero");
    if factor == 1 {
        return xs.to_vec();
    }
    // One-pole alpha that puts the cutoff near the new Nyquist:
    // alpha = exp(-2π·fc/fs) with fc = 0.4/factor of the original rate.
    let alpha = (-2.0 * std::f64::consts::PI * 0.4 / factor as f64).exp();
    let mut lp = LowPass::new(alpha).expect("alpha in (0,1)");
    let mut out = Vec::with_capacity(xs.len() / factor + 1);
    for (i, &x) in xs.iter().enumerate() {
        let y = lp.feed(x);
        if i % factor == factor - 1 {
            out.push(y);
        }
    }
    out
}

/// Peak-preserving decimation: each output sample is the extreme
/// (largest |value|) of its block — what oscilloscope "peak detect"
/// acquisition does, so narrow glitches survive the rate reduction.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn decimate_peak(xs: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be non-zero");
    xs.chunks(factor)
        .map(|block| {
            block
                .iter()
                .copied()
                .max_by(|a, b| a.abs().total_cmp(&b.abs()))
                .expect("chunks are non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_is_identity() {
        let xs = vec![1.0, -2.0, 3.0];
        assert_eq!(decimate(&xs, 1), xs);
        assert_eq!(decimate_peak(&xs, 1), xs);
    }

    #[test]
    fn output_length_shrinks_by_factor() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(decimate(&xs, 4).len(), 25);
        assert_eq!(decimate_peak(&xs, 4).len(), 25);
        // Non-multiple lengths: peak keeps the tail block.
        assert_eq!(decimate_peak(&xs[..10], 4).len(), 3);
    }

    #[test]
    fn dc_passes_through_decimation() {
        let xs = vec![5.0; 200];
        let out = decimate(&xs, 8);
        // After filter settling, the level is preserved.
        assert!((out.last().unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn antialias_attenuates_above_new_nyquist() {
        // A tone right at 0.4 cycles/sample is far above the new
        // Nyquist for factor 8 (0.0625): it must come out much smaller.
        let n = 512;
        let hi: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.4 * i as f64).sin())
            .collect();
        let out = decimate(&hi, 8);
        let peak = out.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(peak < 0.3, "aliasing energy should be attenuated: {peak}");
        // A slow tone (0.01 cycles/sample) survives.
        let lo: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.01 * i as f64).sin())
            .collect();
        let out = decimate(&lo, 8);
        let peak = out.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(peak > 0.7, "in-band signal should survive: {peak}");
    }

    #[test]
    fn peak_decimation_keeps_glitches() {
        let mut xs = vec![0.1; 64];
        xs[37] = -9.0; // one narrow glitch
        let plain = decimate(&xs, 16);
        let peak = decimate_peak(&xs, 16);
        assert!(
            peak.iter().any(|&v| v == -9.0),
            "peak detect must keep the glitch"
        );
        assert!(
            plain.iter().all(|&v| v.abs() < 5.0),
            "filtered decimation smears it — that contrast is the point"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_factor_rejected() {
        let _ = decimate(&[1.0], 0);
    }
}
