//! `gdsp` — signal-processing substrate for the gscope workspace.
//!
//! The original gscope displays polled signals "in the time or frequency
//! domain" (§3.1) and low-pass filters each signal with a per-signal α
//! (§3.1). This crate implements that machinery from scratch:
//!
//! * [`Complex`] and a radix-2 in-place [`fft`] / [`ifft`] (with a naive
//!   DFT oracle for tests and benchmarks),
//! * spectral [`Window`] functions,
//! * a single-sided [`power_spectrum`] pipeline,
//! * the paper's exact [`LowPass`] recurrence
//!   `y_i = α·y_{i−1} + (1−α)·x_i`.
//!
//! # Examples
//!
//! ```
//! use gdsp::{power_spectrum, peak_bin, SpectrumConfig};
//!
//! // A 4-cycles-per-window sine shows up at frequency 4/64.
//! let x: Vec<f64> = (0..64)
//!     .map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / 64.0).sin())
//!     .collect();
//! let bins = power_spectrum(&x, SpectrumConfig::default()).unwrap();
//! let peak = peak_bin(&bins).unwrap();
//! assert!((peak.frequency - 4.0 / 64.0).abs() < 1e-9);
//! ```

mod complex;
mod fft;
mod filter;
mod resample;
mod spectrum;
mod window;

pub use complex::Complex;
pub use fft::{dft_naive, fft, fft_real, ifft, FftError};
pub use filter::{FilterError, LowPass};
pub use resample::{decimate, decimate_peak};
pub use spectrum::{peak_bin, power_spectrum, Bin, Scale, SpectrumConfig};
pub use window::Window;
