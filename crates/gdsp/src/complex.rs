//! A minimal complex-number type for the FFT.
//!
//! The workspace implements its own FFT rather than pulling in a numerics
//! stack; only the handful of operations the transforms need exist here.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a pure-real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ}` (a unit phasor at angle `theta` radians).
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;

    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        let zz = z * z.conj();
        assert!(close(zz.re, 25.0) && close(zz.im, 0.0));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::cis(0.7).scale(2.0);
        let b = Complex::cis(1.1).scale(3.0);
        let p = a * b;
        assert!(close(p.abs(), 6.0));
        assert!(close(p.arg(), 1.8));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!(close(Complex::cis(theta).abs(), 1.0));
        }
    }
}
