//! Power-spectrum pipeline for the scope's frequency-domain view.
//!
//! Takes the most recent window of display samples, tapers it, transforms
//! it, and produces one magnitude per positive-frequency bin, either
//! linear or in decibels.

use crate::fft::{fft_real, FftError};
use crate::window::Window;

/// Magnitude scaling for the spectrum display.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// Linear amplitude.
    #[default]
    Linear,
    /// Decibels relative to full scale (`20·log10`), floored at -120 dB.
    Decibel,
}

/// Configuration for [`power_spectrum`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpectrumConfig {
    /// Taper applied before the transform.
    pub window: Window,
    /// Output magnitude scaling.
    pub scale: Scale,
    /// Remove the mean before transforming (suppresses the DC bin, which
    /// otherwise dwarfs everything on a scope display).
    pub remove_dc: bool,
}

/// One spectrum bin: center frequency (as a fraction of the sample rate)
/// and its magnitude.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bin {
    /// Bin center in cycles/sample, in `[0, 0.5]`.
    pub frequency: f64,
    /// Magnitude in the configured [`Scale`].
    pub magnitude: f64,
}

/// Computes the single-sided power spectrum of `samples`.
///
/// Input length must be a power of two; output has `n/2 + 1` bins
/// covering DC through Nyquist. Magnitudes are normalized so a
/// full-scale sine at a bin center reports amplitude ≈ 1.0 (linear) or
/// ≈ 0 dB, independent of window choice.
///
/// # Errors
///
/// Returns [`FftError`] for empty or non-power-of-two input.
pub fn power_spectrum(samples: &[f64], config: SpectrumConfig) -> Result<Vec<Bin>, FftError> {
    let n = samples.len();
    let mut buf = samples.to_vec();
    if config.remove_dc && n > 0 {
        let mean = buf.iter().sum::<f64>() / n as f64;
        for v in &mut buf {
            *v -= mean;
        }
    }
    let gain = config.window.apply(&mut buf);
    let spec = fft_real(&buf)?;
    let n_bins = n / 2 + 1;
    let mut out = Vec::with_capacity(n_bins);
    for (k, z) in spec.iter().take(n_bins).enumerate() {
        // Single-sided amplitude: double interior bins, undo window gain.
        let doubling = if k == 0 || k == n / 2 { 1.0 } else { 2.0 };
        let amp = doubling * z.abs() / (n as f64 * gain);
        let magnitude = match config.scale {
            Scale::Linear => amp,
            Scale::Decibel => {
                if amp <= 1e-6 {
                    -120.0
                } else {
                    20.0 * amp.log10()
                }
            }
        };
        out.push(Bin {
            frequency: k as f64 / n as f64,
            magnitude,
        });
    }
    Ok(out)
}

/// Returns the bin with the largest magnitude, ignoring DC.
///
/// Returns `None` for spectra with fewer than two bins.
pub fn peak_bin(bins: &[Bin]) -> Option<Bin> {
    bins.iter()
        .skip(1)
        .copied()
        .max_by(|a, b| a.magnitude.total_cmp(&b.magnitude))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn sine_peak_at_right_bin_rect() {
        let x = sine(256, 16.0, 1.0);
        let bins = power_spectrum(
            &x,
            SpectrumConfig {
                window: Window::Rectangular,
                ..Default::default()
            },
        )
        .unwrap();
        let peak = peak_bin(&bins).unwrap();
        assert!((peak.frequency - 16.0 / 256.0).abs() < 1e-12);
        assert!(
            (peak.magnitude - 1.0).abs() < 1e-9,
            "amp {}",
            peak.magnitude
        );
    }

    #[test]
    fn window_gain_is_compensated() {
        for w in Window::ALL {
            let x = sine(512, 32.0, 2.0);
            let bins = power_spectrum(
                &x,
                SpectrumConfig {
                    window: w,
                    ..Default::default()
                },
            )
            .unwrap();
            let peak = peak_bin(&bins).unwrap();
            assert!(
                (peak.magnitude - 2.0).abs() < 0.25,
                "window {} peak {} should be near 2.0",
                w.name(),
                peak.magnitude
            );
        }
    }

    #[test]
    fn dc_removal_suppresses_bin_zero() {
        // Rectangular window: a taper would re-introduce a small DC term
        // after mean removal.
        let x: Vec<f64> = sine(128, 8.0, 1.0).iter().map(|v| v + 50.0).collect();
        let rect = SpectrumConfig {
            window: Window::Rectangular,
            ..Default::default()
        };
        let with_dc = power_spectrum(&x, rect).unwrap();
        let without = power_spectrum(
            &x,
            SpectrumConfig {
                remove_dc: true,
                ..rect
            },
        )
        .unwrap();
        assert!(with_dc[0].magnitude > 10.0);
        assert!(without[0].magnitude < 1e-9);
    }

    #[test]
    fn decibel_scale_and_floor() {
        let x = sine(128, 8.0, 1.0);
        let bins = power_spectrum(
            &x,
            SpectrumConfig {
                window: Window::Rectangular,
                scale: Scale::Decibel,
                remove_dc: false,
            },
        )
        .unwrap();
        let peak = peak_bin(&bins).unwrap();
        assert!(peak.magnitude.abs() < 0.1, "unit sine should be ~0 dB");
        // Quiet bins hit the floor.
        assert!(bins.iter().any(|b| b.magnitude == -120.0));
    }

    #[test]
    fn bin_count_and_frequency_range() {
        let bins = power_spectrum(&[0.0; 64], SpectrumConfig::default()).unwrap();
        assert_eq!(bins.len(), 33);
        assert_eq!(bins[0].frequency, 0.0);
        assert_eq!(bins[32].frequency, 0.5);
    }

    #[test]
    fn errors_propagate() {
        assert!(power_spectrum(&[], SpectrumConfig::default()).is_err());
        assert!(power_spectrum(&[0.0; 100], SpectrumConfig::default()).is_err());
    }
}
