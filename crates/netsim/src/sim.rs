//! The discrete-event network: senders → bottleneck router → receiver.
//!
//! Reproduces the paper's experimental setup (§2): traffic sources on a
//! server machine, "a Linux router between a client and a server
//! machine" with `nistnet`-style delay and bandwidth constraints, and a
//! client sinking the data. ACKs return on an uncongested reverse path.
//!
//! The simulator is packet-level and deterministic: every random choice
//! comes from a seeded RNG, so experiments replay exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use gel::{TimeDelta, TimeStamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queue::{EnqueueOutcome, QueueDiscipline, QueueKind, QueueStats};
use crate::tcp::{SenderOp, SenderStats, TcpReceiver, TcpSender};

/// Identifies a flow inside a [`Network`].
pub type FlowId = usize;

/// Static network parameters (the `nistnet` knobs).
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Bottleneck bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (each direction).
    pub prop_delay: TimeDelta,
    /// Packet size in bytes (MSS + headers).
    pub packet_size: u32,
    /// Router queue discipline.
    pub queue: QueueKind,
    /// Random post-queue packet loss probability (nistnet's loss knob);
    /// 0 disables.
    pub loss_rate: f64,
    /// Maximum extra one-way delay, uniformly distributed (nistnet's
    /// jitter knob; can reorder packets). Zero disables.
    pub jitter: TimeDelta,
    /// RNG seed (RED marking, loss, jitter).
    pub seed: u64,
}

impl Default for NetConfig {
    /// A congested wide-area path: 10 Mbit/s, 20 ms each way, 1500 B
    /// packets, a 50-packet DropTail buffer.
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 10_000_000,
            prop_delay: TimeDelta::from_millis(20),
            packet_size: 1500,
            queue: QueueKind::DropTail { capacity: 50 },
            loss_rate: 0.0,
            jitter: TimeDelta::ZERO,
            seed: 2002,
        }
    }
}

impl NetConfig {
    /// Serialization time of one packet on the bottleneck.
    pub fn serialization(&self) -> TimeDelta {
        TimeDelta::from_micros(self.packet_size as u64 * 8 * 1_000_000 / self.bandwidth_bps)
    }

    /// Base round-trip time (no queueing).
    pub fn base_rtt(&self) -> TimeDelta {
        TimeDelta::from_micros(2 * self.prop_delay.as_micros() + self.serialization().as_micros())
    }
}

#[derive(Clone, Copy, Debug)]
struct Pkt {
    flow: FlowId,
    seq: u64,
    ce: bool,
    udp: bool,
}

#[derive(Debug)]
enum Ev {
    ArriveQueue(Pkt),
    LinkDone,
    DeliverData(Pkt),
    DeliverAck {
        flow: FlowId,
        ackno: u64,
        ece: bool,
        sack: Vec<u64>,
    },
    RtoFire {
        flow: FlowId,
        generation: u64,
    },
    UdpSend {
        flow: FlowId,
    },
    StartFlow {
        flow: FlowId,
    },
}

struct Scheduled {
    time: TimeStamp,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct TcpEntry {
    sender: TcpSender,
    receiver: TcpReceiver,
    /// Stop after this many packets are cumulatively acked (mice).
    limit: Option<u64>,
}

struct UdpEntry {
    active: bool,
    interval: TimeDelta,
    sent: u64,
    delivered: u64,
}

/// Counters for one UDP constant-bit-rate flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Packets transmitted.
    pub sent: u64,
    /// Packets delivered to the receiver.
    pub delivered: u64,
}

/// The simulated network.
pub struct Network {
    cfg: NetConfig,
    now: TimeStamp,
    events: BinaryHeap<Reverse<Scheduled>>,
    event_seq: u64,
    discipline: QueueDiscipline,
    fifo: VecDeque<Pkt>,
    in_service: Option<Pkt>,
    tcp: Vec<TcpEntry>,
    udp: Vec<UdpEntry>,
    /// Total packets delivered across all flows.
    delivered_packets: u64,
    /// Packets destroyed by the random-loss link model.
    link_losses: u64,
    events_processed: u64,
    /// RNG for loss and jitter (independent of the queue's RED RNG).
    rng: StdRng,
}

impl Network {
    /// Creates an empty network.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            now: TimeStamp::ZERO,
            events: BinaryHeap::new(),
            event_seq: 0,
            discipline: QueueDiscipline::new(cfg.queue, cfg.seed),
            fifo: VecDeque::new(),
            in_service: None,
            tcp: Vec::new(),
            udp: Vec::new(),
            delivered_packets: 0,
            link_losses: 0,
            events_processed: 0,
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> TimeStamp {
        self.now
    }

    /// Total events processed (throughput metric for benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn schedule(&mut self, time: TimeStamp, ev: Ev) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(Scheduled { time, seq, ev }));
    }

    /// Adds an idle TCP flow; `ecn` selects the ECN-capable variant.
    pub fn add_tcp_flow(&mut self, ecn: bool) -> FlowId {
        self.add_tcp_flow_with(ecn, false)
    }

    /// Adds an idle TCP flow with explicit ECN and SACK options.
    pub fn add_tcp_flow_with(&mut self, ecn: bool, sack: bool) -> FlowId {
        self.tcp.push(TcpEntry {
            sender: TcpSender::with_options(ecn, sack),
            receiver: TcpReceiver::new(),
            limit: None,
        });
        self.tcp.len() - 1
    }

    /// Adds a short ("mouse") flow that stops after `packets` are
    /// delivered.
    pub fn add_mouse_flow(&mut self, ecn: bool, packets: u64) -> FlowId {
        self.add_mouse_flow_with(ecn, false, packets)
    }

    /// Adds a mouse flow with explicit ECN and SACK options.
    pub fn add_mouse_flow_with(&mut self, ecn: bool, sack: bool, packets: u64) -> FlowId {
        let id = self.add_tcp_flow_with(ecn, sack);
        self.tcp[id].limit = Some(packets);
        id
    }

    /// Starts (or restarts) a TCP flow's transmission.
    pub fn start_flow(&mut self, id: FlowId) {
        let ops = self.tcp[id].sender.start(self.now);
        self.apply_ops(id, ops);
    }

    /// Starts a TCP flow at a future simulation time.
    ///
    /// Real flows never start in lockstep; staggering avoids the
    /// artificial synchronized slow-start burst a simulator would
    /// otherwise inject.
    pub fn start_flow_at(&mut self, id: FlowId, at: TimeStamp) {
        let at = at.max(self.now);
        // The flow counts as active immediately; its initial window
        // goes out when the start event fires.
        self.tcp[id].sender.activate();
        self.schedule(at, Ev::StartFlow { flow: id });
    }

    /// Stops a TCP flow from sending new data (in-flight data drains).
    pub fn stop_flow(&mut self, id: FlowId) {
        self.tcp[id].sender.stop();
    }

    /// True while the flow actively sends new data.
    pub fn flow_active(&self, id: FlowId) -> bool {
        self.tcp[id].sender.is_active()
    }

    /// Adds a UDP constant-bit-rate flow sending every `interval`.
    pub fn add_udp_flow(&mut self, interval: TimeDelta) -> FlowId {
        assert!(!interval.is_zero(), "UDP interval must be non-zero");
        self.udp.push(UdpEntry {
            active: false,
            interval,
            sent: 0,
            delivered: 0,
        });
        self.udp.len() - 1
    }

    /// Starts a UDP flow.
    pub fn start_udp(&mut self, id: FlowId) {
        if !self.udp[id].active {
            self.udp[id].active = true;
            self.schedule(self.now, Ev::UdpSend { flow: id });
        }
    }

    /// Stops a UDP flow.
    pub fn stop_udp(&mut self, id: FlowId) {
        self.udp[id].active = false;
    }

    /// The flow's current congestion window in packets — the Figures
    /// 4–5 CWND signal.
    pub fn cwnd(&self, id: FlowId) -> f64 {
        self.tcp[id].sender.cwnd()
    }

    /// The flow's sender statistics (timeouts, retransmits, ...).
    pub fn flow_stats(&self, id: FlowId) -> SenderStats {
        self.tcp[id].sender.stats()
    }

    /// The flow's smoothed RTT, once measured.
    pub fn flow_srtt(&self, id: FlowId) -> Option<TimeDelta> {
        self.tcp[id].sender.srtt()
    }

    /// Packets delivered in order to the flow's receiver.
    pub fn flow_delivered(&self, id: FlowId) -> u64 {
        self.tcp[id].receiver.delivered()
    }

    /// UDP flow statistics.
    pub fn udp_stats(&self, id: FlowId) -> UdpStats {
        UdpStats {
            sent: self.udp[id].sent,
            delivered: self.udp[id].delivered,
        }
    }

    /// Number of TCP flows (active or not).
    pub fn tcp_flow_count(&self) -> usize {
        self.tcp.len()
    }

    /// Instantaneous router queue occupancy in packets.
    pub fn queue_len(&self) -> usize {
        self.fifo.len() + usize::from(self.in_service.is_some())
    }

    /// Router queue statistics (drops, marks, peak).
    pub fn queue_stats(&self) -> QueueStats {
        self.discipline.stats()
    }

    /// Total packets delivered across all flows.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets destroyed by the random-loss link model.
    pub fn link_losses(&self) -> u64 {
        self.link_losses
    }

    /// Aggregate goodput in bits/s over the interval `[from, to]`,
    /// assuming `delivered` packets arrived in it.
    pub fn goodput_bps(&self, delivered: u64, interval: TimeDelta) -> f64 {
        if interval.is_zero() {
            return 0.0;
        }
        delivered as f64 * self.cfg.packet_size as f64 * 8.0 / interval.as_secs_f64()
    }

    fn apply_ops(&mut self, flow: FlowId, ops: Vec<SenderOp>) {
        for op in ops {
            match op {
                SenderOp::Send { seq, .. } => {
                    // Sender-to-router access link is uncongested LAN:
                    // packets reach the router queue immediately.
                    self.schedule(
                        self.now,
                        Ev::ArriveQueue(Pkt {
                            flow,
                            seq,
                            ce: false,
                            udp: false,
                        }),
                    );
                }
                SenderOp::ArmRto {
                    generation,
                    deadline,
                } => {
                    self.schedule(deadline, Ev::RtoFire { flow, generation });
                }
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::ArriveQueue(mut pkt) => {
                let ecn_capable = !pkt.udp && self.tcp[pkt.flow].sender.is_ecn();
                match self.discipline.admit(self.queue_len(), ecn_capable) {
                    EnqueueOutcome::Dropped => {}
                    outcome => {
                        if outcome == EnqueueOutcome::Marked {
                            pkt.ce = true;
                        }
                        if self.in_service.is_none() {
                            self.in_service = Some(pkt);
                            self.schedule(self.now + self.cfg.serialization(), Ev::LinkDone);
                        } else {
                            self.fifo.push_back(pkt);
                        }
                    }
                }
            }
            Ev::LinkDone => {
                if let Some(pkt) = self.in_service.take() {
                    // The nistnet link model: optional random loss and
                    // uniform jitter on the propagation delay.
                    let lost =
                        self.cfg.loss_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.loss_rate;
                    if lost {
                        self.link_losses += 1;
                    } else {
                        let extra = if self.cfg.jitter.is_zero() {
                            TimeDelta::ZERO
                        } else {
                            TimeDelta::from_micros(
                                self.rng.gen_range(0..=self.cfg.jitter.as_micros()),
                            )
                        };
                        self.schedule(self.now + self.cfg.prop_delay + extra, Ev::DeliverData(pkt));
                    }
                }
                if let Some(next) = self.fifo.pop_front() {
                    self.in_service = Some(next);
                    self.schedule(self.now + self.cfg.serialization(), Ev::LinkDone);
                }
            }
            Ev::DeliverData(pkt) => {
                self.delivered_packets += 1;
                if pkt.udp {
                    self.udp[pkt.flow].delivered += 1;
                } else {
                    let entry = &mut self.tcp[pkt.flow];
                    let ack = entry.receiver.on_packet(pkt.seq, pkt.ce);
                    let sack = if entry.sender.is_sack() {
                        entry.receiver.sack_report(16)
                    } else {
                        Vec::new()
                    };
                    self.schedule(
                        self.now + self.cfg.prop_delay,
                        Ev::DeliverAck {
                            flow: pkt.flow,
                            ackno: ack.ackno,
                            ece: ack.ece,
                            sack,
                        },
                    );
                }
            }
            Ev::DeliverAck {
                flow,
                ackno,
                ece,
                sack,
            } => {
                let ops = self.tcp[flow].sender.on_ack(self.now, ackno, ece, &sack);
                self.apply_ops(flow, ops);
                if let Some(limit) = self.tcp[flow].limit {
                    if self.tcp[flow].sender.stats().packets_acked >= limit {
                        self.tcp[flow].sender.stop();
                    }
                }
            }
            Ev::RtoFire { flow, generation } => {
                let ops = self.tcp[flow].sender.on_rto(self.now, generation);
                self.apply_ops(flow, ops);
            }
            Ev::StartFlow { flow } => {
                let ops = self.tcp[flow].sender.start(self.now);
                self.apply_ops(flow, ops);
            }
            Ev::UdpSend { flow } => {
                if !self.udp[flow].active {
                    return;
                }
                self.udp[flow].sent += 1;
                let seq = self.udp[flow].sent;
                self.schedule(
                    self.now,
                    Ev::ArriveQueue(Pkt {
                        flow,
                        seq,
                        ce: false,
                        udp: true,
                    }),
                );
                let next = self.now + self.udp[flow].interval;
                self.schedule(next, Ev::UdpSend { flow });
            }
        }
    }

    /// Runs the simulation until `until` (events at exactly `until`
    /// included). Time ends at `until` even if the event queue drains
    /// early.
    pub fn run_until(&mut self, until: TimeStamp) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.time > until {
                break;
            }
            let Reverse(sched) = self.events.pop().expect("peeked event exists");
            debug_assert!(sched.time >= self.now, "event time went backwards");
            self.now = sched.time;
            self.events_processed += 1;
            self.handle(sched.ev);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_net(queue: QueueKind) -> Network {
        Network::new(NetConfig {
            queue,
            ..NetConfig::default()
        })
    }

    #[test]
    fn config_derived_values() {
        let cfg = NetConfig::default();
        // 1500 B at 10 Mbit/s = 1.2 ms.
        assert_eq!(cfg.serialization(), TimeDelta::from_micros(1200));
        assert_eq!(cfg.base_rtt(), TimeDelta::from_micros(41_200));
    }

    #[test]
    fn single_flow_transfers_data() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let f = net.add_tcp_flow(false);
        net.start_flow(f);
        net.run_until(TimeStamp::from_secs(5));
        let stats = net.flow_stats(f);
        assert!(stats.packets_acked > 1000, "acked {}", stats.packets_acked);
        assert_eq!(stats.timeouts, 0, "an uncontended flow never times out");
        assert_eq!(net.queue_stats().dropped, 0);
        // The last few ACKs may still be in flight at the horizon.
        let delivered = net.flow_delivered(f);
        assert!(delivered >= stats.packets_acked);
        assert!(delivered - stats.packets_acked < 100);
    }

    #[test]
    fn single_flow_reaches_near_link_capacity() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let f = net.add_tcp_flow(false);
        net.start_flow(f);
        net.run_until(TimeStamp::from_secs(2));
        let before = net.flow_delivered(f);
        net.run_until(TimeStamp::from_secs(12));
        let delivered = net.flow_delivered(f) - before;
        let goodput = net.goodput_bps(delivered, TimeDelta::from_secs(10));
        // A 10 Mbit/s link with a window cap of 64 packets and ~41 ms
        // RTT supports ~64*1500*8/0.0412 ≈ 18 Mbit/s, so the window cap
        // is not binding; expect ≥ 80% utilization.
        assert!(
            goodput > 8_000_000.0,
            "goodput {goodput:.0} bps should near 10 Mbit/s"
        );
    }

    #[test]
    fn many_droptail_flows_suffer_timeouts() {
        // The Figure 4 phenomenon: 16 Reno flows through a DropTail
        // bottleneck lose whole windows and hit RTO.
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let flows: Vec<FlowId> = (0..16).map(|_| net.add_tcp_flow(false)).collect();
        for &f in &flows {
            net.start_flow(f);
        }
        net.run_until(TimeStamp::from_secs(30));
        let total_timeouts: u64 = flows.iter().map(|&f| net.flow_stats(f).timeouts).sum();
        assert!(
            total_timeouts > 0,
            "congested DropTail should force timeouts"
        );
        assert!(net.queue_stats().dropped > 0);
    }

    #[test]
    fn ecn_flows_avoid_timeouts() {
        // The Figure 5 phenomenon: same congestion, RED+ECN marking,
        // no losses, no timeouts — CWND never collapses to 1.
        let mut net = quiet_net(QueueKind::red_default(150));
        let flows: Vec<FlowId> = (0..16).map(|_| net.add_tcp_flow(true)).collect();
        for (i, &f) in flows.iter().enumerate() {
            net.start_flow_at(f, TimeStamp::from_millis(250 * i as u64));
        }
        net.run_until(TimeStamp::from_secs(30));
        let total_timeouts: u64 = flows.iter().map(|&f| net.flow_stats(f).timeouts).sum();
        let total_cuts: u64 = flows.iter().map(|&f| net.flow_stats(f).ecn_cuts).sum();
        assert_eq!(total_timeouts, 0, "ECN avoids timeouts");
        assert!(total_cuts > 10, "ECN cuts replace losses, got {total_cuts}");
        assert!(net.queue_stats().marked > 0);
        assert_eq!(net.queue_stats().dropped, 0);
    }

    #[test]
    fn stopping_flows_frees_bandwidth() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let a = net.add_tcp_flow(false);
        let b = net.add_tcp_flow(false);
        net.start_flow(a);
        net.start_flow(b);
        net.run_until(TimeStamp::from_secs(10));
        net.stop_flow(b);
        assert!(!net.flow_active(b));
        let a_before = net.flow_delivered(a);
        let b_before = net.flow_delivered(b);
        net.run_until(TimeStamp::from_secs(20));
        let b_extra = net.flow_delivered(b) - b_before;
        let a_extra = net.flow_delivered(a) - a_before;
        assert!(
            b_extra < 100,
            "stopped flow only drains in-flight data ({b_extra})"
        );
        assert!(a_extra > 3000, "survivor takes over ({a_extra})");
    }

    #[test]
    fn mouse_flow_stops_after_limit() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let m = net.add_mouse_flow(false, 20);
        net.start_flow(m);
        net.run_until(TimeStamp::from_secs(5));
        assert!(!net.flow_active(m));
        let acked = net.flow_stats(m).packets_acked;
        assert!(
            (20..=20 + 64).contains(&acked),
            "mouse stops near its limit, acked {acked}"
        );
    }

    #[test]
    fn udp_cbr_is_paced() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let u = net.add_udp_flow(TimeDelta::from_millis(10));
        net.start_udp(u);
        net.run_until(TimeStamp::from_secs(1));
        let stats = net.udp_stats(u);
        assert!((99..=101).contains(&stats.sent), "sent {}", stats.sent);
        assert!(stats.delivered >= stats.sent - 5);
        net.stop_udp(u);
        let sent = net.udp_stats(u).sent;
        net.run_until(TimeStamp::from_secs(2));
        assert_eq!(net.udp_stats(u).sent, sent, "stopped UDP sends nothing");
    }

    #[test]
    fn udp_competes_with_tcp() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
        let t = net.add_tcp_flow(false);
        // 1500 B / 2 ms = 6 Mbit/s of inelastic traffic.
        let u = net.add_udp_flow(TimeDelta::from_millis(2));
        net.start_flow(t);
        net.start_udp(u);
        net.run_until(TimeStamp::from_secs(10));
        let tcp_goodput = net.goodput_bps(net.flow_delivered(t), TimeDelta::from_secs(10));
        assert!(
            tcp_goodput < 8_000_000.0,
            "TCP should yield to CBR, got {tcp_goodput:.0}"
        );
        assert!(net.udp_stats(u).delivered > 3000);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut net = Network::new(NetConfig {
                queue: QueueKind::red_default(60),
                seed,
                ..NetConfig::default()
            });
            let flows: Vec<FlowId> = (0..8).map(|_| net.add_tcp_flow(true)).collect();
            for &f in &flows {
                net.start_flow(f);
            }
            net.run_until(TimeStamp::from_secs(10));
            flows
                .iter()
                .map(|&f| net.flow_stats(f).packets_acked)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn queue_len_bounded_by_capacity() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 20 });
        for _ in 0..8 {
            let f = net.add_tcp_flow(false);
            net.start_flow(f);
        }
        let mut t = TimeStamp::ZERO;
        for _ in 0..200 {
            t += TimeDelta::from_millis(50);
            net.run_until(t);
            assert!(net.queue_len() <= 21, "queue {} over cap", net.queue_len());
        }
    }

    #[test]
    fn sack_ablation_fewer_timeouts_than_reno() {
        // The recovery-mechanism ablation: under identical DropTail
        // congestion, SACK flows repair multi-loss windows from the
        // scoreboard and suffer strictly fewer RTOs than Reno.
        let run = |sack: bool| {
            let mut net = quiet_net(QueueKind::DropTail { capacity: 50 });
            let flows: Vec<FlowId> = (0..16)
                .map(|_| net.add_tcp_flow_with(false, sack))
                .collect();
            for (i, &f) in flows.iter().enumerate() {
                net.start_flow_at(f, TimeStamp::from_millis(50 * i as u64));
            }
            net.run_until(TimeStamp::from_secs(30));
            let timeouts: u64 = flows.iter().map(|&f| net.flow_stats(f).timeouts).sum();
            let delivered: u64 = flows.iter().map(|&f| net.flow_delivered(f)).sum();
            (timeouts, delivered)
        };
        let (reno_rto, reno_goodput) = run(false);
        let (sack_rto, sack_goodput) = run(true);
        assert!(reno_rto > 0);
        assert!(
            sack_rto < reno_rto,
            "SACK ({sack_rto}) must time out less than Reno ({reno_rto})"
        );
        assert!(
            sack_goodput as f64 >= reno_goodput as f64 * 0.95,
            "SACK goodput {sack_goodput} should not trail Reno {reno_goodput}"
        );
    }

    #[test]
    fn random_loss_forces_recovery_but_data_flows() {
        let mut net = Network::new(NetConfig {
            loss_rate: 0.01,
            ..NetConfig::default()
        });
        let f = net.add_tcp_flow(false);
        net.start_flow(f);
        net.run_until(TimeStamp::from_secs(20));
        assert!(net.link_losses() > 0, "1% loss must hit some packets");
        let stats = net.flow_stats(f);
        assert!(stats.retransmits > 0, "losses get repaired");
        assert!(
            stats.packets_acked > 2000,
            "the flow still makes progress: {}",
            stats.packets_acked
        );
        // Random loss caps Reno throughput well below the loss-free
        // case (which delivers > 8 Mbit/s in 20 s ≈ 13000 packets).
        assert!(stats.packets_acked < 13_000);
    }

    #[test]
    fn sack_tolerates_random_loss_better_than_reno() {
        // The classic SACK result, on the nistnet loss knob.
        let run = |sack: bool| {
            let mut net = Network::new(NetConfig {
                loss_rate: 0.02,
                ..NetConfig::default()
            });
            let f = net.add_tcp_flow_with(false, sack);
            net.start_flow(f);
            net.run_until(TimeStamp::from_secs(30));
            (net.flow_stats(f).timeouts, net.flow_delivered(f))
        };
        let (reno_rto, reno_done) = run(false);
        let (sack_rto, sack_done) = run(true);
        assert!(
            sack_rto < reno_rto,
            "SACK timeouts {sack_rto} vs Reno {reno_rto}"
        );
        assert!(
            sack_done > reno_done,
            "SACK goodput {sack_done} vs {reno_done}"
        );
    }

    #[test]
    fn jitter_reorders_but_preserves_delivery() {
        let mut net = Network::new(NetConfig {
            jitter: TimeDelta::from_millis(15),
            ..NetConfig::default()
        });
        let f = net.add_tcp_flow_with(false, true);
        net.start_flow(f);
        net.run_until(TimeStamp::from_secs(15));
        let stats = net.flow_stats(f);
        // Reordering produces dupacks and possibly spurious fast
        // retransmits, but everything is delivered in order exactly
        // once at the application.
        assert!(stats.packets_acked > 1000, "acked {}", stats.packets_acked);
        assert_eq!(net.queue_stats().dropped, 0);
        assert_eq!(net.link_losses(), 0);
        assert!(
            net.flow_delivered(f) >= stats.packets_acked,
            "in-order delivery keeps up"
        );
    }

    #[test]
    fn time_advances_to_horizon_even_when_idle() {
        let mut net = quiet_net(QueueKind::DropTail { capacity: 10 });
        net.run_until(TimeStamp::from_secs(3));
        assert_eq!(net.now(), TimeStamp::from_secs(3));
    }
}
