//! `netsim` — a discrete-event network simulator for the gscope
//! workspace.
//!
//! The paper's showcase experiment (§2, Figures 4–5) runs the `mxtraf`
//! traffic generator across a real testbed: a server, a Linux router
//! with `nistnet` adding delay and bandwidth constraints, and a client.
//! That hardware is substituted here by a faithful packet-level
//! simulation:
//!
//! * [`Network`] — bottleneck router (configurable bandwidth, one-way
//!   propagation delay, queue discipline), TCP and UDP flows, a
//!   deterministic event queue.
//! * [`QueueKind`] — DropTail and RED-with-ECN queue disciplines.
//! * [`TcpSender`] / [`TcpReceiver`] — Reno congestion control (slow
//!   start, AIMD, fast retransmit/recovery, RFC 6298 RTO with backoff)
//!   with the RFC 3168 ECN reaction.
//! * [`Mxtraf`] — the workload driver: dynamically adjustable elephant
//!   count, Poisson mice, UDP CBR mix.
//!
//! The phenomena the figures depend on emerge from these mechanics:
//! congested DropTail queues force retransmission timeouts that collapse
//! a Reno flow's CWND to one, while RED+ECN marks early and the same
//! congestion level produces window halvings but no timeouts.

mod driver;
pub mod link;
mod queue;
mod sim;
mod tcp;

pub use driver::{Mxtraf, MxtrafConfig};
pub use link::{LinkClock, LinkConfig, SimConn};
pub use queue::{EnqueueOutcome, QueueDiscipline, QueueKind, QueueStats};
pub use sim::{FlowId, NetConfig, Network, UdpStats};
pub use tcp::{
    AckInfo, CcState, SenderOp, SenderStats, TcpReceiver, TcpSender, MAX_WINDOW, RTO_MAX, RTO_MIN,
};
