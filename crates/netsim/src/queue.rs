//! Router queue disciplines: DropTail and RED with ECN marking.
//!
//! The paper's experiment (§2) compares TCP and ECN flows through a
//! Linux router emulating a congested wide-area link. The router model
//! here supports the two disciplines that comparison needs:
//!
//! * [`QueueKind::DropTail`] — drop arrivals when the buffer is full;
//!   this is what forces retransmission timeouts onto standard TCP.
//! * [`QueueKind::Red`] — Random Early Detection with ECN: as the
//!   *average* queue grows past `min_th`, arrivals are probabilistically
//!   marked (Congestion Experienced) instead of dropped, so ECN-capable
//!   senders back off without losing packets (Floyd, CCR 1994).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the queue did with an arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted unchanged.
    Accepted,
    /// Accepted with the CE (congestion experienced) bit set.
    Marked,
    /// Dropped.
    Dropped,
}

/// Queue discipline selection and parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueKind {
    /// FIFO, tail-drop at `capacity` packets.
    DropTail {
        /// Buffer size in packets.
        capacity: usize,
    },
    /// RED with ECN marking.
    Red {
        /// Physical buffer size in packets (tail-drop backstop).
        capacity: usize,
        /// Average queue length where marking begins.
        min_th: f64,
        /// Average queue length where marking probability reaches
        /// `max_p` (beyond it, every ECN packet is marked).
        max_th: f64,
        /// Marking probability at `max_th`.
        max_p: f64,
        /// EWMA weight for the average queue estimate.
        weight: f64,
    },
}

impl QueueKind {
    /// The paper-calibrated RED defaults for a `capacity`-packet buffer.
    ///
    /// Tuned to mark early and respond quickly (weight 0.05) so that
    /// ECN feedback, not physical overflow, is the congestion signal —
    /// the regime the Figure 5 experiment demonstrates.
    pub fn red_default(capacity: usize) -> QueueKind {
        QueueKind::Red {
            capacity,
            min_th: capacity as f64 * 0.10,
            max_th: capacity as f64 * 0.40,
            max_p: 0.3,
            weight: 0.05,
        }
    }

    /// Buffer capacity in packets.
    pub fn capacity(&self) -> usize {
        match *self {
            QueueKind::DropTail { capacity } | QueueKind::Red { capacity, .. } => capacity,
        }
    }
}

/// Statistics for a router queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted (marked or not).
    pub accepted: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets CE-marked.
    pub marked: u64,
    /// Peak instantaneous occupancy.
    pub peak_len: usize,
}

/// The admission-control half of a router queue (occupancy is tracked by
/// the caller, which owns the actual packet FIFO).
#[derive(Debug)]
pub struct QueueDiscipline {
    kind: QueueKind,
    /// EWMA of queue length (RED).
    avg: f64,
    /// Packets since the last mark/drop (RED's uniformization counter).
    count_since_mark: u64,
    rng: StdRng,
    stats: QueueStats,
}

impl QueueDiscipline {
    /// Creates a discipline with a deterministic RNG seed.
    pub fn new(kind: QueueKind, seed: u64) -> Self {
        QueueDiscipline {
            kind,
            avg: 0.0,
            count_since_mark: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: QueueStats::default(),
        }
    }

    /// Returns the discipline parameters.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// Returns queue statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Current RED average-queue estimate (0 for DropTail).
    pub fn avg_len(&self) -> f64 {
        self.avg
    }

    /// Decides the fate of an arrival given the *current* queue length
    /// `qlen` (before this packet) and whether the packet's flow is
    /// ECN-capable.
    pub fn admit(&mut self, qlen: usize, ecn_capable: bool) -> EnqueueOutcome {
        let capacity = self.kind.capacity();
        let outcome = match self.kind {
            QueueKind::DropTail { .. } => {
                if qlen >= capacity {
                    EnqueueOutcome::Dropped
                } else {
                    EnqueueOutcome::Accepted
                }
            }
            QueueKind::Red {
                min_th,
                max_th,
                max_p,
                weight,
                ..
            } => {
                self.avg = (1.0 - weight) * self.avg + weight * qlen as f64;
                if qlen >= capacity {
                    // Physical overflow: nothing RED can do.
                    EnqueueOutcome::Dropped
                } else if self.avg < min_th {
                    EnqueueOutcome::Accepted
                } else {
                    let congestion_signal = if self.avg >= max_th {
                        true
                    } else {
                        let p_base = max_p * (self.avg - min_th) / (max_th - min_th);
                        // Uniformize marking intervals (classic RED).
                        let p = p_base / (1.0 - (self.count_since_mark as f64) * p_base).max(1e-9);
                        self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
                    };
                    if congestion_signal {
                        if ecn_capable {
                            EnqueueOutcome::Marked
                        } else {
                            EnqueueOutcome::Dropped
                        }
                    } else {
                        EnqueueOutcome::Accepted
                    }
                }
            }
        };
        match outcome {
            EnqueueOutcome::Accepted => {
                self.count_since_mark += 1;
                self.stats.accepted += 1;
                self.stats.peak_len = self.stats.peak_len.max(qlen + 1);
            }
            EnqueueOutcome::Marked => {
                self.count_since_mark = 0;
                self.stats.accepted += 1;
                self.stats.marked += 1;
                self.stats.peak_len = self.stats.peak_len.max(qlen + 1);
            }
            EnqueueOutcome::Dropped => {
                self.count_since_mark = 0;
                self.stats.dropped += 1;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn droptail_accepts_until_full() {
        let mut q = QueueDiscipline::new(QueueKind::DropTail { capacity: 3 }, 1);
        assert_eq!(q.admit(0, false), EnqueueOutcome::Accepted);
        assert_eq!(q.admit(1, false), EnqueueOutcome::Accepted);
        assert_eq!(q.admit(2, false), EnqueueOutcome::Accepted);
        assert_eq!(q.admit(3, false), EnqueueOutcome::Dropped);
        assert_eq!(q.stats().accepted, 3);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().peak_len, 3);
    }

    #[test]
    fn droptail_never_marks() {
        let mut q = QueueDiscipline::new(QueueKind::DropTail { capacity: 10 }, 1);
        for i in 0..10 {
            assert_ne!(q.admit(i, true), EnqueueOutcome::Marked);
        }
        assert_eq!(q.stats().marked, 0);
    }

    #[test]
    fn red_quiet_queue_accepts_everything() {
        let mut q = QueueDiscipline::new(QueueKind::red_default(100), 7);
        for _ in 0..100 {
            assert_eq!(q.admit(2, true), EnqueueOutcome::Accepted);
        }
        assert_eq!(q.stats().marked, 0);
    }

    #[test]
    fn red_marks_ecn_flows_under_sustained_load() {
        let mut q = QueueDiscipline::new(QueueKind::red_default(100), 7);
        let mut marked = 0;
        for _ in 0..500 {
            if q.admit(60, true) == EnqueueOutcome::Marked {
                marked += 1;
            }
        }
        assert!(
            marked > 50,
            "sustained high queue should mark, got {marked}"
        );
        assert_eq!(q.stats().dropped, 0, "ECN marks instead of dropping");
    }

    #[test]
    fn red_drops_non_ecn_flows_under_sustained_load() {
        let mut q = QueueDiscipline::new(QueueKind::red_default(100), 7);
        let mut dropped = 0;
        for _ in 0..500 {
            if q.admit(60, false) == EnqueueOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 50, "non-ECN traffic gets dropped, got {dropped}");
        assert_eq!(q.stats().marked, 0);
    }

    #[test]
    fn red_physical_overflow_drops_even_ecn() {
        let mut q = QueueDiscipline::new(QueueKind::red_default(10), 7);
        assert_eq!(q.admit(10, true), EnqueueOutcome::Dropped);
    }

    #[test]
    fn red_average_tracks_slowly() {
        let mut q = QueueDiscipline::new(QueueKind::red_default(100), 7);
        q.admit(50, true);
        let one = q.avg_len();
        assert!(one > 0.0 && one < 5.0, "EWMA moves gradually, got {one}");
        for _ in 0..600 {
            q.admit(50, true);
        }
        assert!(q.avg_len() > 40.0, "EWMA converges, got {}", q.avg_len());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut q = QueueDiscipline::new(QueueKind::red_default(50), seed);
            (0..200).map(|_| q.admit(20, true)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }
}
