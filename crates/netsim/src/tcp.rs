//! TCP Reno congestion control with optional ECN, as pure state
//! machines.
//!
//! The Figures 4–5 experiment hinges on the difference between standard
//! TCP (losses at a DropTail router, some of which can only be repaired
//! by a retransmission timeout that collapses CWND to one) and ECN
//! (early marks at a RED router let senders halve their window without
//! losing anything, so CWND never collapses). The sender below
//! implements Reno slow start, congestion avoidance, fast
//! retransmit/fast recovery, RFC 6298 RTO estimation with exponential
//! backoff and go-back-N timeout recovery, plus the ECN reaction of
//! RFC 3168 (at most one window cut per RTT).
//!
//! Senders and receivers are event-free: they consume ACKs/packets and
//! emit [`SenderOp`]s the simulator interprets, which keeps them
//! unit-testable without a network.

use std::collections::{BTreeSet, HashMap};

use gel::{TimeDelta, TimeStamp};

/// Upper bound the receiver window imposes on the sender, in packets.
pub const MAX_WINDOW: f64 = 64.0;
/// Minimum retransmission timeout (Linux-flavoured 200 ms).
pub const RTO_MIN: TimeDelta = TimeDelta::from_millis(200);
/// Maximum (backed-off) retransmission timeout.
pub const RTO_MAX: TimeDelta = TimeDelta::from_secs(60);

/// Congestion-control phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcState {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Linear growth above `ssthresh`.
    CongestionAvoidance,
    /// Reno fast recovery after a fast retransmit.
    FastRecovery,
}

/// Instructions a sender hands back to the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderOp {
    /// Transmit the packet with this sequence number.
    Send {
        /// Packet sequence number (packets, not bytes; MSS-sized).
        seq: u64,
        /// True if this sequence number was sent before.
        retransmit: bool,
    },
    /// (Re)arm the retransmission timer: fire at `deadline` unless a
    /// newer generation supersedes it.
    ArmRto {
        /// Timer generation; stale firings are ignored.
        generation: u64,
        /// Absolute fire time.
        deadline: TimeStamp,
    },
}

/// Counters for one TCP sender.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data packets transmitted (including retransmissions).
    pub packets_sent: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Retransmission timeouts suffered — the paper's key signal: each
    /// one collapses CWND to 1.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Window reductions caused by ECN echoes.
    pub ecn_cuts: u64,
    /// Highest cumulative ACK received (packets delivered in order).
    pub packets_acked: u64,
}

/// A Reno/ECN TCP sender for one bulk-transfer flow.
#[derive(Debug)]
pub struct TcpSender {
    /// Flow is actively sending new data.
    active: bool,
    /// ECN-capable transport.
    ecn: bool,
    /// Selective acknowledgements negotiated.
    sack: bool,
    /// First unacknowledged sequence number.
    una: u64,
    /// Next sequence number to send.
    nxt: u64,
    /// Highest sequence number ever sent (for retransmit detection).
    max_sent: Option<u64>,
    cwnd: f64,
    ssthresh: f64,
    state: CcState,
    dup_acks: u32,
    /// Highest seq outstanding when fast recovery began.
    recover: u64,
    // RFC 6298 estimator state.
    srtt: Option<TimeDelta>,
    rttvar: TimeDelta,
    rto: TimeDelta,
    /// Send times of first transmissions (Karn's algorithm).
    send_times: HashMap<u64, TimeStamp>,
    timer_generation: u64,
    /// Last ECN-induced cut, for the once-per-RTT rule.
    last_ecn_cut: Option<TimeStamp>,
    /// SACK scoreboard: sequences the receiver holds above `una`.
    sacked: BTreeSet<u64>,
    /// Holes retransmitted in the current recovery episode.
    rexmitted: BTreeSet<u64>,
    stats: SenderStats,
}

impl TcpSender {
    /// Creates an idle Reno sender; `ecn` selects the ECN-capable
    /// variant.
    pub fn new(ecn: bool) -> Self {
        Self::with_options(ecn, false)
    }

    /// Creates an idle sender with explicit ECN and SACK options.
    ///
    /// With SACK, losses are repaired from the receiver's scoreboard
    /// (holes retransmitted individually during recovery) instead of
    /// Reno's go-back-N — the option whose kernel interaction §2 of the
    /// paper recounts debugging with gscope.
    pub fn with_options(ecn: bool, sack: bool) -> Self {
        TcpSender {
            active: false,
            ecn,
            sack,
            una: 0,
            nxt: 0,
            max_sent: None,
            cwnd: 2.0,
            ssthresh: MAX_WINDOW,
            state: CcState::SlowStart,
            dup_acks: 0,
            recover: 0,
            srtt: None,
            rttvar: TimeDelta::ZERO,
            rto: TimeDelta::from_secs(1),
            send_times: HashMap::new(),
            timer_generation: 0,
            last_ecn_cut: None,
            sacked: BTreeSet::new(),
            rexmitted: BTreeSet::new(),
            stats: SenderStats::default(),
        }
    }

    /// Current congestion window in packets (the CWND signal of
    /// Figures 4–5).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Current congestion-control phase.
    pub fn state(&self) -> CcState {
        self.state
    }

    /// Current RTO estimate.
    pub fn rto(&self) -> TimeDelta {
        self.rto
    }

    /// Smoothed RTT, once sampled.
    pub fn srtt(&self) -> Option<TimeDelta> {
        self.srtt
    }

    /// Sender statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// True while the flow sends new data.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True if this sender negotiated ECN.
    pub fn is_ecn(&self) -> bool {
        self.ecn
    }

    /// True if this sender negotiated SACK.
    pub fn is_sack(&self) -> bool {
        self.sack
    }

    /// Packets in flight.
    pub fn flight_size(&self) -> u64 {
        self.nxt.saturating_sub(self.una)
    }

    /// Activates the flow and emits the initial window.
    pub fn start(&mut self, now: TimeStamp) -> Vec<SenderOp> {
        self.active = true;
        self.fill_window(now)
    }

    /// Marks the flow active without transmitting yet (used for
    /// deferred starts: the simulator sends the initial window when the
    /// start event fires).
    pub fn activate(&mut self) {
        self.active = true;
    }

    /// Deactivates the flow; in-flight data drains but nothing new is
    /// sent.
    pub fn stop(&mut self) {
        self.active = false;
    }

    fn effective_window(&self) -> u64 {
        self.cwnd.min(MAX_WINDOW).floor().max(1.0) as u64
    }

    fn arm_rto(&mut self, now: TimeStamp, ops: &mut Vec<SenderOp>) {
        self.timer_generation += 1;
        ops.push(SenderOp::ArmRto {
            generation: self.timer_generation,
            deadline: now + self.rto,
        });
    }

    fn fill_window(&mut self, now: TimeStamp) -> Vec<SenderOp> {
        let mut ops = Vec::new();
        if !self.active && self.nxt >= self.una {
            // Even inactive flows must repair losses of in-flight data;
            // only *new* data stops.
        }
        let window_end = self.una + self.effective_window();
        let mut sent_any = false;
        while self.nxt < window_end {
            if !self.active && self.max_sent.is_some_and(|m| self.nxt > m) {
                break;
            }
            let retransmit = self.max_sent.is_some_and(|m| self.nxt <= m);
            if retransmit {
                self.stats.retransmits += 1;
                self.send_times.remove(&self.nxt);
            } else {
                self.send_times.insert(self.nxt, now);
                self.max_sent = Some(self.nxt);
            }
            ops.push(SenderOp::Send {
                seq: self.nxt,
                retransmit,
            });
            self.stats.packets_sent += 1;
            self.nxt += 1;
            sent_any = true;
        }
        if sent_any {
            self.arm_rto(now, &mut ops);
        }
        ops
    }

    fn sample_rtt(&mut self, now: TimeStamp, ackno: u64) {
        // Sample from the most recent first-transmission covered by
        // this cumulative ACK (Karn: retransmitted seqs were removed).
        let Some((&seq, &sent)) = self
            .send_times
            .iter()
            .filter(|(&s, _)| s < ackno)
            .max_by_key(|(&s, _)| s)
        else {
            return;
        };
        let r = now.saturating_since(sent);
        self.send_times.retain(|&s, _| s >= ackno);
        let _ = seq;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = TimeDelta::from_micros(r.as_micros() / 2);
            }
            Some(srtt) => {
                let diff = if srtt > r {
                    srtt.as_micros() - r.as_micros()
                } else {
                    r.as_micros() - srtt.as_micros()
                };
                self.rttvar = TimeDelta::from_micros((3 * self.rttvar.as_micros() + diff) / 4);
                self.srtt = Some(TimeDelta::from_micros(
                    (7 * srtt.as_micros() + r.as_micros()) / 8,
                ));
            }
        }
        let computed = TimeDelta::from_micros(
            self.srtt.expect("just set").as_micros() + 4 * self.rttvar.as_micros().max(2_500),
        );
        self.rto = computed.max(RTO_MIN).min(RTO_MAX);
    }

    fn halve_window(&mut self) {
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.state = CcState::CongestionAvoidance;
    }

    /// FACK pipe-driven (re)transmission during SACK recovery
    /// (Mathis & Mahdavi's forward acknowledgement): the volume in
    /// flight is estimated as everything past the highest SACKed
    /// sequence plus unacknowledged retransmissions, and while it is
    /// below cwnd the sender first repairs the lowest scoreboard hole,
    /// then sends new data to keep the ACK clock alive.
    fn sack_pipe_fill(&mut self, now: TimeStamp, ops: &mut Vec<SenderOp>) {
        let fack = self
            .sacked
            .iter()
            .next_back()
            .map(|&h| h + 1)
            .unwrap_or(self.una)
            .max(self.una);
        let limit = self.cwnd.min(MAX_WINDOW).floor().max(1.0) as u64;
        loop {
            let retran = self
                .rexmitted
                .iter()
                .filter(|&&r| !self.sacked.contains(&r))
                .count() as u64;
            let awnd = self.nxt.saturating_sub(fack) + retran;
            if awnd >= limit {
                break;
            }
            let hole =
                (self.una..fack).find(|q| !self.sacked.contains(q) && !self.rexmitted.contains(q));
            if let Some(hole) = hole {
                self.rexmitted.insert(hole);
                self.send_times.remove(&hole);
                self.stats.retransmits += 1;
                self.stats.packets_sent += 1;
                ops.push(SenderOp::Send {
                    seq: hole,
                    retransmit: true,
                });
            } else if self.active && self.nxt.saturating_sub(self.una) < MAX_WINDOW as u64 {
                let retransmit = self.max_sent.is_some_and(|m| self.nxt <= m);
                if retransmit {
                    self.stats.retransmits += 1;
                    self.send_times.remove(&self.nxt);
                } else {
                    self.send_times.insert(self.nxt, now);
                    self.max_sent = Some(self.nxt);
                }
                self.stats.packets_sent += 1;
                ops.push(SenderOp::Send {
                    seq: self.nxt,
                    retransmit,
                });
                self.nxt += 1;
            } else {
                break;
            }
        }
    }

    /// Processes a cumulative ACK (`ackno` = next expected seq at the
    /// receiver) with its ECN-echo flag and any selective-ACK report
    /// (`sack`: sequences the receiver holds above `ackno`; ignored by
    /// non-SACK senders).
    pub fn on_ack(&mut self, now: TimeStamp, ackno: u64, ece: bool, sack: &[u64]) -> Vec<SenderOp> {
        let mut ops = Vec::new();
        if self.sack {
            for &seq in sack {
                if seq >= self.una {
                    self.sacked.insert(seq);
                }
            }
        }
        // ECN reaction (RFC 3168): at most one cut per RTT, never while
        // already recovering.
        if ece && self.ecn && self.state != CcState::FastRecovery {
            let rtt = self.srtt.unwrap_or(TimeDelta::from_millis(100));
            let due = match self.last_ecn_cut {
                None => true,
                Some(t) => now.saturating_since(t) >= rtt,
            };
            if due {
                self.halve_window();
                self.last_ecn_cut = Some(now);
                self.stats.ecn_cuts += 1;
            }
        }
        if ackno > self.una {
            let newly_acked = ackno - self.una;
            self.stats.packets_acked = self.stats.packets_acked.max(ackno);
            self.sample_rtt(now, ackno);
            self.una = ackno;
            self.dup_acks = 0;
            self.sacked.retain(|&s| s >= ackno);
            self.rexmitted.retain(|&s| s >= ackno);
            if self.nxt < self.una {
                // Go-back-N rewound nxt below data that was acked late.
                self.nxt = self.una;
            }
            match self.state {
                CcState::FastRecovery => {
                    if ackno > self.recover {
                        // Full recovery: deflate to ssthresh.
                        self.cwnd = self.ssthresh;
                        self.state = CcState::CongestionAvoidance;
                        self.rexmitted.clear();
                    } else if self.sack {
                        // Partial ACK with SACK: stay in recovery; the
                        // pipe fill below repairs the next holes as
                        // capacity frees up.
                    } else {
                        // Partial ACK (classic Reno exits anyway).
                        self.cwnd = self.ssthresh;
                        self.state = CcState::CongestionAvoidance;
                    }
                }
                CcState::SlowStart => {
                    self.cwnd += newly_acked as f64;
                    if self.cwnd >= self.ssthresh {
                        self.state = CcState::CongestionAvoidance;
                    }
                }
                CcState::CongestionAvoidance => {
                    self.cwnd += newly_acked as f64 / self.cwnd;
                }
            }
            self.cwnd = self.cwnd.min(MAX_WINDOW);
            if self.una == self.nxt {
                // Everything acked: timer conceptually stops (stale
                // generations are ignored when nothing is outstanding).
                self.timer_generation += 1;
            } else {
                self.arm_rto(now, &mut ops);
            }
            if self.sack && self.state == CcState::FastRecovery {
                self.sack_pipe_fill(now, &mut ops);
            } else {
                ops.extend(self.fill_window(now));
            }
        } else if self.flight_size() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            match self.state {
                CcState::FastRecovery => {
                    if self.sack {
                        // SACK recovery: the scoreboard advanced; let
                        // the pipe estimate decide what to repair or
                        // send next.
                        self.sack_pipe_fill(now, &mut ops);
                    } else {
                        // Reno: window inflation per extra dupack.
                        self.cwnd = (self.cwnd + 1.0).min(MAX_WINDOW + self.dup_acks as f64);
                        ops.extend(self.fill_window(now));
                    }
                }
                _ if self.dup_acks == 3 => {
                    // Fast retransmit.
                    self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
                    self.recover = self.nxt.saturating_sub(1);
                    self.state = CcState::FastRecovery;
                    self.stats.fast_retransmits += 1;
                    self.stats.retransmits += 1;
                    self.stats.packets_sent += 1;
                    self.send_times.remove(&self.una);
                    self.rexmitted.insert(self.una);
                    ops.push(SenderOp::Send {
                        seq: self.una,
                        retransmit: true,
                    });
                    self.arm_rto(now, &mut ops);
                    if self.sack {
                        // FACK recovery: halve once; the pipe estimate
                        // paces everything from here.
                        self.cwnd = self.ssthresh;
                        self.sack_pipe_fill(now, &mut ops);
                    } else {
                        self.cwnd = self.ssthresh + 3.0;
                    }
                }
                _ => {}
            }
        }
        ops
    }

    /// Handles a retransmission-timer firing.
    ///
    /// Stale generations and firings with nothing outstanding are
    /// no-ops. A genuine timeout is the paper's CWND→1 event: slow
    /// start restarts from one packet and the RTO backs off
    /// exponentially.
    pub fn on_rto(&mut self, now: TimeStamp, generation: u64) -> Vec<SenderOp> {
        if generation != self.timer_generation || self.flight_size() == 0 {
            return Vec::new();
        }
        self.stats.timeouts += 1;
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.state = CcState::SlowStart;
        self.dup_acks = 0;
        self.rto = TimeDelta::from_micros((self.rto.as_micros() * 2).min(RTO_MAX.as_micros()));
        // Go-back-N: rewind and retransmit from the hole. (A SACK
        // sender's scoreboard is stale after a timeout; RFC 2018 says
        // to discard it.)
        self.nxt = self.una;
        self.sacked.clear();
        self.rexmitted.clear();
        // Outstanding first-transmission timestamps are now useless
        // (Karn's algorithm).
        self.send_times.clear();
        self.fill_window(now)
    }
}

/// Cumulative-ACK information produced by the receiver for each data
/// packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckInfo {
    /// Next expected sequence number.
    pub ackno: u64,
    /// ECN echo: the delivered packet carried a CE mark.
    pub ece: bool,
}

/// A TCP receiver producing cumulative ACKs (no delayed ACKs).
#[derive(Debug, Default)]
pub struct TcpReceiver {
    expected: u64,
    out_of_order: BTreeSet<u64>,
    /// Packets delivered to the application in order.
    delivered: u64,
    /// Duplicate (already-delivered) packets seen.
    duplicates: u64,
}

impl TcpReceiver {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// In-order packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Duplicate deliveries observed (go-back-N causes some).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Reports up to `max` out-of-order sequences held above the
    /// cumulative ACK — the SACK blocks (RFC 2018, packet granularity).
    pub fn sack_report(&self, max: usize) -> Vec<u64> {
        self.out_of_order.iter().copied().take(max).collect()
    }

    /// Consumes a data packet and produces the ACK to send back.
    pub fn on_packet(&mut self, seq: u64, ce_marked: bool) -> AckInfo {
        if seq == self.expected {
            self.expected += 1;
            self.delivered += 1;
            // Consume contiguous out-of-order data.
            while self.out_of_order.remove(&self.expected) {
                self.expected += 1;
                self.delivered += 1;
            }
        } else if seq > self.expected {
            self.out_of_order.insert(seq);
        } else {
            self.duplicates += 1;
        }
        AckInfo {
            ackno: self.expected,
            ece: ce_marked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TimeStamp = TimeStamp::from_millis(1000);

    fn sends(ops: &[SenderOp]) -> Vec<u64> {
        ops.iter()
            .filter_map(|op| match op {
                SenderOp::Send { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_sends_initial_window_and_arms_timer() {
        let mut s = TcpSender::new(false);
        let ops = s.start(T0);
        assert_eq!(sends(&ops), vec![0, 1], "initial cwnd of 2");
        assert!(ops.iter().any(|op| matches!(op, SenderOp::ArmRto { .. })));
        assert_eq!(s.flight_size(), 2);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(false);
        s.start(T0);
        let t1 = T0 + TimeDelta::from_millis(50);
        let ops = s.on_ack(t1, 1, false, &[]);
        // cwnd 2→3: one newly allowed packet beyond the existing one in
        // flight (seq 2, 3 now fit: window end = 1+3 = 4, nxt was 2).
        assert_eq!(sends(&ops), vec![2, 3]);
        assert_eq!(s.cwnd(), 3.0);
        let t2 = T0 + TimeDelta::from_millis(60);
        s.on_ack(t2, 2, false, &[]);
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(s.state(), CcState::SlowStart);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut s = TcpSender::new(false);
        s.ssthresh = 4.0;
        s.start(T0);
        let mut t = T0;
        let mut ack = 0;
        for _ in 0..20 {
            t += TimeDelta::from_millis(10);
            ack += 1;
            s.on_ack(t, ack, false, &[]);
        }
        assert_eq!(s.state(), CcState::CongestionAvoidance);
        // After reaching ssthresh=4, growth is ~1/cwnd per ack.
        assert!(s.cwnd() > 4.0 && s.cwnd() < 12.0, "cwnd {}", s.cwnd());
    }

    #[test]
    fn rtt_estimator_converges() {
        let mut s = TcpSender::new(false);
        let mut ops = s.start(T0);
        let mut t = T0;
        for _ in 0..30 {
            // Ack the entire outstanding window 40 ms after it was
            // sent: a constant 40 ms RTT.
            let highest = sends(&ops).into_iter().max().unwrap();
            t += TimeDelta::from_millis(40);
            ops = s.on_ack(t, highest + 1, false, &[]);
            assert!(!sends(&ops).is_empty(), "window reopens after full ack");
        }
        let srtt = s.srtt().unwrap();
        assert!(
            (srtt.as_millis() as i64 - 40).abs() <= 2,
            "srtt {srtt} should approach 40 ms"
        );
        assert_eq!(s.rto(), RTO_MIN, "low-variance RTT clamps to RTO_MIN");
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(false);
        s.cwnd = 8.0;
        s.start(T0);
        assert_eq!(s.flight_size(), 8);
        let t = T0 + TimeDelta::from_millis(50);
        // Packet 0 lost: receiver acks 0 for packets 1, 2, 3.
        assert!(sends(&s.on_ack(t, 0, false, &[])).is_empty());
        assert!(sends(&s.on_ack(t, 0, false, &[])).is_empty());
        let ops = s.on_ack(t, 0, false, &[]);
        assert_eq!(sends(&ops), vec![0], "third dupack retransmits the hole");
        assert_eq!(s.state(), CcState::FastRecovery);
        assert_eq!(s.stats().fast_retransmits, 1);
        assert_eq!(s.ssthresh(), 4.0);
        // Recovery completes on a new ACK.
        let ops = s.on_ack(t + TimeDelta::from_millis(40), 8, false, &[]);
        assert_eq!(s.state(), CcState::CongestionAvoidance);
        assert_eq!(s.cwnd(), 4.0);
        let _ = ops;
    }

    #[test]
    fn timeout_collapses_cwnd_to_one() {
        let mut s = TcpSender::new(false);
        s.cwnd = 8.0;
        let ops = s.start(T0);
        let gen = ops
            .iter()
            .find_map(|op| match op {
                SenderOp::ArmRto { generation, .. } => Some(*generation),
                _ => None,
            })
            .unwrap();
        let rto_before = s.rto();
        let ops = s.on_rto(T0 + rto_before, gen);
        assert_eq!(s.cwnd(), 1.0, "the paper's CWND=1 event");
        assert_eq!(s.state(), CcState::SlowStart);
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(sends(&ops), vec![0], "go-back-N resends the hole");
        assert!(s.rto() > rto_before, "exponential backoff");
    }

    #[test]
    fn stale_timer_generation_is_ignored() {
        let mut s = TcpSender::new(false);
        let ops = s.start(T0);
        let gen = ops
            .iter()
            .find_map(|op| match op {
                SenderOp::ArmRto { generation, .. } => Some(*generation),
                _ => None,
            })
            .unwrap();
        // An ACK re-arms the timer; the old generation must be stale.
        s.on_ack(T0 + TimeDelta::from_millis(10), 1, false, &[]);
        assert!(s.on_rto(T0 + TimeDelta::from_secs(2), gen).is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn ecn_echo_halves_without_timeout() {
        let mut s = TcpSender::new(true);
        s.cwnd = 16.0;
        s.start(T0);
        let t = T0 + TimeDelta::from_millis(50);
        s.on_ack(t, 1, true, &[]);
        assert!(s.cwnd() < 16.0 && s.cwnd() >= 2.0);
        assert_eq!(s.stats().ecn_cuts, 1);
        assert_eq!(s.stats().timeouts, 0);
        let after_first = s.cwnd();
        // A second ECE within the same RTT must not cut again.
        s.on_ack(t + TimeDelta::from_millis(1), 2, true, &[]);
        assert!(s.cwnd() >= after_first, "once-per-RTT rule");
        assert_eq!(s.stats().ecn_cuts, 1);
    }

    #[test]
    fn non_ecn_sender_ignores_ece() {
        let mut s = TcpSender::new(false);
        s.cwnd = 16.0;
        s.start(T0);
        s.on_ack(T0 + TimeDelta::from_millis(50), 1, true, &[]);
        assert_eq!(s.stats().ecn_cuts, 0);
        assert!(s.cwnd() >= 16.0);
    }

    #[test]
    fn stopped_flow_sends_no_new_data() {
        let mut s = TcpSender::new(false);
        s.start(T0);
        s.stop();
        let ops = s.on_ack(T0 + TimeDelta::from_millis(10), 1, false, &[]);
        assert!(sends(&ops).is_empty(), "no new data after stop");
        s.on_ack(T0 + TimeDelta::from_millis(20), 2, false, &[]);
        assert_eq!(s.flight_size(), 0);
    }

    #[test]
    fn receiver_cumulative_and_out_of_order() {
        let mut r = TcpReceiver::new();
        assert_eq!(
            r.on_packet(0, false),
            AckInfo {
                ackno: 1,
                ece: false
            }
        );
        // Loss of 1: packets 2, 3 produce dupacks of 1.
        assert_eq!(r.on_packet(2, false).ackno, 1);
        assert_eq!(r.on_packet(3, false).ackno, 1);
        // Retransmitted 1 fills the hole: cumulative jump to 4.
        assert_eq!(r.on_packet(1, false).ackno, 4);
        assert_eq!(r.delivered(), 4);
        // A stale duplicate re-acks and is counted.
        assert_eq!(r.on_packet(0, false).ackno, 4);
        assert_eq!(r.duplicates(), 1);
    }

    #[test]
    fn receiver_echoes_ce_marks() {
        let mut r = TcpReceiver::new();
        assert!(!r.on_packet(0, false).ece);
        assert!(r.on_packet(1, true).ece);
        assert!(!r.on_packet(2, false).ece);
    }

    #[test]
    fn sack_repairs_multiple_holes_without_timeout() {
        // Two losses in one window: Reno would need an RTO for the
        // second; SACK repairs both inside fast recovery.
        let mut s = TcpSender::with_options(false, true);
        s.cwnd = 10.0;
        s.start(T0);
        assert_eq!(s.flight_size(), 10);
        let t = T0 + TimeDelta::from_millis(50);
        // Packets 0 and 3 lost; receiver holds 1,2 and 4..10.
        // Dupacks of 0 with growing SACK reports.
        s.on_ack(t, 0, false, &[1, 2]);
        s.on_ack(t, 0, false, &[1, 2, 4]);
        let ops = s.on_ack(t, 0, false, &[1, 2, 4, 5]);
        assert_eq!(sends(&ops), vec![0], "fast retransmit of the hole");
        assert_eq!(s.state(), CcState::FastRecovery);
        // Next dupack: SACK retransmits hole 3 (not already-SACKed 1,2).
        let ops = s.on_ack(t, 0, false, &[1, 2, 4, 5, 6]);
        assert!(
            sends(&ops).contains(&3),
            "scoreboard repairs the second hole: {:?}",
            sends(&ops)
        );
        // Partial ack to 3 (0..2 arrived): stays in recovery, no
        // duplicate retransmission of already-repaired holes.
        let t2 = t + TimeDelta::from_millis(40);
        let ops = s.on_ack(t2, 3, false, &[4, 5, 6, 7, 8, 9]);
        assert_eq!(
            s.state(),
            CcState::FastRecovery,
            "partial ack holds recovery"
        );
        // Full ack: clean exit, no timeout ever fired.
        let ops2 = s.on_ack(t2 + TimeDelta::from_millis(5), 10, false, &[]);
        assert_eq!(s.state(), CcState::CongestionAvoidance);
        assert_eq!(s.stats().timeouts, 0);
        let _ = (ops, ops2);
    }

    #[test]
    fn non_sack_sender_ignores_sack_blocks() {
        let mut s = TcpSender::new(false);
        s.cwnd = 8.0;
        s.start(T0);
        let t = T0 + TimeDelta::from_millis(50);
        s.on_ack(t, 0, false, &[1, 2]);
        s.on_ack(t, 0, false, &[1, 2, 3]);
        let ops = s.on_ack(t, 0, false, &[1, 2, 3, 4]);
        assert_eq!(sends(&ops), vec![0]);
        // A further dupack inflates but does NOT hole-retransmit.
        let ops = s.on_ack(t, 0, false, &[1, 2, 3, 4, 5]);
        assert!(
            !sends(&ops).contains(&3),
            "Reno has no scoreboard: {:?}",
            sends(&ops)
        );
        assert!(!s.is_sack());
    }

    #[test]
    fn sack_scoreboard_cleared_on_rto() {
        let mut s = TcpSender::with_options(false, true);
        s.cwnd = 6.0;
        let ops = s.start(T0);
        let gen = ops
            .iter()
            .find_map(|op| match op {
                SenderOp::ArmRto { generation, .. } => Some(*generation),
                _ => None,
            })
            .unwrap();
        s.on_ack(T0 + TimeDelta::from_millis(10), 0, false, &[2, 3]);
        let ops = s.on_rto(T0 + TimeDelta::from_secs(2), gen);
        assert_eq!(s.stats().timeouts, 1);
        // RFC 2018: the scoreboard is discarded; go-back-N resends
        // from una even though 2 and 3 were SACKed.
        assert_eq!(sends(&ops), vec![0], "window of 1 after RTO");
    }

    #[test]
    fn receiver_sack_report_lists_held_sequences() {
        let mut r = TcpReceiver::new();
        r.on_packet(0, false);
        r.on_packet(2, false);
        r.on_packet(4, false);
        r.on_packet(5, false);
        assert_eq!(r.sack_report(16), vec![2, 4, 5]);
        assert_eq!(r.sack_report(2), vec![2, 4]);
        // Filling the hole consumes contiguous data out of the report.
        r.on_packet(1, false);
        assert_eq!(r.sack_report(16), vec![4, 5]);
    }

    #[test]
    fn window_respects_receiver_limit() {
        let mut s = TcpSender::new(false);
        s.cwnd = 500.0;
        let ops = s.start(T0);
        assert_eq!(sends(&ops).len(), MAX_WINDOW as usize);
    }
}
