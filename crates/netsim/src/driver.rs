//! An `mxtraf`-style workload driver.
//!
//! The paper's experiment (§2) uses the mxtraf network traffic
//! generator: "a small number of hosts can be used to saturate a
//! network with a tunable mix of TCP and UDP traffic", with a
//! dynamically adjustable number of long-lived flows ("elephants") —
//! changed from 8 to 16 mid-run in Figures 4 and 5 — plus short "mice"
//! transfers and UDP constant-bit-rate streams.

use gel::{TimeDelta, TimeStamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::{FlowId, NetConfig, Network};

/// Workload parameters for [`Mxtraf`].
#[derive(Clone, Copy, Debug)]
pub struct MxtrafConfig {
    /// Network substrate configuration.
    pub net: NetConfig,
    /// All elephant flows use ECN (Figure 5) or none do (Figure 4).
    pub ecn: bool,
    /// All TCP flows negotiate SACK (RFC 2018) instead of Reno
    /// go-back-N recovery.
    pub sack: bool,
    /// Elephant flows created up front (activate up to this many).
    pub max_elephants: usize,
    /// Initially active elephants.
    pub initial_elephants: usize,
    /// Mean mice arrivals per second (Poisson); 0 disables mice.
    pub mice_rate_hz: f64,
    /// Transfer size of each mouse, in packets.
    pub mouse_size_packets: u64,
    /// Number of UDP CBR flows.
    pub udp_flows: usize,
    /// UDP packet interval.
    pub udp_interval: TimeDelta,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for MxtrafConfig {
    /// The Figure 4 baseline: 16 potential elephants, 8 active, no mice
    /// or UDP, standard TCP through a DropTail router.
    fn default() -> Self {
        MxtrafConfig {
            net: NetConfig::default(),
            ecn: false,
            sack: false,
            max_elephants: 16,
            initial_elephants: 8,
            mice_rate_hz: 0.0,
            mouse_size_packets: 12,
            udp_flows: 0,
            udp_interval: TimeDelta::from_millis(5),
            seed: 1,
        }
    }
}

/// Drives a [`Network`] with an mxtraf-like traffic mix.
pub struct Mxtraf {
    cfg: MxtrafConfig,
    net: Network,
    elephants: Vec<FlowId>,
    active_elephants: usize,
    mice: Vec<FlowId>,
    mice_spawned: u64,
    udp: Vec<FlowId>,
    rng: StdRng,
    next_mouse_at: Option<TimeStamp>,
}

impl Mxtraf {
    /// Builds the network and pre-creates all flows.
    ///
    /// # Panics
    ///
    /// Panics if `initial_elephants > max_elephants`.
    pub fn new(cfg: MxtrafConfig) -> Self {
        assert!(
            cfg.initial_elephants <= cfg.max_elephants,
            "initial elephants exceed maximum"
        );
        let mut net = Network::new(cfg.net);
        let elephants: Vec<FlowId> = (0..cfg.max_elephants)
            .map(|_| net.add_tcp_flow_with(cfg.ecn, cfg.sack))
            .collect();
        let udp: Vec<FlowId> = (0..cfg.udp_flows)
            .map(|_| net.add_udp_flow(cfg.udp_interval))
            .collect();
        let mut driver = Mxtraf {
            cfg,
            net,
            elephants,
            active_elephants: 0,
            mice: Vec::new(),
            mice_spawned: 0,
            udp,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_mouse_at: None,
        };
        driver.set_elephants(cfg.initial_elephants);
        for &u in &driver.udp.clone() {
            driver.net.start_udp(u);
        }
        if driver.cfg.mice_rate_hz > 0.0 {
            driver.next_mouse_at = Some(driver.draw_mouse_arrival(TimeStamp::ZERO));
        }
        driver
    }

    fn draw_mouse_arrival(&mut self, from: TimeStamp) -> TimeStamp {
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let gap = -u.ln() / self.cfg.mice_rate_hz;
        from + TimeDelta::from_secs_f64(gap.min(3600.0))
    }

    /// Changes the number of active elephants — the knob the paper
    /// turns from 8 to 16 "roughly half way through the x-axis".
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `max_elephants`.
    pub fn set_elephants(&mut self, n: usize) {
        assert!(n <= self.cfg.max_elephants, "too many elephants requested");
        let mut stagger = 0u64;
        while self.active_elephants < n {
            let id = self.elephants[self.active_elephants];
            // Stagger activations (~one RTT apart) the way real flows
            // arrive, avoiding a synchronized slow-start burst.
            self.net
                .start_flow_at(id, self.net.now() + TimeDelta::from_millis(50 * stagger));
            stagger += 1;
            self.active_elephants += 1;
        }
        while self.active_elephants > n {
            self.active_elephants -= 1;
            let id = self.elephants[self.active_elephants];
            self.net.stop_flow(id);
        }
    }

    /// Number of currently active elephants.
    pub fn elephants(&self) -> usize {
        self.active_elephants
    }

    /// Flow id of elephant `i` (for CWND probes).
    pub fn elephant_flow(&self, i: usize) -> FlowId {
        self.elephants[i]
    }

    /// Mice spawned so far.
    pub fn mice_spawned(&self) -> u64 {
        self.mice_spawned
    }

    /// The underlying network (CWND, queue and flow statistics).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Total retransmission timeouts across all elephants.
    pub fn total_timeouts(&self) -> u64 {
        self.elephants
            .iter()
            .map(|&f| self.net.flow_stats(f).timeouts)
            .sum()
    }

    fn spawn_mouse(&mut self) {
        // Reuse a finished mouse slot if possible.
        let slot = self
            .mice
            .iter()
            .copied()
            .find(|&m| !self.net.flow_active(m));
        let id = match slot {
            Some(id) => id,
            None => {
                let id = self.net.add_mouse_flow_with(
                    self.cfg.ecn,
                    self.cfg.sack,
                    self.cfg.mouse_size_packets,
                );
                self.mice.push(id);
                id
            }
        };
        self.net.start_flow(id);
        self.mice_spawned += 1;
    }

    /// Advances the workload and the network to `until`.
    pub fn run_until(&mut self, until: TimeStamp) {
        while let Some(at) = self.next_mouse_at {
            if at > until {
                break;
            }
            self.net.run_until(at);
            self.spawn_mouse();
            self.next_mouse_at = Some(self.draw_mouse_arrival(at));
        }
        self.net.run_until(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueKind;

    #[test]
    fn initial_elephants_start_active() {
        let m = Mxtraf::new(MxtrafConfig::default());
        assert_eq!(m.elephants(), 8);
        for i in 0..8 {
            assert!(m.net().flow_active(m.elephant_flow(i)));
        }
        assert!(!m.net().flow_active(m.elephant_flow(8)));
    }

    #[test]
    fn elephant_count_changes_dynamically() {
        let mut m = Mxtraf::new(MxtrafConfig::default());
        m.run_until(TimeStamp::from_secs(5));
        m.set_elephants(16);
        assert_eq!(m.elephants(), 16);
        m.run_until(TimeStamp::from_secs(10));
        m.set_elephants(4);
        assert_eq!(m.elephants(), 4);
        for i in 4..16 {
            assert!(!m.net().flow_active(m.elephant_flow(i)));
        }
    }

    #[test]
    #[should_panic(expected = "too many elephants")]
    fn elephant_limit_enforced() {
        let mut m = Mxtraf::new(MxtrafConfig::default());
        m.set_elephants(17);
    }

    #[test]
    fn mice_arrive_at_poisson_rate() {
        let mut m = Mxtraf::new(MxtrafConfig {
            mice_rate_hz: 10.0,
            initial_elephants: 2,
            ..MxtrafConfig::default()
        });
        m.run_until(TimeStamp::from_secs(10));
        let n = m.mice_spawned();
        // 10 Hz for 10 s ≈ 100 arrivals; allow generous Poisson slack.
        assert!((50..=170).contains(&n), "mice spawned: {n}");
    }

    #[test]
    fn figure4_shape_tcp_times_out() {
        let mut m = Mxtraf::new(MxtrafConfig::default());
        m.run_until(TimeStamp::from_secs(15));
        m.set_elephants(16);
        m.run_until(TimeStamp::from_secs(30));
        assert!(
            m.total_timeouts() > 0,
            "DropTail TCP congestion must produce timeouts"
        );
    }

    #[test]
    fn figure5_shape_ecn_does_not_time_out() {
        let mut m = Mxtraf::new(MxtrafConfig {
            ecn: true,
            net: NetConfig {
                queue: QueueKind::red_default(100),
                ..NetConfig::default()
            },
            ..MxtrafConfig::default()
        });
        m.run_until(TimeStamp::from_secs(15));
        m.set_elephants(16);
        m.run_until(TimeStamp::from_secs(30));
        assert_eq!(m.total_timeouts(), 0, "ECN flows never hit CWND=1");
        assert!(m.net().queue_stats().marked > 0);
    }

    #[test]
    fn udp_mix_runs() {
        let mut m = Mxtraf::new(MxtrafConfig {
            udp_flows: 2,
            udp_interval: TimeDelta::from_millis(10),
            initial_elephants: 2,
            ..MxtrafConfig::default()
        });
        m.run_until(TimeStamp::from_secs(2));
        assert!(m.net().udp_stats(0).sent > 100);
        assert!(m.net().udp_stats(1).sent > 100);
    }
}
