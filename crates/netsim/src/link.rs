//! Shaped in-memory byte links: the `nistnet` knobs applied to a
//! reliable duplex byte stream.
//!
//! The packet-level simulator in [`crate::sim`] reproduces TCP
//! *dynamics* (congestion windows, RED marking); this module answers a
//! different question: how does a byte-oriented protocol implementation
//! behave when its transport is slow, far away, or lossy? A
//! [`SimConn`] pair is a loopback socket whose two directions are
//! shaped by bandwidth, propagation delay, jitter, and a coarse
//! loss-retransmit model, with a bounded in-flight buffer that pushes
//! back on the writer exactly like a full TCP send window
//! (`WouldBlock`).
//!
//! The `gnet` streaming hub drives its scale benchmarks and soak tests
//! through thousands of these links: each simulated client is one
//! `SimConn` end handed to the server, the other end read by the
//! harness. Reliability is preserved — loss never destroys bytes, it
//! only charges the head of the line a retransmission delay, which is
//! what a TCP stream on a lossy path actually exhibits.
//!
//! Time comes from a [`LinkClock`]: real monotonic time for threaded
//! throughput benchmarks, or a manually-advanced virtual clock for
//! deterministic tests.

use std::collections::VecDeque;
use std::io::{Error, ErrorKind, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use gel::TimeDelta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shaping parameters for one direction of a [`SimConn`] pair.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Link bandwidth in bits per second; 0 means unshaped (infinite).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: TimeDelta,
    /// Extra one-way delay, uniform in `[0, jitter]` per chunk. Unlike
    /// the packet simulator this never reorders: a reliable stream
    /// delivers bytes in order, so jitter manifests as head-of-line
    /// variance.
    pub jitter: TimeDelta,
    /// Probability that an MTU-sized chunk needs a retransmission.
    /// Bytes are never destroyed (the stream is reliable); a "lost"
    /// chunk charges the line a retransmit delay instead.
    pub loss_rate: f64,
    /// Bound on in-flight (written but unread) bytes — the send
    /// window. Writes beyond it return `WouldBlock`.
    pub buf_bytes: usize,
    /// Chunk size used for serialization and loss accounting.
    pub mtu: usize,
    /// RNG seed for loss and jitter.
    pub seed: u64,
}

impl Default for LinkConfig {
    /// An unshaped loopback with a 256 KiB window.
    fn default() -> Self {
        LinkConfig {
            bandwidth_bps: 0,
            latency: TimeDelta::ZERO,
            jitter: TimeDelta::ZERO,
            loss_rate: 0.0,
            buf_bytes: 256 << 10,
            mtu: 1448,
            seed: 1,
        }
    }
}

impl LinkConfig {
    /// The paper's testbed path (§2): 10 Mbit/s, 20 ms each way.
    pub fn wan() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000,
            latency: TimeDelta::from_millis(20),
            ..LinkConfig::default()
        }
    }

    fn latency_ns(&self) -> u64 {
        self.latency.as_micros() * 1_000
    }

    fn jitter_ns(&self) -> u64 {
        self.jitter.as_micros() * 1_000
    }

    /// Serialization time of `bytes` on the link, in ns.
    fn serialization_ns(&self, bytes: usize) -> u64 {
        if self.bandwidth_bps == 0 {
            return 0;
        }
        (bytes as u128 * 8 * 1_000_000_000 / self.bandwidth_bps as u128) as u64
    }

    /// Coarse retransmission penalty: one RTT plus a floor, the shape
    /// of a fast-retransmit repair (not a full RTO back-off).
    fn loss_penalty_ns(&self) -> u64 {
        (2 * self.latency_ns()).max(5_000_000)
    }
}

/// Time source for shaped links.
#[derive(Clone)]
pub struct LinkClock(ClockKind);

#[derive(Clone)]
enum ClockKind {
    Real,
    Manual(Arc<AtomicU64>),
}

static REAL_EPOCH: OnceLock<Instant> = OnceLock::new();

impl LinkClock {
    /// Real monotonic time (ns since the first use in this process).
    pub fn real() -> LinkClock {
        LinkClock(ClockKind::Real)
    }

    /// A manually-advanced clock for deterministic tests; store ns into
    /// the returned cell to move time.
    pub fn manual() -> (LinkClock, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        (LinkClock(ClockKind::Manual(Arc::clone(&cell))), cell)
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            ClockKind::Real => {
                let epoch = REAL_EPOCH.get_or_init(Instant::now);
                epoch.elapsed().as_nanos() as u64
            }
            ClockKind::Manual(cell) => cell.load(Ordering::Acquire),
        }
    }
}

/// One in-flight chunk: readable once the clock passes `ready_ns`.
struct Chunk {
    ready_ns: u64,
    pos: usize,
    data: Vec<u8>,
}

struct DirState {
    queue: VecDeque<Chunk>,
    /// The serialization horizon: when the link finishes transmitting
    /// everything accepted so far.
    busy_until_ns: u64,
    /// Monotone delivery floor — a stream never reorders.
    last_ready_ns: u64,
    rng: StdRng,
    /// Writer end dropped: drained queue then EOF.
    closed_tx: bool,
    /// Reader end dropped: writes fail.
    closed_rx: bool,
    /// Chunks that paid the retransmit penalty.
    retransmits: u64,
}

/// One shaped direction.
struct Dir {
    cfg: LinkConfig,
    clock: LinkClock,
    state: Mutex<DirState>,
    /// In-flight bytes, mirrored for lock-free window checks.
    queued: AtomicUsize,
    /// Earliest `ready_ns` in the queue (`u64::MAX` when empty),
    /// mirrored so readiness hints never take the lock.
    next_ready_ns: AtomicU64,
    /// Mirror of `closed_tx`, so idle readiness checks (no bytes in
    /// flight, writer still up) need neither the lock nor the clock.
    closed_hint: AtomicBool,
}

impl Dir {
    fn new(cfg: LinkConfig, clock: LinkClock) -> Dir {
        Dir {
            state: Mutex::new(DirState {
                queue: VecDeque::new(),
                busy_until_ns: 0,
                last_ready_ns: 0,
                rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                closed_tx: false,
                closed_rx: false,
                retransmits: 0,
            }),
            cfg,
            clock,
            queued: AtomicUsize::new(0),
            next_ready_ns: AtomicU64::new(u64::MAX),
            closed_hint: AtomicBool::new(false),
        }
    }

    fn write(&self, buf: &[u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Fast-path window check without the lock.
        let queued = self.queued.load(Ordering::Acquire);
        if queued >= self.cfg.buf_bytes {
            return Err(ErrorKind::WouldBlock.into());
        }
        let mut st = self.state.lock().expect("link lock");
        if st.closed_rx {
            return Err(Error::new(ErrorKind::BrokenPipe, "peer dropped"));
        }
        let room = self.cfg.buf_bytes - self.queued.load(Ordering::Acquire);
        if room == 0 {
            return Err(ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(room);
        let now = self.clock.now_ns();
        let mut written = 0;
        while written < n {
            let take = (n - written).min(self.cfg.mtu);
            let chunk = &buf[written..written + take];
            st.busy_until_ns = st.busy_until_ns.max(now) + self.cfg.serialization_ns(take);
            let mut ready = st.busy_until_ns + self.cfg.latency_ns();
            let jit = self.cfg.jitter_ns();
            if jit > 0 {
                ready += st.rng.gen_range(0..=jit);
            }
            if self.cfg.loss_rate > 0.0 && st.rng.gen::<f64>() < self.cfg.loss_rate {
                ready += self.cfg.loss_penalty_ns();
                st.retransmits += 1;
            }
            // In-order delivery: later chunks never beat earlier ones.
            ready = ready.max(st.last_ready_ns);
            st.last_ready_ns = ready;
            st.queue.push_back(Chunk {
                ready_ns: ready,
                pos: 0,
                data: chunk.to_vec(),
            });
            written += take;
        }
        self.queued.fetch_add(written, Ordering::AcqRel);
        let head_ready = st.queue.front().map_or(u64::MAX, |c| c.ready_ns);
        self.next_ready_ns.store(head_ready, Ordering::Release);
        Ok(written)
    }

    fn read(&self, out: &mut [u8]) -> Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        // Fast path: nothing deliverable yet, no lock taken.
        let next = self.next_ready_ns.load(Ordering::Acquire);
        if next > self.clock.now_ns() {
            if self.queued.load(Ordering::Acquire) == 0 {
                let st = self.state.lock().expect("link lock");
                if st.closed_tx && st.queue.is_empty() {
                    return Ok(0); // EOF
                }
            }
            return Err(ErrorKind::WouldBlock.into());
        }
        let mut st = self.state.lock().expect("link lock");
        let now = self.clock.now_ns();
        let mut copied = 0;
        while copied < out.len() {
            let Some(front) = st.queue.front_mut() else {
                break;
            };
            if front.ready_ns > now {
                break;
            }
            let avail = front.data.len() - front.pos;
            let take = avail.min(out.len() - copied);
            out[copied..copied + take].copy_from_slice(&front.data[front.pos..front.pos + take]);
            front.pos += take;
            copied += take;
            if front.pos == front.data.len() {
                st.queue.pop_front();
            }
        }
        let head_ready = st.queue.front().map_or(u64::MAX, |c| c.ready_ns);
        self.next_ready_ns.store(head_ready, Ordering::Release);
        if copied == 0 {
            if st.closed_tx && st.queue.is_empty() {
                return Ok(0); // EOF
            }
            return Err(ErrorKind::WouldBlock.into());
        }
        self.queued.fetch_sub(copied, Ordering::AcqRel);
        Ok(copied)
    }

    /// True when a read right now would return bytes (or EOF).
    fn readable(&self) -> bool {
        // Fast idle path — nothing in flight, writer still up: no
        // clock read, no lock. This is the case a server scanning a
        // large population hits almost every time.
        if self.queued.load(Ordering::Acquire) == 0 {
            if !self.closed_hint.load(Ordering::Acquire) {
                return false;
            }
            let st = self.state.lock().expect("link lock");
            return st.closed_tx && st.queue.is_empty();
        }
        self.next_ready_ns.load(Ordering::Acquire) <= self.clock.now_ns()
    }
}

/// One end of a shaped duplex byte link.
///
/// `read_bytes`/`write_bytes` have non-blocking socket semantics:
/// `WouldBlock` when the link has nothing deliverable / no window,
/// `Ok(0)` on EOF after the peer drops, `BrokenPipe` on writes after
/// the peer drops.
pub struct SimConn {
    /// Peer → me.
    rx: Arc<Dir>,
    /// Me → peer.
    tx: Arc<Dir>,
    label: String,
}

impl SimConn {
    /// Creates a symmetric shaped pair.
    pub fn pair(cfg: LinkConfig, clock: LinkClock) -> (SimConn, SimConn) {
        SimConn::pair_asym(cfg, cfg, clock)
    }

    /// Creates a pair with distinct shaping per direction: `a_to_b`
    /// shapes bytes written by the first end, `b_to_a` the second.
    pub fn pair_asym(
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
        clock: LinkClock,
    ) -> (SimConn, SimConn) {
        let ab = Arc::new(Dir::new(a_to_b, clock.clone()));
        let ba = Arc::new(Dir::new(b_to_a, clock));
        (
            SimConn {
                rx: Arc::clone(&ba),
                tx: Arc::clone(&ab),
                label: "sim:a".to_owned(),
            },
            SimConn {
                rx: ab,
                tx: ba,
                label: "sim:b".to_owned(),
            },
        )
    }

    /// Tags this end with a label (shows up in per-client stats).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The end's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Non-blocking write (see type docs for semantics).
    ///
    /// # Errors
    ///
    /// `WouldBlock` with a full window, `BrokenPipe` after peer drop.
    pub fn write_bytes(&self, buf: &[u8]) -> Result<usize> {
        self.tx.write(buf)
    }

    /// Non-blocking read (see type docs for semantics).
    ///
    /// # Errors
    ///
    /// `WouldBlock` when nothing is deliverable yet.
    pub fn read_bytes(&self, out: &mut [u8]) -> Result<usize> {
        self.rx.read(out)
    }

    /// True when a read right now would make progress (bytes or EOF).
    /// Never takes the shaping lock in the common no-data case, so a
    /// server can scan 100k idle connections cheaply.
    pub fn readable(&self) -> bool {
        self.rx.readable()
    }

    /// Bytes written by this end and not yet read by the peer.
    pub fn in_flight_bytes(&self) -> usize {
        self.tx.queued.load(Ordering::Acquire)
    }

    /// Chunks this end's writes that paid the loss penalty.
    pub fn retransmits(&self) -> u64 {
        self.tx.state.lock().expect("link lock").retransmits
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        self.tx.state.lock().expect("link lock").closed_tx = true;
        self.tx.closed_hint.store(true, Ordering::Release);
        self.rx.state.lock().expect("link lock").closed_rx = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance(cell: &Arc<AtomicU64>, ns: u64) {
        cell.fetch_add(ns, Ordering::Release);
    }

    #[test]
    fn unshaped_link_is_immediate() {
        let (clock, _t) = LinkClock::manual();
        let (a, b) = SimConn::pair(LinkConfig::default(), clock);
        assert_eq!(a.write_bytes(b"hello").unwrap(), 5);
        let mut buf = [0u8; 16];
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert!(matches!(
            b.read_bytes(&mut buf),
            Err(e) if e.kind() == ErrorKind::WouldBlock
        ));
    }

    #[test]
    fn latency_delays_delivery() {
        let (clock, t) = LinkClock::manual();
        let cfg = LinkConfig {
            latency: TimeDelta::from_millis(5),
            ..LinkConfig::default()
        };
        let (a, b) = SimConn::pair(cfg, clock);
        a.write_bytes(b"x").unwrap();
        let mut buf = [0u8; 4];
        assert!(!b.readable());
        assert!(b.read_bytes(&mut buf).is_err());
        advance(&t, 5_000_000);
        assert!(b.readable());
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 1);
    }

    #[test]
    fn bandwidth_paces_bytes() {
        let (clock, t) = LinkClock::manual();
        // 1 Mbit/s, 1000-byte MTU: one chunk serializes in 8 ms.
        let cfg = LinkConfig {
            bandwidth_bps: 1_000_000,
            mtu: 1000,
            ..LinkConfig::default()
        };
        let (a, b) = SimConn::pair(cfg, clock);
        assert_eq!(a.write_bytes(&[7u8; 3000]).unwrap(), 3000);
        let mut buf = [0u8; 4096];
        advance(&t, 8_000_000);
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 1000);
        assert!(
            b.read_bytes(&mut buf).is_err(),
            "second chunk still serializing"
        );
        advance(&t, 8_000_000);
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 1000);
        advance(&t, 8_000_000);
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 1000);
    }

    #[test]
    fn window_pushes_back_and_reopens() {
        let (clock, _t) = LinkClock::manual();
        let cfg = LinkConfig {
            buf_bytes: 1024,
            ..LinkConfig::default()
        };
        let (a, b) = SimConn::pair(cfg, clock);
        assert_eq!(a.write_bytes(&[0u8; 4096]).unwrap(), 1024);
        assert!(matches!(
            a.write_bytes(b"more"),
            Err(e) if e.kind() == ErrorKind::WouldBlock
        ));
        assert_eq!(a.in_flight_bytes(), 1024);
        let mut buf = [0u8; 512];
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 512);
        assert_eq!(a.write_bytes(&[0u8; 4096]).unwrap(), 512);
    }

    #[test]
    fn drop_gives_eof_then_broken_pipe() {
        let (clock, _t) = LinkClock::manual();
        let (a, b) = SimConn::pair(LinkConfig::default(), clock);
        a.write_bytes(b"bye").unwrap();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 3, "drained before EOF");
        assert_eq!(b.read_bytes(&mut buf).unwrap(), 0, "EOF after drain");
        assert!(matches!(
            b.write_bytes(b"x"),
            Err(e) if e.kind() == ErrorKind::BrokenPipe
        ));
    }

    #[test]
    fn loss_charges_delay_but_keeps_bytes_in_order() {
        let (clock, t) = LinkClock::manual();
        let cfg = LinkConfig {
            loss_rate: 0.5,
            mtu: 16,
            seed: 42,
            ..LinkConfig::default()
        };
        let (a, b) = SimConn::pair(cfg, clock);
        let data: Vec<u8> = (0..=255u8).collect();
        a.write_bytes(&data).unwrap();
        assert!(a.retransmits() > 0, "seeded loss must hit some chunks");
        // Everything arrives, in order, once enough time passes.
        advance(&t, 60 * 5_000_000);
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok(n) = b.read_bytes(&mut buf) {
            out.extend_from_slice(&buf[..n]);
            if out.len() == 256 {
                break;
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = |seed: u64| {
            let (clock, t) = LinkClock::manual();
            let cfg = LinkConfig {
                loss_rate: 0.3,
                jitter: TimeDelta::from_millis(2),
                mtu: 32,
                seed,
                ..LinkConfig::default()
            };
            let (a, b) = SimConn::pair(cfg, clock);
            a.write_bytes(&[9u8; 640]).unwrap();
            let mut readable_at = Vec::new();
            let mut buf = [0u8; 64];
            for step in 0..200u64 {
                advance(&t, 1_000_000);
                if let Ok(n) = b.read_bytes(&mut buf) {
                    readable_at.push((step, n));
                }
            }
            readable_at
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seed, different schedule");
    }
}
