//! `rrsched` — a feedback-driven proportion-period CPU scheduler
//! simulation.
//!
//! One of gscope's flagship uses is watching "dynamically changing
//! process proportions as assigned by a CPU proportion-period
//! scheduler" (§1, §4.2), citing Steere et al., *A Feedback-driven
//! Proportion Allocator for Real-Rate Scheduling* (OSDI '99). This
//! crate simulates that system so the workspace can regenerate the
//! signal source:
//!
//! * Each [`Task`] is a producer/consumer stage: it needs CPU time to
//!   produce items into a bounded buffer that drains at a fixed real
//!   rate (a video decoder feeding a 30 fps display, a network stack
//!   feeding a sound card, ...).
//! * The [`Scheduler`] samples each task's buffer **fill level** once
//!   per task period and steers its CPU proportion with a
//!   proportional-integral-derivative-free "pressure" controller toward
//!   the half-full set point, exactly the progress-based feedback idea
//!   of the paper: fill above ½ means the task is over-provisioned,
//!   below ½ under-provisioned.
//! * When demand exceeds the CPU ("overload"), proportions are scaled
//!   back ("squished") to the schedulable bound.
//!
//! The per-task proportion and fill level are the signals a gscope
//! example polls — proportions are assigned "at the granularity of the
//! process period", which is why the paper sets the scope polling
//! period equal to the process period (§4.2 "Periodic Signals").

use gel::{TimeDelta, TimeStamp};

/// Scheduler tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Buffer fill set point (the paper steers to ½).
    pub target_fill: f64,
    /// Proportional gain on the fill error (dimensionless; the
    /// controller self-normalizes by the task's fill sensitivity).
    pub gain: f64,
    /// Derivative gain on the fill slope, damping the
    /// controller-on-integrator loop that would otherwise oscillate.
    pub damping: f64,
    /// Smallest proportion an admitted task may hold.
    pub min_proportion: f64,
    /// Schedulable bound: proportions are squished to sum below this.
    pub cpu_capacity: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            target_fill: 0.5,
            gain: 0.06,
            damping: 0.3,
            min_proportion: 0.01,
            cpu_capacity: 0.95,
        }
    }
}

/// A real-rate producer/consumer task.
#[derive(Clone, Debug)]
pub struct Task {
    name: String,
    /// Scheduling period.
    period: TimeDelta,
    /// CPU seconds needed to produce one item.
    cpu_per_item: f64,
    /// Items per second the consumer drains (the "real rate").
    consume_rate: f64,
    /// Bounded buffer capacity in items.
    buffer_capacity: f64,
    /// Current buffer level in items.
    buffer: f64,
    /// Currently allocated CPU proportion in [0, 1].
    proportion: f64,
    /// Next period boundary (when the controller runs for this task).
    next_update: TimeStamp,
    /// Fill level at the previous controller run (derivative input).
    prev_fill: f64,
    /// Items produced over the task's lifetime (fractional to avoid
    /// per-chunk truncation).
    produced: f64,
    /// Consumer stalls (buffer empty when items were due).
    underruns: u64,
}

impl Task {
    /// Creates a task.
    ///
    /// `cpu_per_item` × `consume_rate` is the proportion the task needs
    /// at equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or the period is zero.
    pub fn new(
        name: impl Into<String>,
        period: TimeDelta,
        cpu_per_item: f64,
        consume_rate: f64,
        buffer_capacity: f64,
    ) -> Self {
        assert!(!period.is_zero(), "task period must be non-zero");
        assert!(
            cpu_per_item > 0.0 && consume_rate > 0.0 && buffer_capacity > 0.0,
            "task parameters must be positive"
        );
        Task {
            name: name.into(),
            period,
            cpu_per_item,
            consume_rate,
            buffer_capacity,
            buffer: buffer_capacity / 2.0,
            proportion: 0.05,
            next_update: TimeStamp::ZERO,
            prev_fill: 0.5,
            produced: 0.0,
            underruns: 0,
        }
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduling period.
    pub fn period(&self) -> TimeDelta {
        self.period
    }

    /// The currently assigned CPU proportion — the gscope signal.
    pub fn proportion(&self) -> f64 {
        self.proportion
    }

    /// Buffer fill level in [0, 1] — the controller's input.
    pub fn fill(&self) -> f64 {
        self.buffer / self.buffer_capacity
    }

    /// The proportion this task needs at equilibrium.
    pub fn equilibrium_proportion(&self) -> f64 {
        self.cpu_per_item * self.consume_rate
    }

    /// Total items produced.
    pub fn produced(&self) -> u64 {
        self.produced as u64
    }

    /// Consumer underruns observed.
    pub fn underruns(&self) -> u64 {
        self.underruns
    }

    /// Changes the consumer's real rate at runtime (rate changes are
    /// what make the proportions "dynamically changing").
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn set_consume_rate(&mut self, rate: f64) {
        assert!(rate > 0.0, "consume rate must be positive");
        self.consume_rate = rate;
    }

    /// Advances production/consumption by `dt` with the current
    /// proportion.
    fn advance(&mut self, dt: f64) {
        let produced_items = self.proportion * dt / self.cpu_per_item;
        self.produced += produced_items;
        let consumed = self.consume_rate * dt;
        let new_level = self.buffer + produced_items - consumed;
        if new_level < 0.0 {
            self.underruns += 1;
        }
        self.buffer = new_level.clamp(0.0, self.buffer_capacity);
    }
}

/// The proportion-period scheduler.
#[derive(Debug, Default)]
pub struct Scheduler {
    config: SchedConfig,
    tasks: Vec<Task>,
    now: TimeStamp,
    /// Times the squish pass had to scale proportions down.
    squishes: u64,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedConfig) -> Self {
        Scheduler {
            config,
            tasks: Vec::new(),
            now: TimeStamp::ZERO,
            squishes: 0,
        }
    }

    /// Admits a task; returns its index.
    pub fn add_task(&mut self, mut task: Task) -> usize {
        task.next_update = self.now + task.period;
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Returns the tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Returns a task by index.
    pub fn task(&self, i: usize) -> &Task {
        &self.tasks[i]
    }

    /// Returns a mutable task by index (rate changes).
    pub fn task_mut(&mut self, i: usize) -> &mut Task {
        &mut self.tasks[i]
    }

    /// Current simulation time.
    pub fn now(&self) -> TimeStamp {
        self.now
    }

    /// Total allocated proportion.
    pub fn total_proportion(&self) -> f64 {
        self.tasks.iter().map(|t| t.proportion).sum()
    }

    /// Times the overload squish engaged.
    pub fn squishes(&self) -> u64 {
        self.squishes
    }

    /// The feedback update for one task (runs at its period boundary).
    ///
    /// The buffer integrates the proportion, so a bare proportional
    /// controller would oscillate forever; the derivative term damps
    /// it. Gains are normalized by the task's *fill sensitivity* (how
    /// much one unit of proportion moves the fill per period), giving
    /// the same closed-loop poles for every task mix.
    fn control(&mut self, i: usize) {
        let t = &self.tasks[i];
        let fill = t.fill();
        let err = self.config.target_fill - fill;
        let dfill = fill - t.prev_fill;
        let sensitivity = t.period.as_secs_f64() / (t.buffer_capacity * t.cpu_per_item);
        let dp = (self.config.gain * err - self.config.damping * dfill) / sensitivity.max(1e-9);
        let task = &mut self.tasks[i];
        task.prev_fill = fill;
        // Fill below target → starving → raise proportion.
        task.proportion = (task.proportion + dp).clamp(self.config.min_proportion, 1.0);
        self.squish();
    }

    /// Scales proportions down to the schedulable bound ("squishy"
    /// allocation under overload).
    fn squish(&mut self) {
        let total: f64 = self.total_proportion();
        if total > self.config.cpu_capacity {
            let k = self.config.cpu_capacity / total;
            for t in &mut self.tasks {
                t.proportion = (t.proportion * k).max(self.config.min_proportion);
            }
            self.squishes += 1;
        }
    }

    /// Advances the simulation to `until`, running task progress
    /// continuously and the controller at each task's period boundary.
    pub fn run_until(&mut self, until: TimeStamp) {
        while self.now < until {
            // Next controller deadline across tasks (or the horizon).
            let next = self
                .tasks
                .iter()
                .map(|t| t.next_update)
                .min()
                .unwrap_or(until)
                .min(until);
            let dt = next.saturating_since(self.now).as_secs_f64();
            if dt > 0.0 {
                for t in &mut self.tasks {
                    t.advance(dt);
                }
            }
            self.now = next;
            for i in 0..self.tasks.len() {
                if self.tasks[i].next_update <= self.now {
                    let period = self.tasks[i].period;
                    self.control(i);
                    self.tasks[i].next_update = self.now + period;
                }
            }
            if next == until && self.tasks.is_empty() {
                self.now = until;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_task() -> Task {
        // 30 items/s at 10 ms CPU each → needs proportion 0.3.
        Task::new("video", TimeDelta::from_millis(33), 0.010, 30.0, 30.0)
    }

    #[test]
    fn proportion_converges_to_equilibrium() {
        let mut s = Scheduler::new(SchedConfig::default());
        let v = s.add_task(video_task());
        s.run_until(TimeStamp::from_secs(30));
        let p = s.task(v).proportion();
        assert!(
            (p - 0.3).abs() < 0.05,
            "proportion {p} should converge near 0.3"
        );
        let fill = s.task(v).fill();
        assert!((fill - 0.5).abs() < 0.2, "fill {fill} should steer to 1/2");
    }

    #[test]
    fn rate_change_moves_the_proportion() {
        let mut s = Scheduler::new(SchedConfig::default());
        let v = s.add_task(video_task());
        s.run_until(TimeStamp::from_secs(20));
        let p_before = s.task(v).proportion();
        // Double the display rate: the scheduler must give more CPU.
        s.task_mut(v).set_consume_rate(60.0);
        s.run_until(TimeStamp::from_secs(60));
        let p_after = s.task(v).proportion();
        assert!(
            p_after > p_before + 0.15,
            "proportion should rise: {p_before} -> {p_after}"
        );
        assert!(
            (p_after - 0.6).abs() < 0.1,
            "new equilibrium ~0.6, got {p_after}"
        );
    }

    #[test]
    fn overload_squishes_to_capacity() {
        let mut s = Scheduler::new(SchedConfig::default());
        // Three tasks each wanting 0.5: total demand 1.5 > 0.95.
        for i in 0..3 {
            s.add_task(Task::new(
                format!("t{i}"),
                TimeDelta::from_millis(20),
                0.01,
                50.0,
                20.0,
            ));
        }
        s.run_until(TimeStamp::from_secs(30));
        let total = s.total_proportion();
        assert!(
            total <= 0.96,
            "squish keeps allocation under the bound, got {total}"
        );
        assert!(s.squishes() > 0, "overload must engage the squish");
        // Under persistent overload the starving tasks underrun.
        let underruns: u64 = s.tasks().iter().map(|t| t.underruns()).sum();
        assert!(underruns > 0);
    }

    #[test]
    fn proportions_stay_in_bounds() {
        let mut s = Scheduler::new(SchedConfig::default());
        s.add_task(video_task());
        s.add_task(Task::new(
            "audio",
            TimeDelta::from_millis(10),
            0.001,
            100.0,
            50.0,
        ));
        let mut t = TimeStamp::ZERO;
        for _ in 0..200 {
            t += TimeDelta::from_millis(100);
            s.run_until(t);
            for task in s.tasks() {
                let p = task.proportion();
                assert!((0.0..=1.0).contains(&p), "proportion {p} out of range");
                let f = task.fill();
                assert!((0.0..=1.0).contains(&f), "fill {f} out of range");
            }
        }
    }

    #[test]
    fn idle_scheduler_advances_time() {
        let mut s = Scheduler::new(SchedConfig::default());
        s.run_until(TimeStamp::from_secs(1));
        assert_eq!(s.now(), TimeStamp::from_secs(1));
    }

    #[test]
    fn light_task_gets_small_proportion() {
        let mut s = Scheduler::new(SchedConfig::default());
        // Audio: 100 items/s at 0.1 ms each → needs 0.01.
        let a = s.add_task(Task::new(
            "audio",
            TimeDelta::from_millis(10),
            0.0001,
            100.0,
            50.0,
        ));
        s.run_until(TimeStamp::from_secs(20));
        let p = s.task(a).proportion();
        assert!(p < 0.08, "light task proportion {p} stays small");
        assert_eq!(s.task(a).underruns(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_task_rejected() {
        let _ = Task::new("bad", TimeDelta::from_millis(10), 0.0, 30.0, 10.0);
    }

    #[test]
    fn controller_runs_once_per_task_period() {
        // §4.2: proportions are assigned "at the granularity of the
        // process period" — between boundaries the proportion is held.
        let mut s = Scheduler::new(SchedConfig::default());
        let v = s.add_task(video_task()); // 33 ms period
        s.run_until(TimeStamp::from_millis(10));
        let p0 = s.task(v).proportion();
        s.run_until(TimeStamp::from_millis(30));
        assert_eq!(
            s.task(v).proportion(),
            p0,
            "no controller run before the period boundary"
        );
        s.run_until(TimeStamp::from_millis(40));
        assert_ne!(s.task(v).proportion(), p0, "boundary crossed");
    }

    #[test]
    fn mixed_periods_coexist() {
        let mut s = Scheduler::new(SchedConfig::default());
        let slow = s.add_task(Task::new(
            "slow",
            TimeDelta::from_millis(200),
            0.002,
            50.0,
            25.0,
        ));
        let fast = s.add_task(Task::new(
            "fast",
            TimeDelta::from_millis(5),
            0.0002,
            400.0,
            100.0,
        ));
        s.run_until(TimeStamp::from_secs(30));
        // Both converge to their equilibria (0.1 and 0.08) despite a
        // 40x period ratio.
        assert!((s.task(slow).proportion() - 0.1).abs() < 0.04);
        assert!((s.task(fast).proportion() - 0.08).abs() < 0.04);
        assert_eq!(s.task(slow).period(), TimeDelta::from_millis(200));
        assert_eq!(s.task(fast).name(), "fast");
    }

    #[test]
    fn relieving_overload_restores_service() {
        let mut s = Scheduler::new(SchedConfig::default());
        // Two tasks at 0.5 demand each: overloaded.
        for i in 0..2 {
            s.add_task(Task::new(
                format!("t{i}"),
                TimeDelta::from_millis(20),
                0.01,
                50.0,
                20.0,
            ));
        }
        s.run_until(TimeStamp::from_secs(20));
        assert!(s.squishes() > 0);
        // Halve one task's rate: total demand 0.75, schedulable.
        s.task_mut(0).set_consume_rate(20.0);
        s.run_until(TimeStamp::from_secs(60));
        let p0 = s.task(0).proportion();
        let p1 = s.task(1).proportion();
        assert!((p0 - 0.2).abs() < 0.08, "t0 at reduced demand: {p0}");
        assert!((p1 - 0.5).abs() < 0.08, "t1 gets full service: {p1}");
        // Fills recover to the set point.
        assert!((s.task(1).fill() - 0.5).abs() < 0.2);
    }

    #[test]
    fn produced_counts_accumulate() {
        let mut s = Scheduler::new(SchedConfig::default());
        let v = s.add_task(video_task());
        s.run_until(TimeStamp::from_secs(10));
        // ~30 items/s for 10 s ≈ 300 items once converged; allow the
        // convergence transient.
        let produced = s.task(v).produced();
        assert!(produced > 150, "produced {produced}");
    }
}
