//! Shared helpers for the experiment binaries and benches.

use std::sync::Arc;

use gel::{Clock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{IntVar, Scope, SigConfig};

/// Builds a polling scope with `n` INTEGER signals on a virtual clock,
/// the §4.6 benchmark workload ("a simple application that polls and
/// displays several different integer values").
pub fn scope_with_int_signals(
    n: usize,
    width: usize,
    period: TimeDelta,
) -> (Scope, Vec<IntVar>, VirtualClock) {
    let clock = VirtualClock::new();
    let mut scope = Scope::new(
        "bench",
        width,
        100,
        Arc::new(clock.clone()) as Arc<dyn Clock>,
    );
    let vars: Vec<IntVar> = (0..n)
        .map(|i| {
            let v = IntVar::new(i as i64);
            scope
                .add_signal(format!("sig{i}"), v.clone().into(), SigConfig::default())
                .expect("unique signal names");
            v
        })
        .collect();
    scope.set_polling_mode(period).expect("non-zero period");
    scope.start();
    (scope, vars, clock)
}

/// Drives `ticks` scope ticks at `period`, mutating the variables so
/// every tick does real sampling work.
pub fn drive_ticks(scope: &mut Scope, vars: &[IntVar], period: TimeDelta, ticks: u64) {
    let mut t = TimeStamp::ZERO;
    for k in 0..ticks {
        t += period;
        for (i, v) in vars.iter().enumerate() {
            v.set((k as i64).wrapping_add(i as i64));
        }
        scope.tick(&TickInfo {
            now: t,
            scheduled: t,
            missed: 0,
        });
    }
}

/// Prints one row of a fixed-width report table.
pub fn row(cols: &[String]) {
    let widths = [14usize, 12, 14, 14, 14, 14];
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:<w$}"));
    }
    println!("{}", line.trim_end());
}
