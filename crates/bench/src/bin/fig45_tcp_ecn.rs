//! Figures 4 & 5, as numbers: the TCP-vs-ECN congestion-window series
//! the paper plots, printed as per-interval rows plus summary verdicts.
//!
//! The paper's reading of its figures:
//!
//! * "The elephants signal shows the number of long-lived flows over
//!   time. This number is changed from 8 to 16 roughly half way
//!   through the x-axis."
//! * "Both TCP and ECN reduce the congestion window to one upon a
//!   timeout. The lowest value of the CWND signal in the graphs
//!   corresponds to a CWND value of one. The graphs show that while
//!   ECN does not hit this value, TCP hits it several times."
//! * "there is a timeout each time CWND reaches one."
//!
//! Run with `cargo run --release -p gscope-bench --bin fig45_tcp_ecn`.
//! (The rendered figures come from `cargo run --example tcp_ecn`.)

use gel::{TimeDelta, TimeStamp};
use gscope_bench::row;
use netsim::{Mxtraf, MxtrafConfig, NetConfig, QueueKind};

/// Total simulated seconds (after warm-up).
const DURATION_S: u64 = 60;
/// Elephant count switches 8 → 16 here.
const SWITCH_S: u64 = 30;
/// Row-bucket width in seconds.
const BUCKET_S: u64 = 5;
/// Fine-grained CWND sampling period.
const SAMPLE_MS: u64 = 10;
/// Warm-up excluded from the series.
const WARMUP_S: u64 = 5;

struct Series {
    /// (bucket start s, elephants, mean cwnd, min cwnd, cumulative timeouts).
    rows: Vec<(u64, usize, f64, f64, u64)>,
    min_cwnd: f64,
    cwnd_one_touches: u64,
    timeouts: u64,
    drops: u64,
    marks: u64,
}

fn run(ecn: bool) -> Series {
    let mut traffic = Mxtraf::new(MxtrafConfig {
        ecn,
        net: NetConfig {
            queue: if ecn {
                QueueKind::red_default(100)
            } else {
                QueueKind::DropTail { capacity: 50 }
            },
            ..NetConfig::default()
        },
        initial_elephants: 8,
        max_elephants: 16,
        ..MxtrafConfig::default()
    });
    let probe = traffic.elephant_flow(0);
    let warmup = TimeDelta::from_secs(WARMUP_S);
    traffic.run_until(TimeStamp::ZERO + warmup);

    let mut rows = Vec::new();
    let mut min_cwnd = f64::INFINITY;
    let mut touches = 0u64;
    let mut was_at_one = false;
    let mut t = TimeStamp::ZERO;
    for bucket in 0..(DURATION_S / BUCKET_S) {
        let bucket_start = bucket * BUCKET_S;
        let mut sum = 0.0;
        let mut n = 0u64;
        let mut bucket_min = f64::INFINITY;
        let bucket_end = TimeStamp::from_secs(bucket_start + BUCKET_S);
        while t < bucket_end {
            t += TimeDelta::from_millis(SAMPLE_MS);
            traffic.run_until(t + warmup);
            if t == TimeStamp::from_secs(SWITCH_S) {
                traffic.set_elephants(16);
            }
            let cwnd = traffic.net().cwnd(probe);
            sum += cwnd;
            n += 1;
            bucket_min = bucket_min.min(cwnd);
            min_cwnd = min_cwnd.min(cwnd);
            let at_one = cwnd <= 1.0;
            if at_one && !was_at_one {
                touches += 1;
            }
            was_at_one = at_one;
        }
        rows.push((
            bucket_start,
            traffic.elephants(),
            sum / n as f64,
            bucket_min,
            traffic.total_timeouts(),
        ));
    }
    Series {
        rows,
        min_cwnd,
        cwnd_one_touches: touches,
        timeouts: traffic.total_timeouts(),
        drops: traffic.net().queue_stats().dropped,
        marks: traffic.net().queue_stats().marked,
    }
}

fn print_series(label: &str, s: &Series) {
    println!("-- {label} --");
    row(&[
        "t (s)".into(),
        "elephants".into(),
        "mean CWND".into(),
        "min CWND".into(),
        "timeouts".into(),
    ]);
    for (start, elephants, mean, min, timeouts) in &s.rows {
        row(&[
            format!("{start}-{}", start + BUCKET_S),
            format!("{elephants}"),
            format!("{mean:.1}"),
            format!("{min:.1}"),
            format!("{timeouts}"),
        ]);
    }
    println!(
        "probe CWND floor {:.1}; CWND=1 touches {}; router drops {}; CE marks {}\n",
        s.min_cwnd, s.cwnd_one_touches, s.drops, s.marks
    );
}

fn main() {
    println!("== Figures 4 & 5: TCP vs ECN congestion windows ==");
    println!("(8 elephants -> 16 at t={SWITCH_S}s; probe = elephant 0; {SAMPLE_MS} ms sampling)\n");

    let tcp = run(false);
    print_series("Figure 4: TCP through a DropTail router", &tcp);
    let ecn = run(true);
    print_series("Figure 5: ECN through a RED router", &ecn);

    println!("== verdicts vs the paper ==");
    println!(
        "TCP hits CWND=1 several times: {} touches            {}",
        tcp.cwnd_one_touches,
        if tcp.cwnd_one_touches >= 2 {
            "OK"
        } else {
            "DIFFERS"
        }
    );
    println!(
        "every CWND=1 touch is a timeout: {} touches <= {} timeouts {}",
        tcp.cwnd_one_touches,
        tcp.timeouts,
        if tcp.cwnd_one_touches <= tcp.timeouts {
            "OK"
        } else {
            "DIFFERS"
        }
    );
    println!(
        "ECN never hits CWND=1: floor {:.1}                    {}",
        ecn.min_cwnd,
        if ecn.min_cwnd > 1.0 { "OK" } else { "DIFFERS" }
    );
    println!(
        "ECN suffers no timeouts: {}                           {}",
        ecn.timeouts,
        if ecn.timeouts == 0 { "OK" } else { "DIFFERS" }
    );
    let tcp_mean_before: f64 = tcp.rows[..6].iter().map(|r| r.2).sum::<f64>() / 6.0;
    let tcp_mean_after: f64 = tcp.rows[6..].iter().map(|r| r.2).sum::<f64>() / 6.0;
    println!(
        "doubling elephants shrinks the window: {tcp_mean_before:.1} -> {tcp_mean_after:.1}    {}",
        if tcp_mean_after < tcp_mean_before {
            "OK"
        } else {
            "DIFFERS"
        }
    );
    assert!(tcp.cwnd_one_touches >= 2);
    assert!(ecn.min_cwnd > 1.0);
    assert_eq!(ecn.timeouts, 0);
    assert!(tcp_mean_after < tcp_mean_before);
}
