//! Hot-path benchmark baselines: emits `BENCH_tuple.json`,
//! `BENCH_poll.json`, `BENCH_buffer.json`, `BENCH_render.json`,
//! `BENCH_store.json`, `BENCH_trace.json`, and `BENCH_query.json`
//! with median ns/iter for the paths the zero-allocation,
//! incremental-rendering, tuple-store, tracing, and query work
//! targets (tuple codec, `poll_tick`, buffer ingestion, strip-chart
//! frames, store append/seek/scan, span records, indexed search), so
//! the perf trajectory is tracked in-repo from this PR onward.
//!
//! The `before` numbers are the criterion medians recorded on this
//! machine immediately before the interned-codec / allocation-free
//! tick / sharded-buffer changes landed; `after` is measured live.
//! The `render` suite instead measures both columns live: `before` is
//! the full `render_scope` redraw and `after` the `FrameCache`
//! incremental frame for the same steady-state one-column advance, so
//! `speedup` is the full-vs-incremental ratio on this machine.
//! Criterion itself is a dev-dependency (benches only), so this bin
//! self-times with `Instant` and reports the median across samples.
//!
//! Usage: `hotpath [--quick] [--out DIR]`
//!   --quick   fewer samples/iters (CI smoke)
//!   --out DIR directory for the BENCH_*.json files (default `.`)

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use gel::{Clock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{ScopeBuffer, Tuple, TupleReader, TupleWriter};
use gscope_bench::scope_with_int_signals;

/// One benchmark row: an id, the pre-optimization criterion median
/// (ns/iter; `None` for paths that did not exist before), and the
/// freshly measured median.
struct Row {
    id: &'static str,
    before_ns: Option<f64>,
    after_ns: f64,
}

struct Cfg {
    samples: usize,
    quick: bool,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median ns per call of `f` across `cfg.samples` timed batches of
/// `iters` calls each (one warm-up batch first).
fn measure<F: FnMut()>(cfg: &Cfg, iters: u64, mut f: F) -> f64 {
    for _ in 0..iters {
        f();
    }
    let samples: Vec<f64> = (0..cfg.samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    median(samples)
}

fn sample_tuples(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                TimeStamp::from_micros(i as u64 * 1_250),
                (i as f64 * 0.731).sin() * 1000.0,
                format!("signal{}", i % 8),
            )
        })
        .collect()
}

fn bench_tuple(cfg: &Cfg) -> Vec<Row> {
    let tuples = sample_tuples(1000);
    let iters = if cfg.quick { 20 } else { 200 };

    let to_line = measure(cfg, iters, || {
        let mut total = 0usize;
        for t in &tuples {
            total += t.to_line().len();
        }
        black_box(total);
    });
    let writer = measure(cfg, iters, || {
        let mut w = TupleWriter::new(Vec::with_capacity(64 * 1024));
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        black_box(w.into_inner().len());
    });
    let mut line_buf = Vec::with_capacity(64);
    let write_into = measure(cfg, iters, || {
        let mut total = 0usize;
        for t in &tuples {
            line_buf.clear();
            t.write_line_into(&mut line_buf);
            total += line_buf.len();
        }
        black_box(total);
    });

    let one_line = tuples[0].to_line();
    let parse_iters = if cfg.quick { 10_000 } else { 100_000 };
    let parse_line = measure(cfg, parse_iters, || {
        black_box(Tuple::parse_line(&one_line, 1).unwrap());
    });
    let parse_raw = measure(cfg, parse_iters, || {
        black_box(Tuple::parse_raw(&one_line, 1).unwrap().value);
    });
    let mut w = TupleWriter::new(Vec::new());
    for t in &tuples {
        w.write_tuple(t).unwrap();
    }
    let bytes = w.into_inner();
    let reader = measure(cfg, iters, || {
        black_box(TupleReader::new(bytes.as_slice()).read_all().unwrap().len());
    });

    vec![
        Row {
            id: "tuple/format/to_line_x1000",
            before_ns: Some(499_576.8),
            after_ns: to_line,
        },
        Row {
            id: "tuple/format/writer_x1000",
            before_ns: Some(497_281.0),
            after_ns: writer,
        },
        Row {
            id: "tuple/format/write_line_into_x1000",
            before_ns: None,
            after_ns: write_into,
        },
        Row {
            id: "tuple/parse/parse_line",
            before_ns: Some(90.6),
            after_ns: parse_line,
        },
        Row {
            id: "tuple/parse/parse_raw",
            before_ns: None,
            after_ns: parse_raw,
        },
        Row {
            id: "tuple/parse/reader_1000_lines",
            before_ns: Some(212_059.4),
            after_ns: reader,
        },
    ]
}

fn tick_at(n: u64, period: TimeDelta) -> TickInfo {
    let now = TimeStamp::ZERO + period.saturating_mul(n + 1);
    TickInfo {
        now,
        scheduled: now,
        missed: 0,
    }
}

fn bench_poll(cfg: &Cfg) -> Vec<Row> {
    let period = TimeDelta::from_millis(10);
    let before = [
        ("poll_tick/signals/1", 340.7),
        ("poll_tick/signals/4", 829.1),
        ("poll_tick/signals/16", 2_710.1),
        ("poll_tick/signals/64", 10_780.1),
    ];
    let iters = if cfg.quick { 2_000 } else { 20_000 };
    [1usize, 4, 16, 64]
        .iter()
        .zip(before)
        .map(|(&n, (id, before_ns))| {
            let (mut scope, vars, _clock) = scope_with_int_signals(n, 640, period);
            let mut k = 0u64;
            let after_ns = measure(cfg, iters, || {
                k += 1;
                for v in &vars {
                    v.set(k as i64);
                }
                scope.tick(&tick_at(k, period));
            });
            Row {
                id,
                before_ns: Some(before_ns),
                after_ns,
            }
        })
        .collect()
}

fn make_buffer(delay_ms: u64) -> (ScopeBuffer, VirtualClock) {
    let clock = VirtualClock::new();
    let buf = ScopeBuffer::new(
        Arc::new(clock.clone()) as Arc<dyn Clock>,
        TimeDelta::from_millis(delay_ms),
    );
    (buf, clock)
}

fn bench_buffer(cfg: &Cfg) -> Vec<Row> {
    let mut rows = Vec::new();

    let (buf, _clock) = make_buffer(1_000_000);
    let push_iters = if cfg.quick { 10_000 } else { 50_000 };
    // Clear between samples so the shard holds at most one batch —
    // otherwise the benchmark measures the growth of a multi-million
    // entry Vec, not the push path.
    let single = median(
        (0..cfg.samples.max(10))
            .map(|_| {
                buf.clear();
                let start = Instant::now();
                for i in 1..=push_iters {
                    black_box(buf.push_sample("s", TimeStamp::from_micros(i), i as f64));
                }
                start.elapsed().as_nanos() as f64 / push_iters as f64
            })
            .collect(),
    );
    buf.clear();
    rows.push(Row {
        id: "buffer/push/single_producer",
        before_ns: Some(59.7),
        after_ns: single,
    });

    let (late_buf, late_clock) = make_buffer(1);
    late_clock.advance(TimeDelta::from_secs(100));
    let late = measure(cfg, push_iters, || {
        black_box(late_buf.push_sample("s", TimeStamp::from_millis(1), 1.0));
    });
    rows.push(Row {
        id: "buffer/push/push_then_late_drop",
        before_ns: Some(46.5),
        after_ns: late,
    });

    let drain_before = [
        ("buffer/drain/100", 100usize, 4_678.8),
        ("buffer/drain/1000", 1_000, 64_796.6),
        ("buffer/drain/10000", 10_000, 915_165.2),
    ];
    for (id, n, before_ns) in drain_before {
        let (buf, _clock) = make_buffer(1_000_000);
        let mut out = Vec::with_capacity(n);
        // Time only the drain: the fills between timed sections are
        // excluded by timing each drain individually and taking the
        // median, mirroring criterion's iter_with_setup.
        let samples: Vec<f64> = (0..cfg.samples.max(10))
            .map(|_| {
                for i in 0..n {
                    buf.push_sample("s", TimeStamp::from_micros(i as u64), i as f64);
                }
                out.clear();
                let start = Instant::now();
                buf.drain_until_into(TimeStamp::from_secs(3600), &mut out);
                let ns = start.elapsed().as_nanos() as f64;
                assert_eq!(out.len(), n);
                ns
            })
            .collect();
        rows.push(Row {
            id,
            before_ns: Some(before_ns),
            after_ns: median(samples),
        });
    }

    let (buf, _clock) = make_buffer(1_000_000);
    let contended_iters = if cfg.quick { 20 } else { 100 };
    let contended = measure(cfg, contended_iters, || {
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let bb = buf.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        bb.push_sample("s", TimeStamp::from_micros(tid * 1000 + i), i as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        black_box(buf.drain_until(TimeStamp::from_secs(3600)).len());
    });
    rows.push(Row {
        id: "buffer/contended_push/4_threads_x_250",
        before_ns: Some(246_838.3),
        after_ns: contended,
    });

    rows
}

/// Full redraw vs incremental frame for a steady-state one-column
/// advance, across canvas widths × signal counts. Each timed iteration
/// ticks the scope once (common to both columns) and renders; the
/// scope history is saturated first so every frame is a genuine
/// one-column scroll.
fn bench_render(cfg: &Cfg) -> Vec<Row> {
    let period = TimeDelta::from_millis(10);
    let combos: [(&'static str, usize, usize); 9] = [
        ("render/frame/w120_s1", 120, 1),
        ("render/frame/w120_s4", 120, 4),
        ("render/frame/w120_s16", 120, 16),
        ("render/frame/w480_s1", 480, 1),
        ("render/frame/w480_s4", 480, 4),
        ("render/frame/w480_s16", 480, 16),
        ("render/frame/w1920_s1", 1920, 1),
        ("render/frame/w1920_s4", 1920, 4),
        ("render/frame/w1920_s16", 1920, 16),
    ];
    let iters = if cfg.quick { 30 } else { 120 };
    combos
        .iter()
        .map(|&(id, width, nsig)| {
            let (mut scope, vars, _clock) = scope_with_int_signals(nsig, width, period);
            let mut k = 0u64;
            let mut advance = |scope: &mut gscope::Scope| {
                k += 1;
                for (i, v) in vars.iter().enumerate() {
                    v.set((((k + i as u64) * 13) % 100) as i64);
                }
                scope.tick(&tick_at(k, period));
            };
            // Saturate the history so each frame advances one column.
            for _ in 0..width + 8 {
                advance(&mut scope);
            }
            let full = measure(cfg, iters, || {
                advance(&mut scope);
                black_box(grender::render_scope(&scope).width());
            });
            let mut cache = grender::FrameCache::new();
            cache.render(&scope);
            let incremental = measure(cfg, iters, || {
                advance(&mut scope);
                black_box(cache.render(&scope).width());
            });
            assert_eq!(
                cache.stats().content + cache.stats().full,
                1,
                "steady-state frames must take the incremental path ({id})"
            );
            Row {
                id,
                before_ns: Some(full),
                after_ns: incremental,
            }
        })
        .collect()
}

/// Store hot paths: binary append vs the text writer, indexed seek vs
/// a front-to-back scan, and full-scan decode throughput. `before` is
/// the text/scan baseline measured live in the same process, so
/// `speedup` is the binary-vs-text (resp. index-vs-scan) ratio on this
/// machine.
fn bench_store(cfg: &Cfg) -> Vec<Row> {
    use gscope::TupleSource;
    use gstore::{Store, StoreConfig, StoreReader};

    let dir = std::env::temp_dir().join(format!("gstore-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rows = Vec::new();
    let tuples = sample_tuples(1000);
    let iters = if cfg.quick { 20 } else { 200 };

    // Store append: identical batches into an on-disk store, block
    // flushes and segment rolls included. Times advance across batches
    // so each run is one monotone stream.
    let append_dir = dir.join("append");
    let mut store = Store::open(&append_dir, StoreConfig::default()).expect("open bench store");
    let mut base_us = 0u64;
    let append = measure(cfg, iters, || {
        for t in &tuples {
            store
                .append(
                    TimeStamp::from_micros(base_us + t.time.as_micros()),
                    t.value,
                    t.name.as_deref(),
                )
                .unwrap();
        }
        base_us += 1_250 * 1000;
        black_box(base_us);
    });
    store.close().expect("close bench store");
    // Text baseline: the same tuple stream through the §3.3 line
    // writer into a buffered file — the recorder's production path
    // (scope recording and `gtool gen` both persist text this way).
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let text_file = std::fs::File::create(dir.join("baseline.tuples")).expect("create text file");
    let mut w = TupleWriter::new(std::io::BufWriter::new(text_file));
    let mut base_us = 0u64;
    let text = measure(cfg, iters, || {
        for t in &tuples {
            w.write_parts(
                TimeStamp::from_micros(base_us + t.time.as_micros()),
                t.value,
                t.name.as_deref(),
            )
            .unwrap();
        }
        base_us += 1_250 * 1000;
        black_box(base_us);
    });
    w.flush().expect("flush text baseline");
    // Force the baseline's dirty pages out before timing the store:
    // otherwise the kernel's writeback throttling for the ~100MB text
    // backlog lands on the store phase and skews the comparison.
    let f = w.into_inner().into_inner().expect("unwrap text writer");
    f.sync_all().expect("sync text baseline");
    drop(f);

    rows.push(Row {
        id: "store/append/binary_vs_text_x1000",
        before_ns: Some(text),
        after_ns: append,
    });

    // Seek vs scan: 100k frames over many small segments, target time
    // near the end. `before` decodes every frame up to the target;
    // `after` goes through the per-segment first-times and one block
    // index.
    let seek_dir = dir.join("seek");
    let seek_cfg = StoreConfig {
        segment_bytes: 64 * 1024,
        ..StoreConfig::default()
    };
    let mut store = Store::open(&seek_dir, seek_cfg).expect("open seek store");
    let frames = if cfg.quick { 20_000u64 } else { 100_000 };
    for i in 0..frames {
        store
            .append(
                TimeStamp::from_micros(i * 1_000),
                (i as f64 * 0.731).sin(),
                Some("carrier"),
            )
            .unwrap();
    }
    store.close().expect("close seek store");
    let target = TimeStamp::from_micros((frames - 5) * 1_000);
    let scan_iters = if cfg.quick { 2 } else { 5 };
    let scan = measure(cfg, scan_iters, || {
        let mut r = StoreReader::open(&seek_dir).unwrap();
        let mut last = 0.0;
        while let Some(t) = r.next_tuple().unwrap() {
            if t.time >= target {
                last = t.value;
                break;
            }
        }
        black_box(last);
    });
    let seek_iters = if cfg.quick { 50 } else { 200 };
    let seek = measure(cfg, seek_iters, || {
        let mut r = StoreReader::open(&seek_dir).unwrap();
        r.seek(target).unwrap();
        black_box(r.next_tuple().unwrap().expect("frame at target").value);
    });
    rows.push(Row {
        id: "store/seek/indexed_vs_scan",
        before_ns: Some(scan),
        after_ns: seek,
    });

    // Full-scan decode throughput, per frame.
    let scan_all = measure(cfg, scan_iters, || {
        let mut r = StoreReader::open(&seek_dir).unwrap();
        let mut n = 0u64;
        while let Some(t) = r.next_tuple().unwrap() {
            n += 1;
            black_box(t.value);
        }
        assert_eq!(n, frames);
    });
    rows.push(Row {
        id: "store/scan/read_all_per_frame",
        before_ns: None,
        after_ns: scan_all / frames as f64,
    });

    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Span-record overhead vs the counter hot path the earlier
/// zero-allocation work established (increment ≈ 7ns on the reference
/// machine, per the telemetry docs). The acceptance row prices one
/// ring record against twice that counter cost — the live-measured
/// increment, floored at the documented 7ns reference so the budget
/// is "2x the PR 1 counter" and not 2x whatever this machine's atomics
/// happen to do today. `speedup >= 1.0` means a span record costs no
/// more than two counter bumps and tracing can stay on in production.
/// The other rows are informational: the trace clock read and the
/// full begin/end guard (two records + two clock reads + the causal
/// stack push/pop).
const REFERENCE_COUNTER_NS: f64 = 7.0;

fn bench_trace(cfg: &Cfg) -> Vec<Row> {
    use gtel::{Registry, TraceLog};

    let iters = if cfg.quick { 50_000 } else { 500_000 };
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let counter_ns = measure(cfg, iters, || {
        counter.inc();
    });
    black_box(counter.get());

    // Raw ring record with precomputed timestamps: span-id allocation
    // plus the seqlock slot protocol (claim, write, publish). The
    // timestamps are hoisted so the row prices the record call, not
    // loop arithmetic the counter baseline doesn't do.
    // The ring's slot stores and the seq claim are side effects, so
    // no black_box is needed; the loop body is exactly one record
    // call, mirroring the baseline's one increment.
    // Same shape as the process-wide tracer: two shards, with this
    // (first-recording) thread on the exclusive RMW-free fast path.
    let log = Arc::new(TraceLog::with_shards(32_768, 2));
    let (t0, t1) = (black_box(1_000u64), black_box(1_500u64));
    let record_ns = measure(cfg, iters, || {
        log.record_span_at("bench.span", 7, t0, t1);
    });

    let clock_ns = measure(cfg, iters, || {
        black_box(gtel::fast_now_ns());
    });

    // Full scoped span through the thread-local tracer.
    let _tracer = gtel::with_thread_tracer(Arc::clone(&log));
    let mut j = 0u64;
    let guard_ns = measure(cfg, iters, || {
        j += 1;
        let _s = gtel::span("bench.span", j);
    });
    black_box(log.recorded());

    vec![
        Row {
            id: "trace/baseline/counter_inc",
            before_ns: None,
            after_ns: counter_ns,
        },
        Row {
            id: "trace/record/span_record_vs_2x_counter",
            before_ns: Some(2.0 * counter_ns.max(REFERENCE_COUNTER_NS)),
            after_ns: record_ns,
        },
        Row {
            id: "trace/clock/fast_now_ns",
            before_ns: None,
            after_ns: clock_ns,
        },
        Row {
            id: "trace/span/guard_begin_end",
            before_ns: None,
            after_ns: guard_ns,
        },
    ]
}

/// Indexed query vs a full linear replay at increasing store sizes,
/// plus the append hot path with live index maintenance. A rare
/// signal (one frame per 100k) stands in for the needle a post-mortem
/// hunt chases: the planner answers from `.gidx` posting lists and
/// block headers, the `before` column replays every frame through the
/// same predicate.
fn bench_query(cfg: &Cfg) -> Vec<Row> {
    use gquery::{parse_query, QueryEngine};
    use gstore::{Store, StoreConfig};

    const NAMES: [&str; 8] = [
        "net.rx",
        "net.tx",
        "scope.tick",
        "scope.depth",
        "gel.lag",
        "cpu.load",
        "mem.rss",
        "disk.io",
    ];

    let dir = std::env::temp_dir().join(format!("gquery-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rows = Vec::new();

    let sizes: &[(u64, &str)] = if cfg.quick {
        &[(100_000, "query/indexed_vs_linear/1e5_frames")]
    } else {
        &[
            (100_000, "query/indexed_vs_linear/1e5_frames"),
            (1_000_000, "query/indexed_vs_linear/1e6_frames"),
            (10_000_000, "query/indexed_vs_linear/1e7_frames"),
        ]
    };
    let q = parse_query("name=rare.event").expect("parse bench query");
    for &(frames, id) in sizes {
        let sdir = dir.join(format!("f{frames}"));
        let mut store = Store::open(&sdir, StoreConfig::default()).expect("open query store");
        for i in 0..frames {
            let name = if i % 100_000 == 99_999 {
                "rare.event"
            } else {
                NAMES[(i % 8) as usize]
            };
            store
                .append(
                    TimeStamp::from_micros(i * 100),
                    (i as f64 * 0.731).sin(),
                    Some(name),
                )
                .unwrap();
        }
        store.close().expect("close query store");

        let engine = QueryEngine::open(&sdir).expect("open query engine");
        // Warm the page cache and check both paths agree before timing.
        let indexed0 = engine.query(&q).unwrap();
        let linear0 = engine.linear_scan(&q).unwrap();
        assert_eq!(
            indexed0.matches, linear0.matches,
            "planner must match replay ({id})"
        );
        assert_eq!(indexed0.matches.len() as u64, frames / 100_000);

        // The linear replay decodes every frame, so time whole runs
        // (few of them at 1e7) rather than `measure`'s batched loops.
        let lin_runs = if cfg.quick { 3 } else { 5 };
        let linear = median(
            (0..lin_runs)
                .map(|_| {
                    let start = Instant::now();
                    black_box(engine.linear_scan(&q).unwrap().matches.len());
                    start.elapsed().as_nanos() as f64
                })
                .collect(),
        );
        let idx_runs = if cfg.quick { 10 } else { 30 };
        let indexed = median(
            (0..idx_runs)
                .map(|_| {
                    let start = Instant::now();
                    black_box(engine.query(&q).unwrap().matches.len());
                    start.elapsed().as_nanos() as f64
                })
                .collect(),
        );
        rows.push(Row {
            id,
            before_ns: Some(linear),
            after_ns: indexed,
        });
    }

    // Append hot path with index maintenance off vs on — same shape
    // as the store suite's append row (1000 named tuples per
    // iteration, block flushes and segment rolls included). The two
    // stores are timed interleaved, alternating which goes first each
    // sample, and each column reports its *minimum* sample: kernel
    // writeback stalls and neighbor noise easily dwarf the per-frame
    // cost over a sustained run, and the best case is the one sample
    // of each column that dodged all of it, so min-vs-min is the
    // interference-free comparison. `speedup` reads as "fraction of
    // the index-free append throughput kept"; `>= 0.90` means the
    // index costs under 10% on the hot path.
    let tuples = sample_tuples(1000);
    let iters = if cfg.quick { 20 } else { 200 };
    let open_store = |subdir: &str, index_sidecars: bool| {
        let cfg_store = StoreConfig {
            index_sidecars,
            ..StoreConfig::default()
        };
        Store::open(dir.join(subdir), cfg_store).expect("open append store")
    };
    let mut off_store = open_store("append-off", false);
    let mut on_store = open_store("append-on", true);
    let mut base_us = 0u64;
    let batch = |store: &mut Store, base_us: &mut u64| {
        for t in &tuples {
            store
                .append(
                    TimeStamp::from_micros(*base_us + t.time.as_micros()),
                    t.value,
                    t.name.as_deref(),
                )
                .unwrap();
        }
        *base_us += 1_250 * 1000;
    };
    for _ in 0..iters {
        batch(&mut off_store, &mut base_us);
        batch(&mut on_store, &mut base_us);
    }
    let mut off_samples = Vec::new();
    let mut on_samples = Vec::new();
    let timed = |store: &mut Store, base_us: &mut u64, out: &mut Vec<f64>| {
        let start = Instant::now();
        for _ in 0..iters {
            batch(store, base_us);
        }
        out.push(start.elapsed().as_nanos() as f64 / iters as f64);
    };
    for s in 0..cfg.samples {
        if s % 2 == 0 {
            timed(&mut off_store, &mut base_us, &mut off_samples);
            timed(&mut on_store, &mut base_us, &mut on_samples);
        } else {
            timed(&mut on_store, &mut base_us, &mut on_samples);
            timed(&mut off_store, &mut base_us, &mut off_samples);
        }
    }
    off_store.close().expect("close append store");
    on_store.close().expect("close append store");
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    rows.push(Row {
        id: "query/append/index_on_vs_off_x1000",
        before_ns: Some(best(&off_samples)),
        after_ns: best(&on_samples),
    });

    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn fmt_ns(x: f64) -> String {
    format!("{x:.1}")
}

fn write_json(dir: &str, bench: &str, rows: &[Row]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    s.push_str("  \"unit\": \"ns_per_iter\",\n");
    s.push_str("  \"results\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let before = r.before_ns.map_or_else(|| "null".to_owned(), fmt_ns);
        let speedup = r
            .before_ns
            .map_or_else(|| "null".to_owned(), |b| format!("{:.2}", b / r.after_ns));
        s.push_str(&format!(
            "    \"{}\": {{ \"before\": {}, \"after\": {}, \"speedup\": {} }}{}\n",
            r.id,
            before,
            fmt_ns(r.after_ns),
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    let path = format!("{dir}/BENCH_{bench}.json");
    std::fs::write(&path, &s)?;
    Ok(path)
}

fn print_rows(rows: &[Row]) {
    for r in rows {
        match r.before_ns {
            Some(b) => println!(
                "  {:<42} before {:>12.1}  after {:>12.1}  ({:.2}x)",
                r.id,
                b,
                r.after_ns,
                b / r.after_ns
            ),
            None => println!(
                "  {:<42} before          --  after {:>12.1}",
                r.id, r.after_ns
            ),
        }
    }
}

fn main() {
    let mut quick = false;
    let mut out = ".".to_owned();
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a directory"),
            "--only" => only = Some(args.next().expect("--only requires a suite name")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = Cfg {
        samples: if quick { 7 } else { 31 },
        quick,
    };

    type Suite = fn(&Cfg) -> Vec<Row>;
    let suites: [(&str, Suite); 7] = [
        ("tuple", bench_tuple),
        ("poll", bench_poll),
        ("buffer", bench_buffer),
        ("render", bench_render),
        ("store", bench_store),
        ("trace", bench_trace),
        ("query", bench_query),
    ];
    let mut matched = false;
    for (bench, run) in suites {
        if only.as_deref().is_some_and(|o| o != bench) {
            continue;
        }
        matched = true;
        let rows = run(&cfg);
        let path = write_json(&out, bench, &rows).expect("write BENCH json");
        println!("{path}");
        print_rows(&rows);
    }
    if !matched {
        eprintln!("no suite named {:?}", only.unwrap_or_default());
        std::process::exit(2);
    }
}
