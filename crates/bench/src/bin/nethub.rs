//! Streaming-hub scale benchmark: emits `BENCH_net.json`.
//!
//! Three experiment families:
//!
//! - **Ingest capacity** (the headline before/after): N clients all
//!   sending, "before" = the seed server's shape — one thread that
//!   scans every connection with a 4 KiB read buffer and parses §3.3
//!   text lines one at a time, bumping telemetry per tuple — and
//!   "after" = the sharded hub (4 shards, epoll readiness, binary
//!   frames, batched accounting). At 1k/10k clients this runs over
//!   real loopback TCP sockets (the client ends live in a re-exec'd
//!   child process so each process stays under the fd rlimit); the
//!   100k row uses netsim links, which fit in memory but undercharge
//!   the seed's O(N)-syscall scan, so it understates the hub's edge.
//! - **Fan-out delivery** (netsim): N subscribers, one producer paced
//!   at a sustainable rate; reports delivered tuples/sec and the p99
//!   producer-stamp → subscriber-decode lateness.
//! - **Wire cost**: bytes on the wire per delivered tuple, text vs
//!   binary framing, for an identical fan-out.
//!
//! Usage: nethub [--quick] [--out DIR]
//!   --quick   smaller populations and shorter windows (CI smoke)
//!   --out DIR directory for BENCH_net.json (default `.`)

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gel::TimeStamp;
use gnet::wire::{self, Msg};
use gnet::{HubConfig, ScopeClient, ScopeServer};
use gscope::Tuple;
use netsim::{LinkClock, LinkConfig, SimConn};

// ---------------------------------------------------------------- seed shape

/// The seed server's ingest loop, faithfully reproduced over sim
/// connections: full scan of every client per poll, 4 KiB reads,
/// per-line text parsing, per-tuple stats and telemetry increments.
struct SeedShapeServer {
    clients: Vec<(SimConn, Vec<u8>)>,
    tuples_received: u64,
    parse_errors: u64,
    tuples_dropped: u64,
    tel_in: Arc<gtel::Counter>,
    tel_err: Arc<gtel::Counter>,
    tel_dropped: Arc<gtel::Counter>,
}

impl SeedShapeServer {
    fn new(conns: Vec<SimConn>) -> SeedShapeServer {
        let registry = gtel::Registry::new();
        SeedShapeServer {
            clients: conns.into_iter().map(|c| (c, Vec::new())).collect(),
            tuples_received: 0,
            parse_errors: 0,
            tuples_dropped: 0,
            tel_in: registry.counter("net.server.tuples_in"),
            tel_err: registry.counter("net.server.parse_errors"),
            tel_dropped: registry.counter("net.server.tuples_dropped"),
        }
    }

    fn poll(&mut self) {
        let mut buf = [0u8; 4096];
        for (conn, partial) in self.clients.iter_mut() {
            loop {
                match conn.read_bytes(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => partial.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            let mut consumed = 0;
            let mut lineno = 0;
            while let Some(pos) = partial[consumed..].iter().position(|&b| b == b'\n') {
                let line = &partial[consumed..consumed + pos];
                consumed += pos + 1;
                lineno += 1;
                let parsed = std::str::from_utf8(line).ok().and_then(|s| {
                    let trimmed = s.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        return Some(None);
                    }
                    Tuple::parse_raw(trimmed, lineno).ok().map(Some)
                });
                match parsed {
                    Some(Some(raw)) => {
                        // The seed's deliver(): intern the name, count
                        // the tuple, count the drop (no scope
                        // attached), each with its telemetry mirror.
                        let _tuple = raw.to_tuple();
                        self.tuples_received += 1;
                        self.tel_in.inc();
                        self.tuples_dropped += 1;
                        self.tel_dropped.inc();
                    }
                    Some(None) => {}
                    None => {
                        self.parse_errors += 1;
                        self.tel_err.inc();
                    }
                }
            }
            partial.drain(..consumed);
        }
    }
}

// ------------------------------------------------------------------- ingest

/// Pre-encodes one burst of `count` tuples stamped `base_us`.
fn text_burst(out: &mut Vec<u8>, base_us: u64, count: usize, seq: &mut u64) {
    out.clear();
    for i in 0..count {
        gscope::write_tuple_line(
            out,
            TimeStamp::from_micros(base_us + i as u64),
            *seq as f64,
            Some("bench.sig"),
        );
        out.push(b'\n');
        *seq += 1;
    }
}

fn binary_burst(
    out: &mut Vec<u8>,
    enc: &mut wire::BatchEncoder,
    name: &Arc<str>,
    base_us: u64,
    count: usize,
    seq: &mut u64,
) {
    out.clear();
    for i in 0..count {
        enc.push(base_us + i as u64, *seq as f64, Some(name));
        *seq += 1;
    }
    enc.frame_into(out);
}

/// Many-senders ingest run. `hub` = the new server (4 shards, binary
/// clients); otherwise the seed shape (single scan thread, text).
/// Returns sustained tuples/sec.
fn run_ingest(clients: usize, hub: bool, secs: f64) -> f64 {
    let mtu: usize = std::env::var("NETHUB_MTU")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1448);
    let link = LinkConfig {
        mtu,
        ..LinkConfig::default()
    };
    let mut server_hub = None;
    let mut server_seed = None;
    let mut ends = Vec::with_capacity(clients);
    if hub {
        let pacing: u64 = std::env::var("NETHUB_PACING")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        let read_budget: usize = std::env::var("NETHUB_READ_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256 << 10);
        let cfg = HubConfig {
            shards: 4,
            scan_pacing_us: pacing,
            read_budget,
            ..HubConfig::default()
        };
        let server = ScopeServer::with_config("127.0.0.1:0", cfg).expect("bind");
        let mut hello = Vec::new();
        wire::frame_hello(&mut hello, 0);
        for _ in 0..clients {
            let (server_end, client_end) = SimConn::pair(link, LinkClock::real());
            server.add_conn(Box::new(server_end));
            client_end.write_bytes(&hello).expect("hello");
            ends.push(client_end);
        }
        let mut server = server;
        server.spawn_shards();
        let deadline = Instant::now() + Duration::from_secs(60);
        while server.client_count() < clients {
            std::thread::sleep(Duration::from_millis(1));
            assert!(Instant::now() < deadline, "adoption stalled");
        }
        server_hub = Some(server);
    } else {
        let mut server_ends = Vec::with_capacity(clients);
        for _ in 0..clients {
            let (server_end, client_end) = SimConn::pair(link, LinkClock::real());
            server_ends.push(server_end);
            ends.push(client_end);
        }
        server_seed = Some(SeedShapeServer::new(server_ends));
    }

    // Rotating writer: every iteration, one pre-encoded burst goes to
    // a stride of clients, so the whole population sends over time.
    let burst: usize = std::env::var("NETHUB_BURST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let repeat: usize = std::env::var("NETHUB_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let stride = (clients / 64).max(1);
    let mut payload = Vec::new();
    let mut enc = wire::BatchEncoder::new();
    let name: Arc<str> = Arc::from("bench.sig");
    let mut seq = 0u64;
    let mut next = 0usize;

    let epoch = Instant::now();
    let warmup = Duration::from_millis(300);
    let window = Duration::from_secs_f64(secs);
    let mut base_count = 0u64;
    let mut base_at = epoch;
    let mut base_taken = false;
    let deadline = epoch + warmup + window;
    while Instant::now() < deadline {
        let received = match (&server_hub, &mut server_seed) {
            (Some(s), _) => s.stats().tuples_received,
            (None, Some(s)) => s.tuples_received,
            _ => unreachable!(),
        };
        if !base_taken && epoch.elapsed() >= warmup {
            base_count = received;
            base_at = Instant::now();
            base_taken = true;
        }
        let base_us = epoch.elapsed().as_micros() as u64;
        if hub {
            binary_burst(&mut payload, &mut enc, &name, base_us, burst, &mut seq);
        } else {
            text_burst(&mut payload, base_us, burst, &mut seq);
        }
        for _ in 0..stride {
            let c = &ends[next];
            next = (next + 1) % ends.len();
            // WouldBlock = this client's window is full; skip it, the
            // server is the bottleneck being measured.
            for _ in 0..repeat {
                let _ = c.write_bytes(&payload);
            }
        }
        match server_seed.as_mut() {
            Some(s) => s.poll(),
            None => std::thread::yield_now(),
        }
    }
    let end_count = match (&server_hub, &server_seed) {
        (Some(s), _) => s.stats().tuples_received,
        (None, Some(s)) => s.tuples_received,
        _ => unreachable!(),
    };
    let elapsed = base_at.elapsed().as_secs_f64().max(1e-6);
    (end_count.saturating_sub(base_count)) as f64 / elapsed
}

// --------------------------------------------------------------- tcp ingest

/// The seed server over real sockets: nonblocking accept plus a full
/// scan of every connection per poll, exactly the seed's loop.
struct SeedTcpServer {
    listener: TcpListener,
    clients: Vec<(TcpStream, Vec<u8>)>,
    tuples_received: u64,
    parse_errors: u64,
    tuples_dropped: u64,
    tel_in: Arc<gtel::Counter>,
    tel_err: Arc<gtel::Counter>,
    tel_dropped: Arc<gtel::Counter>,
}

impl SeedTcpServer {
    fn bind() -> SeedTcpServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let registry = gtel::Registry::new();
        SeedTcpServer {
            listener,
            clients: Vec::new(),
            tuples_received: 0,
            parse_errors: 0,
            tuples_dropped: 0,
            tel_in: registry.counter("net.server.tuples_in"),
            tel_err: registry.counter("net.server.parse_errors"),
            tel_dropped: registry.counter("net.server.tuples_dropped"),
        }
    }

    fn accept_pending(&mut self) {
        while let Ok((s, _)) = self.listener.accept() {
            s.set_nonblocking(true).expect("nonblocking");
            self.clients.push((s, Vec::new()));
        }
    }

    /// One full seed poll: accept, then scan every client.
    fn poll(&mut self) {
        self.accept_pending();
        self.read_slice(0, self.clients.len());
    }

    /// Scans `clients[start..start+len]` exactly the way the seed's
    /// full scan visits them: read to WouldBlock in 4 KiB chunks,
    /// parse complete lines, count per tuple. Slicing changes nothing
    /// per connection — it only lets the measurement loop check the
    /// clock between slices instead of once per full scan.
    fn read_slice(&mut self, start: usize, len: usize) {
        let end = (start + len).min(self.clients.len());
        let mut buf = [0u8; 4096];
        for (conn, partial) in self.clients[start..end].iter_mut() {
            loop {
                match conn.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => partial.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            let mut consumed = 0;
            let mut lineno = 0;
            while let Some(pos) = partial[consumed..].iter().position(|&b| b == b'\n') {
                let line = &partial[consumed..consumed + pos];
                consumed += pos + 1;
                lineno += 1;
                let parsed = std::str::from_utf8(line).ok().and_then(|s| {
                    let trimmed = s.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        return Some(None);
                    }
                    Tuple::parse_raw(trimmed, lineno).ok().map(Some)
                });
                match parsed {
                    Some(Some(raw)) => {
                        let _tuple = raw.to_tuple();
                        self.tuples_received += 1;
                        self.tel_in.inc();
                        self.tuples_dropped += 1;
                        self.tel_dropped.inc();
                    }
                    Some(None) => {}
                    None => {
                        self.parse_errors += 1;
                        self.tel_err.inc();
                    }
                }
            }
            partial.drain(..consumed);
        }
    }
}

/// Child-process flood generator: connects `clients` real sockets and
/// writes pre-encoded bursts to a rotating stride forever (the parent
/// kills it when the measurement window closes). Separate process so
/// the client-side fds don't count against the server's rlimit.
fn flood_child(addr: &str, clients: usize, binary: bool, burst: usize) -> ! {
    let mut hello = Vec::new();
    wire::frame_hello(&mut hello, 0);
    // (stream, carry) — a partial write's remainder must go out before
    // any new frame or the byte stream is corrupt.
    let mut conns: Vec<(TcpStream, Vec<u8>)> = Vec::with_capacity(clients);
    for _ in 0..clients {
        let s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        let mut s = s;
        if binary {
            s.write_all(&hello).expect("hello");
        }
        s.set_nonblocking(true).expect("nonblocking");
        conns.push((s, Vec::new()));
    }

    let stride = (clients / 64).max(1);
    let mut payload = Vec::new();
    let mut enc = wire::BatchEncoder::new();
    let name: Arc<str> = Arc::from("bench.sig");
    let mut seq = 0u64;
    let mut next = 0usize;
    let epoch = Instant::now();
    loop {
        let base_us = epoch.elapsed().as_micros() as u64;
        if binary {
            binary_burst(&mut payload, &mut enc, &name, base_us, burst, &mut seq);
        } else {
            text_burst(&mut payload, base_us, burst, &mut seq);
        }
        for _ in 0..stride {
            let i = next;
            next = (next + 1) % conns.len();
            let (s, carry) = &mut conns[i];
            if !carry.is_empty() {
                match s.write(carry) {
                    Ok(n) => {
                        carry.drain(..n);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
                if !carry.is_empty() {
                    continue;
                }
            }
            match s.write(&payload) {
                Ok(n) if n < payload.len() => carry.extend_from_slice(&payload[n..]),
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
    }
}

/// Real-socket ingest run: seed shape vs hub over loopback TCP, the
/// flood coming from a child process. Returns sustained tuples/sec.
fn run_ingest_tcp(clients: usize, hub: bool, secs: f64) -> f64 {
    let mut server_hub = None;
    let mut server_seed = None;
    let addr;
    if hub {
        let cfg = HubConfig {
            shards: 4,
            ..HubConfig::default()
        };
        let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).expect("bind");
        addr = server.local_addr().expect("addr");
        server.spawn_shards();
        server_hub = Some(server);
    } else {
        let seed = SeedTcpServer::bind();
        addr = seed.listener.local_addr().expect("addr");
        server_seed = Some(seed);
    }

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .arg("--flood")
        .arg(addr.to_string())
        .arg(clients.to_string())
        .arg(if hub { "binary" } else { "text" })
        .arg("256")
        .spawn()
        .expect("spawn flood child");

    // Wait for the whole population to be adopted.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let connected = match (&server_hub, &mut server_seed) {
            (Some(s), _) => s.client_count(),
            (None, Some(s)) => {
                s.poll();
                s.clients.len()
            }
            _ => unreachable!(),
        };
        if connected >= clients {
            break;
        }
        assert!(Instant::now() < deadline, "tcp adoption stalled");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Measurement. The hub runs on its own threads, so this thread
    // just samples its counters. The seed IS this thread; at scale a
    // single full scan can outlast the whole window (kernel rcvbufs
    // accumulate megabytes per connection while parse is busy), so the
    // seed side advances in slices — same per-connection work as the
    // original loop, but the clock gets checked between slices instead
    // of once per full scan.
    let epoch = Instant::now();
    let warmup = Duration::from_millis(500);
    let window = Duration::from_secs_f64(secs);
    let deadline = epoch + warmup + window;
    let mut base_count = 0u64;
    let mut base_at = epoch;
    let mut base_taken = false;
    let slice = 32usize;
    let mut cursor = 0usize;
    let (end_count, elapsed) = loop {
        let received = match (&server_hub, &mut server_seed) {
            (Some(s), _) => {
                std::thread::sleep(Duration::from_millis(5));
                s.stats().tuples_received
            }
            (None, Some(s)) => {
                if cursor == 0 {
                    s.accept_pending();
                }
                s.read_slice(cursor, slice);
                cursor += slice;
                if cursor >= s.clients.len() {
                    cursor = 0;
                }
                s.tuples_received
            }
            _ => unreachable!(),
        };
        let now = Instant::now();
        if !base_taken {
            if now.duration_since(epoch) >= warmup {
                base_count = received;
                base_at = now;
                base_taken = true;
            }
        } else if now >= deadline {
            break (received, now.duration_since(base_at));
        }
    };
    let _ = child.kill();
    let _ = child.wait();
    if let Some(s) = &server_seed {
        assert_eq!(s.parse_errors, 0, "seed flood stream must parse clean");
    }
    (end_count.saturating_sub(base_count)) as f64 / elapsed.as_secs_f64().max(1e-6)
}

// ------------------------------------------------------------------ fan-out

struct DrainStats {
    lateness_us: Mutex<Vec<u64>>,
    bytes: AtomicU64,
}

/// Drains a slice of subscriber ends until `stop`; the first
/// `sampled` connections are decoded for per-tuple lateness, the rest
/// read-and-discard.
fn drain_loop(
    ends: &[SimConn],
    sampled: usize,
    binary: bool,
    epoch: Instant,
    stop: &AtomicBool,
    stats: &DrainStats,
) {
    let mut buf = vec![0u8; 64 << 10];
    let mut inbufs: Vec<Vec<u8>> = vec![Vec::new(); sampled.min(ends.len())];
    let mut recs: Vec<wire::WireRec> = Vec::new();
    let mut lateness: Vec<u64> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let mut idle = true;
        for (i, end) in ends.iter().enumerate() {
            while let Ok(n) = end.read_bytes(&mut buf) {
                if n == 0 {
                    break;
                }
                idle = false;
                stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                if i < inbufs.len() {
                    inbufs[i].extend_from_slice(&buf[..n]);
                }
            }
        }
        let now_us = epoch.elapsed().as_micros() as u64;
        for inbuf in inbufs.iter_mut() {
            let mut consumed = 0usize;
            loop {
                match wire::split_message(&inbuf[consumed..]) {
                    Ok(Some((msg, n))) => {
                        consumed += n;
                        match msg {
                            Msg::Frame {
                                op: wire::OP_DATA,
                                body,
                            } if binary => {
                                recs.clear();
                                if wire::decode_data(body, &mut recs).is_ok() {
                                    for r in &recs {
                                        lateness.push(now_us.saturating_sub(r.time_us));
                                    }
                                }
                            }
                            Msg::Line(line) if !binary => {
                                // "<ms>.<us> <value> [name]": only the
                                // time field matters for lateness.
                                if let Some(t) = std::str::from_utf8(line)
                                    .ok()
                                    .and_then(|s| s.split_whitespace().next())
                                    .and_then(|f| f.parse::<f64>().ok())
                                {
                                    let t_us = (t * 1_000.0) as u64;
                                    lateness.push(now_us.saturating_sub(t_us));
                                }
                            }
                            _ => {}
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        inbuf.clear();
                        consumed = 0;
                        break;
                    }
                }
            }
            inbuf.drain(..consumed);
        }
        if idle {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    if !lateness.is_empty() {
        stats.lateness_us.lock().unwrap().extend(lateness);
    }
}

struct FanoutResult {
    delivered_per_sec: f64,
    p99_lateness_us: f64,
    bytes_per_tuple: f64,
    shed_events: u64,
}

/// One paced fan-out run: `clients` subscribers, one producer sending
/// `rate` tuples/sec (chosen under capacity so lateness is the
/// steady-state pipeline delay, not queue growth).
fn run_fanout(clients: usize, binary: bool, rate: f64, secs: f64) -> FanoutResult {
    let cfg = HubConfig {
        shards: 4,
        ..HubConfig::default()
    };
    let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr");

    // Large send windows: the bench measures the hub, not the link.
    let link = LinkConfig {
        buf_bytes: 4 << 20,
        ..LinkConfig::default()
    };
    let mut hello = Vec::new();
    if binary {
        wire::frame_hello(&mut hello, 0);
    }
    wire::frame_arg(&mut hello, wire::OP_SUB, 0);
    let mut ends = Vec::with_capacity(clients);
    for _ in 0..clients {
        let (server_end, client_end) = SimConn::pair(link, LinkClock::real());
        server.add_conn(Box::new(server_end));
        if binary {
            client_end.write_bytes(&hello).expect("hello");
        } else {
            client_end.write_bytes(b"!sub\n").expect("sub");
        }
        ends.push(client_end);
    }
    server.spawn_shards();
    let adopt_deadline = Instant::now() + Duration::from_secs(60);
    while server.client_count() < clients {
        std::thread::sleep(Duration::from_millis(1));
        assert!(Instant::now() < adopt_deadline, "adoption stalled");
    }
    std::thread::sleep(Duration::from_millis(50));

    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(DrainStats {
        lateness_us: Mutex::new(Vec::new()),
        bytes: AtomicU64::new(0),
    });
    let drain_threads = 2usize;
    let sampled = 16usize;
    let mut handles = Vec::new();
    let chunk = clients.div_ceil(drain_threads);
    let mut rest = ends;
    for t in 0..drain_threads {
        let take = chunk.min(rest.len());
        let slice: Vec<SimConn> = rest.drain(..take).collect();
        if slice.is_empty() {
            break;
        }
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let sample = if t == 0 { sampled } else { 0 };
        handles.push(
            std::thread::Builder::new()
                .name(format!("nethub-drain-{t}"))
                .spawn(move || drain_loop(&slice, sample, binary, epoch, &stop, &stats))
                .expect("spawn drain"),
        );
    }

    let mut producer = if binary {
        ScopeClient::connect_binary(addr).expect("producer")
    } else {
        ScopeClient::connect(addr).expect("producer")
    };

    let warmup = Duration::from_millis(500);
    let window = Duration::from_secs_f64(secs);
    let mut base = server.stats();
    let mut base_taken = false;
    let deadline = epoch + warmup + window;
    let mut seq = 0u64;
    while Instant::now() < deadline {
        if !base_taken && epoch.elapsed() >= warmup {
            base = server.stats();
            base_taken = true;
        }
        // Paced producer: stay on the rate line.
        let target = (epoch.elapsed().as_secs_f64() * rate) as u64;
        while seq < target {
            let now_us = epoch.elapsed().as_micros() as u64;
            producer.send_at(TimeStamp::from_micros(now_us), "bench.sig", seq as f64);
            seq += 1;
        }
        let _ = producer.pump();
        std::thread::sleep(Duration::from_micros(500));
    }
    let measured = server.stats();
    let elapsed = if base_taken {
        window.as_secs_f64()
    } else {
        secs
    };

    // Let queues flush, then tear down.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }

    let delivered = measured.tuples_out.saturating_sub(base.tuples_out);
    let bytes = measured.bytes_out.saturating_sub(base.bytes_out);
    let mut lat = stats.lateness_us.lock().unwrap().clone();
    lat.sort_unstable();
    let p99 = if lat.is_empty() {
        0.0
    } else {
        lat[(lat.len() - 1).min(lat.len() * 99 / 100)] as f64
    };
    FanoutResult {
        delivered_per_sec: delivered as f64 / elapsed,
        p99_lateness_us: p99,
        bytes_per_tuple: if delivered == 0 {
            0.0
        } else {
            bytes as f64 / delivered as f64
        },
        shed_events: measured.shed_events,
    }
}

// ------------------------------------------------------------------- report

struct Row {
    id: String,
    before: Option<f64>,
    after: f64,
    ratio: Option<f64>,
}

fn write_json(dir: &str, rows: &[Row]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let fmt = |x: f64| format!("{x:.1}");
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"net\",\n");
    s.push_str("  \"unit\": \"tuples_per_sec | p99_us | bytes_per_tuple (per row id)\",\n");
    s.push_str("  \"results\": {\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{ \"before\": {}, \"after\": {}, \"speedup\": {} }}{}\n",
            r.id,
            r.before.map_or_else(|| "null".to_owned(), fmt),
            fmt(r.after),
            r.ratio
                .map_or_else(|| "null".to_owned(), |x| format!("{x:.2}")),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    let path = format!("{dir}/BENCH_net.json");
    std::fs::write(&path, &s)?;
    Ok(path)
}

fn main() {
    let mut quick = false;
    let mut out = ".".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--flood" => {
                // Internal: re-exec'd flood generator (see
                // `flood_child`).
                let addr = args.next().expect("--flood ADDR");
                let clients: usize = args.next().expect("CLIENTS").parse().expect("CLIENTS");
                let binary = args.next().expect("MODE") == "binary";
                let burst: usize = args.next().expect("BURST").parse().expect("BURST");
                flood_child(&addr, clients, binary, burst);
            }
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a directory"),
            other => {
                eprintln!("unknown flag {other:?}; usage: nethub [--quick] [--out DIR]");
                std::process::exit(2);
            }
        }
    }
    let (scales, secs): (&[(&str, usize)], f64) = if quick {
        (&[("1k", 1_000), ("10k", 10_000)], 1.0)
    } else {
        (&[("1k", 1_000), ("10k", 10_000), ("100k", 100_000)], 3.0)
    };

    let mut ingest_rows = Vec::new();
    let mut fan_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &(tag, n) in scales {
        // Real sockets up to 10k clients; the fd rlimit forces the
        // 100k row onto netsim links (which undercharge the seed's
        // O(N)-syscall scan — that row understates the hub's edge).
        let tcp = n <= 10_000;
        let how = if tcp { "loopback tcp" } else { "netsim" };
        eprintln!("[nethub] ingest ({how}), {n} senders: seed shape (1 thread, text scan) ...");
        let before = if tcp {
            run_ingest_tcp(n, false, secs)
        } else {
            run_ingest(n, false, secs)
        };
        eprintln!("[nethub]   before: {before:.0} tuples/s");
        eprintln!("[nethub] ingest ({how}), {n} senders: hub (4 shards, binary) ...");
        let after = if tcp {
            run_ingest_tcp(n, true, secs)
        } else {
            run_ingest(n, true, secs)
        };
        eprintln!(
            "[nethub]   after:  {after:.0} tuples/s ({:.2}x)",
            after / before.max(1.0)
        );
        let suffix = if tcp { "" } else { "_netsim" };
        ingest_rows.push(Row {
            id: format!("net/hub/ingest_tuples_per_sec/{tag}_clients{suffix}"),
            before: Some(before),
            after,
            ratio: Some(after / before.max(1.0)),
        });

        // Fan-out lateness at a rate the box sustains at every scale:
        // ~2M deliveries/sec aggregate.
        let rate = (2_000_000.0 / n as f64).max(10.0);
        eprintln!("[nethub] fan-out, {n} subscribers at {rate:.0} tuples/s ...");
        let fan = run_fanout(n, true, rate, secs);
        eprintln!(
            "[nethub]   delivered {:.0}/s, p99 lateness {:.0} us, sheds {}",
            fan.delivered_per_sec, fan.p99_lateness_us, fan.shed_events
        );
        fan_rows.push(Row {
            id: format!("net/hub/fanout_delivered_per_sec/{tag}_clients"),
            before: None,
            after: fan.delivered_per_sec,
            ratio: None,
        });
        lat_rows.push(Row {
            id: format!("net/hub/p99_lateness_us/{tag}_clients"),
            before: None,
            after: fan.p99_lateness_us,
            ratio: None,
        });
    }

    // Bytes on the wire: identical paced fan-out, text vs binary.
    eprintln!("[nethub] wire bytes/tuple: text vs binary ...");
    let text = run_fanout(64, false, 20_000.0, 1.0);
    let binary = run_fanout(64, true, 20_000.0, 1.0);
    eprintln!(
        "[nethub]   text {:.1} B/tuple, binary {:.1} B/tuple",
        text.bytes_per_tuple, binary.bytes_per_tuple
    );

    let mut rows = ingest_rows;
    rows.extend(fan_rows);
    rows.extend(lat_rows);
    rows.push(Row {
        id: "net/wire/bytes_per_tuple".to_owned(),
        before: Some(text.bytes_per_tuple),
        after: binary.bytes_per_tuple,
        ratio: Some(text.bytes_per_tuple / binary.bytes_per_tuple.max(0.001)),
    });

    match write_json(&out, &rows) {
        Ok(path) => eprintln!("[nethub] wrote {path}"),
        Err(e) => {
            eprintln!("[nethub] write failed: {e}");
            std::process::exit(1);
        }
    }
}
