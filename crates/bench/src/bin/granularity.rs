//! §4.5 "Polling Granularity" — the timer-quantum ceiling and the
//! lost-timeout compensation, demonstrated and measured.
//!
//! Paper claims regenerated here:
//!
//! 1. "gscope ... is currently limited to this polling interval and
//!    has a maximum frequency of 100 Hz" — a 1 ms polling request
//!    under the 10 ms Linux quantum still dispatches only ~100 times a
//!    second; the §6 alternatives (HZ=1000 kernels, soft timers) lift
//!    the ceiling.
//! 2. "scheduling latencies in the kernel can induce loss in polling
//!    timeouts under heavy loads. ... Gscope keeps track of lost
//!    timeouts and advances the scope refresh appropriately" — with an
//!    injected latency model, the display still advances one column
//!    per period of wall time.
//!
//! Run with `cargo run --release -p gscope-bench --bin granularity`.

use std::sync::Arc;

use gel::{LatencyModel, MainLoop, Quantizer, TimeDelta, TimeStamp, VirtualClock};
use gscope::{attach_scope, IntVar, Scope, SigConfig};
use gscope_bench::row;

/// Requested polling period for the frequency-ceiling sweep.
const REQUEST_MS: u64 = 1;
/// Virtual seconds simulated per configuration.
const SECONDS: u64 = 10;

fn run_quantum(quantum: Quantizer, latency: Option<LatencyModel>) -> (u64, u64, u64) {
    let clock = VirtualClock::new();
    clock.set_latency_model(latency);
    let mut scope = Scope::new("granularity", 16_000, 100, Arc::new(clock.clone()));
    let v = IntVar::new(7);
    scope
        .add_signal("v", v.into(), SigConfig::default())
        .expect("fresh name");
    scope
        .set_polling_mode(TimeDelta::from_millis(REQUEST_MS))
        .expect("non-zero");
    scope.start();
    let scope = scope.into_shared();
    let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), quantum);
    attach_scope(&scope, &mut ml);
    ml.run_until(TimeStamp::from_secs(SECONDS));
    let guard = scope.lock();
    let stats = guard.stats();
    let columns = guard.signal("v").expect("exists").history().total_pushed();
    (stats.ticks, stats.missed_ticks, columns)
}

fn main() {
    println!("== Section 4.5: polling granularity ==\n");
    println!(
        "requested polling period: {REQUEST_MS} ms ({} Hz) for {SECONDS} virtual seconds\n",
        1000 / REQUEST_MS
    );

    println!("-- dispatch rate vs kernel timer quantum --");
    row(&[
        "quantum".into(),
        "dispatch/s".into(),
        "missed/s".into(),
        "columns/s".into(),
        "ceiling".into(),
    ]);
    let mut hz100_rate = 0;
    for (name, quantum) in [
        ("10 ms (2.4)", Quantizer::LINUX_HZ100),
        ("1 ms (HZ1k)", Quantizer::LINUX_HZ1000),
        ("exact (§6)", Quantizer::exact()),
    ] {
        let (ticks, missed, columns) = run_quantum(quantum, None);
        if quantum == Quantizer::LINUX_HZ100 {
            hz100_rate = ticks / SECONDS;
        }
        let ceiling = quantum
            .max_frequency_hz()
            .map(|f| format!("{f:.0} Hz"))
            .unwrap_or_else(|| "none".into());
        row(&[
            name.into(),
            format!("{}", ticks / SECONDS),
            format!("{}", missed / SECONDS),
            format!("{}", columns / SECONDS),
            ceiling,
        ]);
    }

    println!("\n-- lost-timeout compensation under scheduling latency --");
    println!("(10 ms quantum; every 20th wake-up delivered 150 ms late)\n");
    row(&["metric".into(), "value".into(), "".into(), "".into()]);
    let latency: LatencyModel = Box::new(|n| if n % 20 == 19 { 150_000 } else { 0 });
    let (ticks, missed, columns) = run_quantum(Quantizer::LINUX_HZ100, Some(latency));
    row(&[
        "dispatches".into(),
        format!("{ticks}"),
        "".into(),
        "".into(),
    ]);
    row(&[
        "lost ticks".into(),
        format!("{missed}"),
        "".into(),
        "".into(),
    ]);
    row(&[
        "display cols".into(),
        format!("{columns}"),
        "".into(),
        "".into(),
    ]);
    let expected_columns = SECONDS * 1000 / REQUEST_MS;

    println!("\n== verdicts vs the paper ==");
    println!(
        "10 ms quantum caps a 1 ms request at ~100 Hz: {} dispatch/s   {}",
        hz100_rate,
        if (90..=101).contains(&hz100_rate) {
            "OK"
        } else {
            "DIFFERS"
        }
    );
    println!(
        "lost timeouts are counted under load: {missed} lost             {}",
        if missed > 0 { "OK" } else { "DIFFERS" }
    );
    let drift = (columns as i64 - expected_columns as i64).abs();
    println!(
        "display advanced {columns}/{expected_columns} columns (drift {drift})      {}",
        if drift <= 20 { "OK" } else { "DIFFERS" }
    );
    assert!((90..=101).contains(&hz100_rate));
    assert!(missed > 0);
    assert!(drift <= 20, "x-axis must stay truthful");
}
