//! glod zoom-pyramid benchmark: emits `BENCH_lod.json`.
//!
//! One store grows decade by decade (10^5 → 10^9 frames); the
//! compactor folds sealed history into min/max envelope tiers as the
//! append runs, and folded tier-0 segments are evicted under a byte
//! budget so disk stays bounded at every size. At each checkpoint the
//! pyramid drains and `query(signal, 0, now, px)` is timed over the
//! *full* recorded span.
//!
//! The claim under test: p50 stays flat (±2x) as frames grow four
//! decades, because the planner answers from the coarsest tier whose
//! column count tracks `px_width`, not N — the scan touches ~2·px
//! envelope frames no matter how much history exists. The `before`
//! column (sizes where tier 0 is still complete) forces a tier-0 scan
//! of the same window — the cost every zoom-out paid without the
//! pyramid.
//!
//! Usage: lod [--quick] [--out DIR] [--dir DIR] [--keep]
//!   --quick   sizes 10^5..10^7 and fewer iterations (CI smoke)
//!   --out DIR directory for BENCH_lod.json (default `.`)
//!   --dir DIR store directory (default under the system temp dir)
//!   --keep    leave the store directory behind for inspection

use std::path::{Path, PathBuf};
use std::time::Instant;

use gel::TimeStamp;
use gstore::{Compactor, CompactorConfig, Store, StoreConfig};

const SIGNAL: &str = "lod.sig";
const PX: usize = 1024;

/// Cheap value stream with spiky extremes: a multiplicative hash of
/// the frame index, so every band's min/max is data-dependent and the
/// fold cannot be optimised away.
fn value(i: u64) -> f64 {
    (i.wrapping_mul(2654435761) & 0xffff) as f64 - 32768.0
}

struct Checkpoint {
    frames: u64,
    tag: String,
    /// Forced tier-0 scan of the same window (None once tier 0 has
    /// been partially evicted or is too large to scan honestly).
    tier0_p50_us: Option<f64>,
    p50_us: f64,
    p90_us: f64,
    tier: u16,
    blocks_pruned: u64,
    blocks_scanned: u64,
    frames_scanned: u64,
    store_bytes: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times `iters` runs of one query shape; returns (p50, p90, last
/// result) in microseconds.
fn time_query(
    dir: &Path,
    to_us: u64,
    px: usize,
    forced_tier: Option<u16>,
    iters: usize,
) -> (f64, f64, gstore::LodResult) {
    let mut samples = Vec::with_capacity(iters);
    let mut last = None;
    for i in 0..iters + 2 {
        let t = Instant::now();
        let res = gstore::lod::query_at(
            dir,
            Some(SIGNAL),
            TimeStamp::ZERO,
            TimeStamp::from_micros(to_us),
            px,
            forced_tier,
        )
        .expect("query");
        let us = t.elapsed().as_secs_f64() * 1e6;
        // First two iterations are page-cache warmup.
        if i >= 2 {
            samples.push(us);
        }
        last = Some(res);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (
        percentile(&samples, 0.50),
        percentile(&samples, 0.90),
        last.expect("at least one query ran"),
    )
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn write_json(out: &str, rows: &[Checkpoint]) -> std::io::Result<String> {
    std::fs::create_dir_all(out)?;
    let fmt = |x: f64| format!("{x:.1}");
    let opt = |x: Option<f64>| x.map_or_else(|| "null".to_owned(), fmt);
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"lod\",\n");
    s.push_str(&format!(
        "  \"unit\": \"query(signal, 0, now, px={PX}) latency us over the full span; \
         before = forced tier-0 scan of the same window\",\n"
    ));
    s.push_str("  \"results\": {\n");
    for r in rows {
        s.push_str(&format!(
            "    \"lod/query/{}_frames\": {{ \"frames\": {}, \"before\": {}, \"p50_us\": {}, \
             \"p90_us\": {}, \"tier\": {}, \"blocks_pruned\": {}, \"blocks_scanned\": {}, \
             \"frames_scanned\": {}, \"store_bytes\": {} }},\n",
            r.tag,
            r.frames,
            opt(r.tier0_p50_us),
            fmt(r.p50_us),
            fmt(r.p90_us),
            r.tier,
            r.blocks_pruned,
            r.blocks_scanned,
            r.frames_scanned,
            r.store_bytes,
        ));
    }
    let p50s: Vec<f64> = rows.iter().map(|r| r.p50_us).collect();
    let (lo, hi) = p50s
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    s.push_str(&format!(
        "    \"lod/flatness\": {{ \"p50_min_us\": {}, \"p50_max_us\": {}, \
         \"max_over_min\": {:.2}, \"flat_within_2x\": {} }}\n",
        fmt(lo),
        fmt(hi),
        hi / lo.max(1e-9),
        hi / lo.max(1e-9) <= 2.0,
    ));
    s.push_str("  }\n}\n");
    let path = format!("{out}/BENCH_lod.json");
    std::fs::write(&path, &s)?;
    Ok(path)
}

fn main() {
    let mut quick = false;
    let mut keep = false;
    let mut out = ".".to_owned();
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--keep" => keep = true,
            "--out" => out = args.next().expect("--out requires a directory"),
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir requires a path"))),
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: lod [--quick] [--out DIR] [--dir DIR] [--keep]"
                );
                std::process::exit(2);
            }
        }
    }
    let dir = dir.unwrap_or_else(|| std::env::temp_dir().join("gscope-bench-lod"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");

    let (sizes, iters): (&[u64], usize) = if quick {
        (&[100_000, 1_000_000, 10_000_000], 10)
    } else {
        (
            &[100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000],
            30,
        )
    };
    // The tier-0 baseline scans the whole span — honest up to 10^7,
    // unpayable (and partially evicted) beyond.
    let baseline_cap = 10_000_000u64;

    // Large-ish segments keep the catalog small at 10^9 frames; the
    // pyramid's own outputs stay block-prunable via the compactor's
    // `block_frames`.
    let store_cfg = StoreConfig {
        segment_bytes: 16 << 20,
        ..StoreConfig::default()
    };
    // group 8 steps 4x per tier in *frames* (a band is two frames),
    // keeping adjacent tiers close enough that the planner's scan
    // stays between px and 4*px columns at any N — which is what
    // makes p50 flat across decades. Twelve tiers reach 4^12 ~ 10^7:1
    // decimation, ample for 10^9 frames at px=1024.
    let lod_cfg = CompactorConfig {
        group: 8,
        max_tier: 12,
        batch_frames: 4_000_000,
        // Fold a tier only once 4M source frames are pending: smaller
        // thresholds sprout hundreds of tiny mid-tier segments (one
        // per pass per tier), and the per-query directory walk ends
        // up costing more than the scan.
        min_fold_frames: 4_000_000,
        // Folded history is evicted past 64 MiB per tier: the tier
        // above answers for it, so disk, the per-query directory
        // walk, and the sidecar planning walk stay bounded at 10^9.
        evict_folded: Some(64 << 20),
        ..CompactorConfig::default()
    };
    let mut store = Store::open(&dir, store_cfg.clone()).expect("open store");
    let mut compactor = Compactor::new(&dir, lod_cfg).expect("compactor");

    let mut rows: Vec<Checkpoint> = Vec::new();
    let mut written = 0u64;
    for &target in sizes {
        let t0 = Instant::now();
        while written < target {
            store
                .append(
                    TimeStamp::from_micros(written),
                    value(written),
                    Some(SIGNAL),
                )
                .expect("append");
            written += 1;
            // Fold + evict as history seals, like the background
            // thread would; a pass with nothing pending is cheap.
            if written.is_multiple_of(4_000_000) {
                store.flush().expect("flush");
                compactor.pass().expect("compactor pass");
            }
        }
        // Seal the active segment so the checkpoint folds *all*
        // history: the measured claim is about the pyramid, not about
        // however much unfolded tail happens to be in flight. Reopen
        // rolls to a fresh segment (the watermark gate refuses to
        // resume a folded one).
        store.close().expect("close");
        let report = compactor.drain().expect("drain");
        let tag = format!("1e{}", (target as f64).log10().round() as u32);
        eprintln!(
            "[lod] {tag}: appended to {written} frames in {:.1}s (pyramid top tier {}, {} evicted)",
            t0.elapsed().as_secs_f64(),
            report.top_tier,
            report.segments_evicted,
        );

        let to_us = written;
        let tier0_p50_us = if target <= baseline_cap {
            let (p50, _, res) = time_query(&dir, to_us, PX, Some(0), iters);
            eprintln!(
                "[lod]   before (tier-0 scan): p50 {p50:.0} us, {} frames decoded",
                res.stats.frames_scanned
            );
            Some(p50)
        } else {
            None
        };
        let (p50, p90, res) = time_query(&dir, to_us, PX, None, iters);
        eprintln!(
            "[lod]   after  (planned tier {}): p50 {p50:.0} us, p90 {p90:.0} us, \
             {} blocks pruned / {} scanned, {} frames",
            res.tier, res.stats.blocks_pruned, res.stats.blocks_scanned, res.stats.frames_scanned,
        );
        rows.push(Checkpoint {
            frames: written,
            tag,
            tier0_p50_us,
            p50_us: p50,
            p90_us: p90,
            tier: res.tier,
            blocks_pruned: res.stats.blocks_pruned,
            blocks_scanned: res.stats.blocks_scanned,
            frames_scanned: res.stats.frames_scanned,
            store_bytes: dir_bytes(&dir),
        });
        store = Store::open(&dir, store_cfg.clone()).expect("reopen store");
    }
    store.close().expect("close");

    match write_json(&out, &rows) {
        Ok(path) => eprintln!("[lod] wrote {path}"),
        Err(e) => {
            eprintln!("[lod] write failed: {e}");
            std::process::exit(1);
        }
    }
    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
