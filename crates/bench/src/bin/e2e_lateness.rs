//! Lateness-attribution cost benchmark: emits `BENCH_e2e.json`.
//!
//! Two acceptance rows for the cross-process causality work:
//!
//! - **Ingest overhead**: hub ingest throughput with plain `OP_DATA`
//!   batches vs origin-stamped `OP_DATA_ORIGIN` batches (which add
//!   the header decode, the clock rebase, the `net.ingest` span, and
//!   the per-batch `mark_push` into the e2e histograms). The stamped
//!   path must stay within 5% of plain.
//! - **Wire overhead**: bytes per tuple on the wire, plain vs
//!   origin-stamped framing, identical payloads. The origin header is
//!   amortized over the batch, so the delta must be ≤ 1 byte/tuple.
//!
//! Usage: e2e_lateness [--quick] [--out DIR]
//!   --quick   shorter measurement windows (CI smoke)
//!   --out DIR directory for BENCH_e2e.json (default `.`)

use std::sync::Arc;
use std::time::{Duration, Instant};

use gnet::clock::wire_now_us;
use gnet::wire::{self, BatchEncoder, Msg, Origin};
use gnet::{HubConfig, ScopeServer};
use netsim::{LinkClock, LinkConfig, SimConn};

const BATCH: u64 = 64;
const BATCHES_PER_CHUNK: usize = 64;

/// Pre-encodes one chunk of batches, plain or origin-stamped.
fn encode_chunk(origin: bool) -> (Vec<u8>, u64) {
    let mut enc = BatchEncoder::new();
    let name: Arc<str> = Arc::from("bench.sig");
    let mut out = Vec::new();
    let mut t_us = 1_000u64;
    let mut tuples = 0u64;
    for b in 0..BATCHES_PER_CHUNK {
        for i in 0..BATCH {
            enc.push(t_us, (i % 50) as f64, Some(&name));
            t_us += 100;
            tuples += 1;
        }
        if origin {
            let o = Origin {
                node_id: 2,
                send_us: wire_now_us(),
                span_id: (b as u64) | 1 << 63,
            };
            enc.frame_into_origin(&mut out, &o);
        } else {
            enc.frame_into(&mut out);
        }
    }
    (out, tuples)
}

/// Answers any PINGs sitting in `rx`, stamping replies on the local
/// clock (zero skew — the cost under test is stamping, not rebasing
/// distance).
fn answer_pings(conn: &SimConn, rx: &mut Vec<u8>, tx: &mut Vec<u8>) {
    let mut buf = [0u8; 4096];
    while let Ok(n) = conn.read_bytes(&mut buf) {
        if n == 0 {
            break;
        }
        rx.extend_from_slice(&buf[..n]);
    }
    let mut consumed = 0usize;
    while let Ok(Some((msg, used))) = wire::split_message(&rx[consumed..]) {
        if let Msg::Frame {
            op: wire::OP_PING,
            body,
        } = msg
        {
            let t0 = wire::decode_arg(body).unwrap();
            let now = wire_now_us();
            wire::frame_pong(tx, t0, now, now);
        }
        consumed += used;
    }
    rx.drain(..consumed);
    if !tx.is_empty() {
        if let Ok(n) = conn.write_bytes(tx) {
            tx.drain(..n);
        }
    }
}

/// Floods the hub through an unshaped sim link for `secs`; returns
/// ingested tuples/sec.
fn run_ingest(origin: bool, secs: f64) -> f64 {
    let cfg = HubConfig {
        shards: 1,
        ping_interval_us: 50_000,
        ..HubConfig::default()
    };
    let mut server = ScopeServer::with_config("127.0.0.1:0", cfg).expect("bind");
    let (server_end, client_end) = SimConn::pair(LinkConfig::default(), LinkClock::real());
    server.add_conn(Box::new(server_end));

    let mut rx = Vec::new();
    let mut tx = Vec::new();
    // Negotiate. The origin producer advertises both capabilities and
    // completes the clock handshake first, so every measured batch
    // pays the full rebase + mark path.
    wire::frame_hello(&mut tx, if origin { wire::LOCAL_CAPS } else { 0 });
    let _ = client_end.write_bytes(&tx);
    tx.clear();
    let warm = Instant::now() + Duration::from_millis(if origin { 300 } else { 50 });
    while Instant::now() < warm {
        answer_pings(&client_end, &mut rx, &mut tx);
        server.poll();
        if origin
            && server
                .client_stats()
                .iter()
                .any(|c| c.clock.as_ref().is_some_and(|cs| cs.samples >= 2))
        {
            break;
        }
    }

    let (chunk, chunk_tuples) = encode_chunk(origin);
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let mut sent_chunks = 0u64;
    let mut pending = 0usize;
    while Instant::now() < deadline {
        if pending == 0 {
            pending = chunk.len();
            sent_chunks += 1;
        }
        if let Ok(n) = client_end.write_bytes(&chunk[chunk.len() - pending..]) {
            pending -= n;
        }
        answer_pings(&client_end, &mut rx, &mut tx);
        server.poll();
    }
    // Drain whatever the link still holds so the count is exact.
    let mut quiet = 0;
    let mut last = server.stats().tuples_received;
    while quiet < 20 {
        server.poll();
        let now = server.stats().tuples_received;
        if now == last {
            quiet += 1;
        } else {
            quiet = 0;
            last = now;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let got = server.stats().tuples_received;
    let expect = sent_chunks * chunk_tuples;
    assert!(
        got >= expect.saturating_sub(chunk_tuples),
        "hub lost tuples: got {got}, sent ~{expect}"
    );
    got as f64 / elapsed
}

struct Row {
    id: String,
    before: Option<f64>,
    after: f64,
    ratio: Option<f64>,
}

fn write_json(dir: &str, rows: &[Row]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let fmt = |x: f64| format!("{x:.2}");
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"e2e\",\n");
    s.push_str("  \"unit\": \"tuples_per_sec | pct | bytes_per_tuple (per row id)\",\n");
    s.push_str("  \"results\": {\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{ \"before\": {}, \"after\": {}, \"ratio\": {} }}{}\n",
            r.id,
            r.before.map_or_else(|| "null".to_owned(), fmt),
            fmt(r.after),
            r.ratio
                .map_or_else(|| "null".to_owned(), |x| format!("{x:.4}")),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    let path = format!("{dir}/BENCH_e2e.json");
    std::fs::write(&path, &s)?;
    Ok(path)
}

fn main() {
    let mut quick = false;
    let mut out = ".".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a directory"),
            other => {
                eprintln!("unknown flag {other:?}; usage: e2e_lateness [--quick] [--out DIR]");
                std::process::exit(2);
            }
        }
    }
    let secs = if quick { 0.5 } else { 2.0 };
    let reps = if quick { 2 } else { 6 };

    // Ingest throughput: best of `reps` interleaved runs per mode.
    // Run-to-run noise on a shared machine swings ±10% — far above
    // the effect under test — but it only ever subtracts, so the max
    // preserves the systematic per-batch cost while shedding noise.
    let mut plain = Vec::new();
    let mut stamped = Vec::new();
    for r in 0..reps {
        eprintln!("[e2e] ingest rep {}/{reps}: plain OP_DATA ...", r + 1);
        plain.push(run_ingest(false, secs));
        eprintln!("[e2e] ingest rep {}/{reps}: origin-stamped ...", r + 1);
        stamped.push(run_ingest(true, secs));
    }
    let best = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    let plain = best(&plain);
    let stamped = best(&stamped);
    let overhead_pct = (plain - stamped) / plain * 100.0;
    eprintln!("[e2e] plain {plain:.0} t/s, stamped {stamped:.0} t/s, overhead {overhead_pct:.2}%");

    // Wire cost: identical payload, both framings.
    let (plain_bytes, tuples) = encode_chunk(false);
    let (origin_bytes, _) = encode_chunk(true);
    let plain_bpt = plain_bytes.len() as f64 / tuples as f64;
    let origin_bpt = origin_bytes.len() as f64 / tuples as f64;
    let delta_bpt = origin_bpt - plain_bpt;
    eprintln!(
        "[e2e] wire: plain {plain_bpt:.2} B/tuple, origin {origin_bpt:.2} B/tuple \
         (+{delta_bpt:.3})"
    );
    assert!(
        delta_bpt <= 1.0,
        "origin header exceeds the 1 byte/tuple budget: +{delta_bpt:.3}"
    );

    let rows = vec![
        Row {
            id: "e2e/ingest_tuples_per_sec/origin_stamped".into(),
            before: Some(plain),
            after: stamped,
            ratio: Some(stamped / plain.max(1.0)),
        },
        Row {
            id: "e2e/stamping_overhead_pct".into(),
            before: None,
            after: overhead_pct,
            ratio: None,
        },
        Row {
            id: "e2e/wire_bytes_per_tuple".into(),
            before: Some(plain_bpt),
            after: origin_bpt,
            ratio: Some(origin_bpt / plain_bpt),
        },
        Row {
            id: "e2e/wire_overhead_bytes_per_tuple".into(),
            before: None,
            after: delta_bpt,
            ratio: None,
        },
    ];
    match write_json(&out, &rows) {
        Ok(path) => eprintln!("[e2e] wrote {path}"),
        Err(e) => {
            eprintln!("[e2e] failed to write report: {e}");
            std::process::exit(1);
        }
    }
}
