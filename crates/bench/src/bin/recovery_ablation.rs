//! Loss-recovery ablation: Reno go-back-N vs SACK/FACK scoreboard
//! recovery under the Figure 4 congestion level.
//!
//! §2 of the paper recounts using gscope to debug "a TCP variant that
//! we have implemented for low-latency TCP streaming [which] initially
//! showed significant unexpected timeouts that we finally traced to an
//! interaction with the SACK implementation" — timeouts are the
//! observable, and the recovery mechanism is the knob. This harness
//! quantifies exactly that relationship on the simulator: identical
//! DropTail congestion, Reno vs SACK senders.
//!
//! Run with `cargo run --release -p gscope-bench --bin recovery_ablation`.

use gel::TimeStamp;
use gscope_bench::row;
use netsim::{NetConfig, Network, QueueKind};

struct Outcome {
    timeouts: u64,
    fast_retransmits: u64,
    retransmits: u64,
    acked: u64,
    drops: u64,
}

fn run(sack: bool, flows: usize, secs: u64) -> Outcome {
    let mut net = Network::new(NetConfig {
        queue: QueueKind::DropTail { capacity: 50 },
        ..NetConfig::default()
    });
    let ids: Vec<usize> = (0..flows)
        .map(|_| net.add_tcp_flow_with(false, sack))
        .collect();
    for (i, &f) in ids.iter().enumerate() {
        net.start_flow_at(f, TimeStamp::from_millis(50 * i as u64));
    }
    net.run_until(TimeStamp::from_secs(secs));
    let mut o = Outcome {
        timeouts: 0,
        fast_retransmits: 0,
        retransmits: 0,
        acked: 0,
        drops: net.queue_stats().dropped,
    };
    for &f in &ids {
        let s = net.flow_stats(f);
        o.timeouts += s.timeouts;
        o.fast_retransmits += s.fast_retransmits;
        o.retransmits += s.retransmits;
        o.acked += s.packets_acked;
    }
    o
}

fn main() {
    println!("== recovery ablation: Reno vs SACK under DropTail congestion ==\n");
    const SECS: u64 = 30;
    for flows in [8usize, 16] {
        println!("-- {flows} flows, {SECS}s --");
        row(&[
            "recovery".into(),
            "timeouts".into(),
            "fast rexmit".into(),
            "rexmit".into(),
            "acked".into(),
            "drops".into(),
        ]);
        let reno = run(false, flows, SECS);
        row(&[
            "Reno (GBN)".into(),
            format!("{}", reno.timeouts),
            format!("{}", reno.fast_retransmits),
            format!("{}", reno.retransmits),
            format!("{}", reno.acked),
            format!("{}", reno.drops),
        ]);
        let sack = run(true, flows, SECS);
        row(&[
            "SACK (FACK)".into(),
            format!("{}", sack.timeouts),
            format!("{}", sack.fast_retransmits),
            format!("{}", sack.retransmits),
            format!("{}", sack.acked),
            format!("{}", sack.drops),
        ]);
        println!();
        assert!(
            sack.timeouts < reno.timeouts,
            "SACK must reduce timeouts ({} vs {})",
            sack.timeouts,
            reno.timeouts
        );
        assert!(sack.acked >= reno.acked * 95 / 100);
    }
    println!("== verdict ==");
    println!("SACK scoreboard recovery repairs multi-loss windows that force Reno");
    println!("onto the RTO path: fewer timeouts, fewer (spurious) retransmissions,");
    println!("equal-or-better goodput. OK");
}
