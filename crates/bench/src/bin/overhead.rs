//! §4.6 "Scope Overhead" — the paper's quantitative evaluation,
//! regenerated.
//!
//! Paper numbers (600 MHz Pentium III, GTK rendering):
//!
//! * CPU overhead "less than two percent while polling at 10 ms
//!   granularity",
//! * "less than one percent at 50 ms granularity",
//! * "the increase in overhead with increasing number of signals being
//!   displayed ranges from 0.02 to 0.05 percent per signal",
//! * "polling granularity has a much larger effect on CPU consumption"
//!   than the signal count.
//!
//! Methodology here: the scope runs on a real `gel` main loop over the
//! system clock. Each tick does the full library work (sampling,
//! filtering, history) plus an *incremental* one-column redraw per
//! signal — the display model of the original strip-chart canvas. Two
//! meters run:
//!
//! * a [`BusyMeter`] accumulating the time actually spent in tick work
//!   (duty cycle == uniprocessor CPU overhead), and
//! * the paper's low-priority [`SpinLoop`] (meaningful when pinned to
//!   one core; on an unpinned multi-core host it reads ≈ 0, which is
//!   itself evidence of how small the overhead is).
//!
//! Run with `cargo run --release -p gscope-bench --bin overhead`.

use std::sync::Arc;
use std::time::Duration;

use gel::{Clock, Continue, MainLoop, Quantizer, SystemClock, TimeDelta};
use grender::{Framebuffer, RasterSurface, Surface};
use gscope::{IntVar, Scope, SigConfig};
use gscope_bench::row;
use loadmeter::{overhead_fraction, BusyMeter, SpinLoop};
use parking_lot::Mutex;

/// Wall-clock seconds measured per configuration.
const MEASURE_SECS: u64 = 2;

struct Sample {
    duty_pct: f64,
    spin_pct: f64,
    mean_tick_us: f64,
}

/// Runs the scope at `period` with `n_signals` for [`MEASURE_SECS`],
/// returning the overhead estimates.
fn measure(period_ms: u64, n_signals: usize, spin_baseline: u64) -> Sample {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let period = TimeDelta::from_millis(period_ms);
    let mut scope = Scope::new("overhead", 640, 200, Arc::clone(&clock));
    let vars: Vec<IntVar> = (0..n_signals)
        .map(|i| {
            let v = IntVar::new(0);
            scope
                .add_signal(format!("s{i}"), v.clone().into(), SigConfig::default())
                .expect("unique names");
            v
        })
        .collect();
    scope.set_polling_mode(period).expect("non-zero");
    scope.start();
    let scope = scope.into_shared();

    // The strip-chart display: one new pixel column per tick per
    // signal, like the original incremental canvas.
    let fb = Arc::new(Mutex::new(Framebuffer::new(640, 200)));

    let mut ml = MainLoop::with_quantizer(Arc::clone(&clock), Quantizer::LINUX_HZ100);
    let meter = Arc::new(Mutex::new(BusyMeter::new()));
    {
        let scope2 = Arc::clone(&scope);
        let meter2 = Arc::clone(&meter);
        let fb2 = Arc::clone(&fb);
        let mut column = 0i64;
        ml.add_timeout(
            period,
            Box::new(move |tick| {
                let mut m = meter2.lock();
                m.measure(|| {
                    let mut guard = scope2.lock();
                    guard.tick(tick);
                    // Incremental redraw of the newest column.
                    let mut fb = fb2.lock();
                    for (i, sig) in guard.signals().iter().enumerate() {
                        if let Some(Some(v)) = sig.history().latest() {
                            let frac = guard.display_fraction(sig.config(), v);
                            let y = 199 - (199.0 * frac) as i64;
                            fb.set(column % 640, y.saturating_sub(i as i64), sig.color());
                        }
                    }
                    column += 1;
                });
                Continue::Keep
            }),
        );
    }
    // Application mutation source: variables change between ticks.
    {
        let vars2 = vars.clone();
        let mut k = 0i64;
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                k += 1;
                for v in &vars2 {
                    v.set(k);
                }
                Continue::Keep
            }),
        );
    }
    let handle = ml.handle();
    ml.add_oneshot(TimeDelta::from_secs(MEASURE_SECS), move |_| handle.quit());

    let spin = SpinLoop::start();
    meter.lock().reset();
    ml.run();
    let spin_count = spin.stop();

    let m = meter.lock();
    Sample {
        duty_pct: m.duty_cycle() * 100.0,
        spin_pct: overhead_fraction(spin_baseline, spin_count) * 100.0,
        mean_tick_us: m.mean_busy().as_secs_f64() * 1e6,
    }
}

fn main() {
    println!("== Section 4.6: gscope CPU overhead ==\n");
    println!("workload: N INTEGER signals polled on a real main loop (10 ms kernel");
    println!("quantum), incremental strip-chart redraw per tick; {MEASURE_SECS}s per cell.\n");

    // Spin-loop baseline over the same wall duration, idle system.
    let spin = SpinLoop::start();
    std::thread::sleep(Duration::from_secs(MEASURE_SECS));
    let spin_baseline = spin.stop();
    println!("spin-loop baseline: {spin_baseline} iterations in {MEASURE_SECS}s\n");

    println!("-- overhead vs polling granularity (4 signals) --");
    row(&[
        "period".into(),
        "signals".into(),
        "cpu %".into(),
        "spin %".into(),
        "us/tick".into(),
    ]);
    let mut duty_by_period = Vec::new();
    for period_ms in [10u64, 20, 50, 100] {
        let s = measure(period_ms, 4, spin_baseline);
        duty_by_period.push((period_ms, s.duty_pct));
        row(&[
            format!("{period_ms} ms"),
            "4".into(),
            format!("{:.3}", s.duty_pct),
            format!("{:.3}", s.spin_pct),
            format!("{:.1}", s.mean_tick_us),
        ]);
    }

    println!("\n-- overhead vs signal count (10 ms polling) --");
    row(&[
        "period".into(),
        "signals".into(),
        "cpu %".into(),
        "spin %".into(),
        "us/tick".into(),
    ]);
    let mut duty_by_signals = Vec::new();
    for n in [1usize, 8, 16, 32, 64] {
        let s = measure(10, n, spin_baseline);
        duty_by_signals.push((n, s.duty_pct));
        row(&[
            "10 ms".into(),
            format!("{n}"),
            format!("{:.3}", s.duty_pct),
            format!("{:.3}", s.spin_pct),
            format!("{:.1}", s.mean_tick_us),
        ]);
    }

    // Paper-shape verdicts.
    println!("\n== verdicts vs the paper ==");
    let d10 = duty_by_period[0].1;
    let d50 = duty_by_period[2].1;
    println!(
        "overhead @10ms = {d10:.3}%  (paper: < 2%)          {}",
        if d10 < 2.0 { "OK" } else { "DIFFERS" }
    );
    println!(
        "overhead @50ms = {d50:.3}%  (paper: < 1%)          {}",
        if d50 < 1.0 { "OK" } else { "DIFFERS" }
    );
    println!(
        "granularity ordering 10ms > 50ms                 {}",
        if d10 > d50 { "OK" } else { "DIFFERS" }
    );
    let (n_lo, d_lo) = duty_by_signals[0];
    let (n_hi, d_hi) = duty_by_signals[duty_by_signals.len() - 1];
    let per_signal = (d_hi - d_lo) / (n_hi - n_lo) as f64;
    println!(
        "per-signal increment = {per_signal:.4} %/signal (paper: 0.02-0.05 on a 600 MHz P-III; \
         expect far smaller on modern hardware)"
    );
    let granularity_effect = d10 - duty_by_period[3].1;
    println!(
        "granularity effect ({granularity_effect:.3}%) >> signal effect ({:.3}% over {} signals) {}",
        d_hi - d_lo,
        n_hi - n_lo,
        if granularity_effect.abs() > (d_hi - d_lo).abs() || d_hi - d_lo < 0.2 {
            "OK"
        } else {
            "DIFFERS"
        }
    );

    // Keep the renderer's output alive so the work is not optimized
    // away.
    let mut s = RasterSurface::new(4, 4);
    s.clear(gscope::Color::BLACK);
    std::hint::black_box(s.into_framebuffer());
}
