//! Network-simulator throughput: simulated seconds (and packet events)
//! per wall second, across queue disciplines and flow counts — the
//! substrate cost behind the Figures 4–5 experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gel::{TimeDelta, TimeStamp};
use netsim::{NetConfig, Network, QueueKind};

fn run_sim(queue: QueueKind, flows: usize, ecn: bool, secs: u64) -> u64 {
    let mut net = Network::new(NetConfig {
        queue,
        ..NetConfig::default()
    });
    for i in 0..flows {
        let f = net.add_tcp_flow(ecn);
        net.start_flow_at(f, TimeStamp::from_millis(50 * i as u64));
    }
    net.run_until(TimeStamp::from_secs(secs));
    net.events_processed()
}

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/simulate_2s");
    group.sample_size(10);
    for flows in [1usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("droptail_flows", flows),
            &flows,
            |b, &flows| {
                b.iter(|| run_sim(QueueKind::DropTail { capacity: 50 }, flows, false, 2));
            },
        );
    }
    group.bench_function("red_ecn_flows_16", |b| {
        b.iter(|| run_sim(QueueKind::red_default(100), 16, true, 2));
    });
    group.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Report one representative configuration with event throughput.
    let events = run_sim(QueueKind::DropTail { capacity: 50 }, 8, false, 2);
    let mut group = c.benchmark_group("netsim/event_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("droptail_8_flows_2s", |b| {
        b.iter(|| run_sim(QueueKind::DropTail { capacity: 50 }, 8, false, 2));
    });
    group.finish();
}

fn bench_udp_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/udp_mix_2s");
    group.sample_size(10);
    group.bench_function("4_tcp_plus_2_udp", |b| {
        b.iter(|| {
            let mut net = Network::new(NetConfig::default());
            for i in 0..4 {
                let f = net.add_tcp_flow(false);
                net.start_flow_at(f, TimeStamp::from_millis(50 * i));
            }
            for _ in 0..2 {
                let u = net.add_udp_flow(TimeDelta::from_millis(5));
                net.start_udp(u);
            }
            net.run_until(TimeStamp::from_secs(2));
            net.events_processed()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_flows, bench_event_rate, bench_udp_mix);
criterion_main!(benches);
