//! Ablation: buffered vs unbuffered acquisition (§3.1) — the cost of
//! pushing timestamped samples through the scope-wide buffer and
//! draining them with a delay, including the multi-producer case.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gel::{Clock, TimeDelta, TimeStamp, VirtualClock};
use gscope::ScopeBuffer;

fn make_buffer(delay_ms: u64) -> (ScopeBuffer, VirtualClock) {
    let clock = VirtualClock::new();
    let buf = ScopeBuffer::new(
        Arc::new(clock.clone()) as Arc<dyn Clock>,
        TimeDelta::from_millis(delay_ms),
    );
    (buf, clock)
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer/push");
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_producer", |b| {
        let (buf, _clock) = make_buffer(1_000_000);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            buf.push_sample("s", TimeStamp::from_micros(t), t as f64)
        });
    });
    group.bench_function("push_then_late_drop", |b| {
        // Every sample is late: measures the rejection path (§4.4).
        let (buf, clock) = make_buffer(1);
        clock.advance(TimeDelta::from_secs(100));
        b.iter(|| buf.push_sample("s", TimeStamp::from_millis(1), 1.0));
    });
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer/drain");
    for n in [100usize, 1000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (buf, _clock) = make_buffer(1_000_000);
            b.iter_with_setup(
                || {
                    for i in 0..n {
                        buf.push_sample("s", TimeStamp::from_micros(i as u64), i as f64);
                    }
                },
                |_| buf.drain_until(TimeStamp::from_secs(3600)),
            );
        });
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer/contended_push");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("4_threads_x_250", |b| {
        let (buf, _clock) = make_buffer(1_000_000);
        b.iter(|| {
            let handles: Vec<_> = (0..4)
                .map(|tid| {
                    let bb = buf.clone();
                    std::thread::spawn(move || {
                        for i in 0..250u64 {
                            bb.push_sample("s", TimeStamp::from_micros(tid * 1000 + i), i as f64);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            buf.drain_until(TimeStamp::from_secs(3600)).len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_push, bench_drain, bench_contended);
criterion_main!(benches);
