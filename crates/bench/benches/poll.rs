//! Per-tick polling cost: the microbenchmark under §4.6's overhead
//! numbers, plus ablations over signal type and filter α.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gel::{TickInfo, TimeDelta, TimeStamp};
use gscope_bench::scope_with_int_signals;
use std::sync::Arc;

fn tick_at(n: u64, period: TimeDelta) -> TickInfo {
    let now = TimeStamp::ZERO + period.saturating_mul(n + 1);
    TickInfo {
        now,
        scheduled: now,
        missed: 0,
    }
}

/// Tick cost as the number of displayed signals grows (the paper's
/// "0.02 to 0.05 percent per signal" dimension).
fn bench_tick_vs_signals(c: &mut Criterion) {
    let period = TimeDelta::from_millis(10);
    let mut group = c.benchmark_group("poll_tick/signals");
    for n in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut scope, vars, _clock) = scope_with_int_signals(n, 640, period);
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                for v in &vars {
                    v.set(k as i64);
                }
                scope.tick(&tick_at(k, period));
            });
        });
    }
    group.finish();
}

/// Tick cost per signal type (INTEGER vs FLOAT vs FUNC vs BOOLEAN).
fn bench_tick_vs_source_type(c: &mut Criterion) {
    use gscope::{BoolVar, FloatVar, IntVar, Scope, SigConfig, SigSource};
    let period = TimeDelta::from_millis(10);
    let mut group = c.benchmark_group("poll_tick/source_type");
    let make_scope = || {
        let clock = gel::VirtualClock::new();
        let mut s = Scope::new("t", 640, 100, Arc::new(clock));
        s.set_polling_mode(period).unwrap();
        s.start();
        s
    };
    group.bench_function("integer", |b| {
        let mut scope = make_scope();
        scope
            .add_signal("s", IntVar::new(1).into(), SigConfig::default())
            .unwrap();
        let mut k = 0;
        b.iter(|| {
            k += 1;
            scope.tick(&tick_at(k, period));
        });
    });
    group.bench_function("float", |b| {
        let mut scope = make_scope();
        scope
            .add_signal("s", FloatVar::new(1.0).into(), SigConfig::default())
            .unwrap();
        let mut k = 0;
        b.iter(|| {
            k += 1;
            scope.tick(&tick_at(k, period));
        });
    });
    group.bench_function("boolean", |b| {
        let mut scope = make_scope();
        scope
            .add_signal("s", BoolVar::new(true).into(), SigConfig::default())
            .unwrap();
        let mut k = 0;
        b.iter(|| {
            k += 1;
            scope.tick(&tick_at(k, period));
        });
    });
    group.bench_function("func", |b| {
        let mut scope = make_scope();
        let mut x = 0.0f64;
        scope
            .add_signal(
                "s",
                SigSource::func(move || {
                    x += 0.1;
                    x.sin()
                }),
                SigConfig::default(),
            )
            .unwrap();
        let mut k = 0;
        b.iter(|| {
            k += 1;
            scope.tick(&tick_at(k, period));
        });
    });
    group.finish();
}

/// Ablation: does the per-signal low-pass filter cost anything
/// measurable? (§3.1's α parameter.)
fn bench_tick_vs_filter(c: &mut Criterion) {
    use gscope::{IntVar, Scope, SigConfig};
    let period = TimeDelta::from_millis(10);
    let mut group = c.benchmark_group("poll_tick/filter_alpha");
    for alpha in [0.0f64, 0.5, 0.99] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let clock = gel::VirtualClock::new();
            let mut scope = Scope::new("f", 640, 100, Arc::new(clock));
            let v = IntVar::new(0);
            scope
                .add_signal(
                    "s",
                    v.clone().into(),
                    SigConfig::default().with_filter(alpha),
                )
                .unwrap();
            scope.set_polling_mode(period).unwrap();
            scope.start();
            let mut k = 0i64;
            b.iter(|| {
                k += 1;
                v.set(k % 100);
                scope.tick(&tick_at(k as u64, period));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tick_vs_signals,
    bench_tick_vs_source_type,
    bench_tick_vs_filter
);
criterion_main!(benches);
