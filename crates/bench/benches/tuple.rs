//! Tuple text format (§3.3) parse/format throughput — the cost floor
//! for recording, replay, and network streaming.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gel::TimeStamp;
use gscope::{Tuple, TupleReader, TupleWriter};

fn sample_tuples(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                TimeStamp::from_micros(i as u64 * 1_250),
                (i as f64 * 0.731).sin() * 1000.0,
                format!("signal{}", i % 8),
            )
        })
        .collect()
}

fn bench_format(c: &mut Criterion) {
    let tuples = sample_tuples(1000);
    let mut group = c.benchmark_group("tuple/format");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("to_line_x1000", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for t in &tuples {
                total += t.to_line().len();
            }
            total
        });
    });
    group.bench_function("writer_x1000", |b| {
        b.iter(|| {
            let mut w = TupleWriter::new(Vec::with_capacity(64 * 1024));
            for t in &tuples {
                w.write_tuple(t).unwrap();
            }
            w.into_inner().len()
        });
    });
    group.bench_function("write_line_into_x1000", |b| {
        // The zero-allocation encoder: same bytes, reused buffer.
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            let mut total = 0usize;
            for t in &tuples {
                buf.clear();
                t.write_line_into(&mut buf);
                total += buf.len();
            }
            total
        });
    });
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let tuples = sample_tuples(1000);
    let mut w = TupleWriter::new(Vec::new());
    for t in &tuples {
        w.write_tuple(t).unwrap();
    }
    let bytes = w.into_inner();
    let one_line = tuples[0].to_line();
    let mut group = c.benchmark_group("tuple/parse");
    group.throughput(Throughput::Elements(1));
    group.bench_function("parse_line", |b| {
        b.iter(|| Tuple::parse_line(&one_line, 1).unwrap());
    });
    group.bench_function("parse_raw", |b| {
        // The borrowing parse: no String, no Arc bump.
        b.iter(|| Tuple::parse_raw(&one_line, 1).unwrap().value);
    });
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("reader_1000_lines", |b| {
        b.iter(|| TupleReader::new(bytes.as_slice()).read_all().unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_format, bench_parse);
criterion_main!(benches);
