//! Rendering cost: full-widget redraw versus canvas width, signal
//! count, and line mode — the display half of the §4.6 overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gel::{TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{IntVar, LineMode, Scope, SigConfig};

fn full_scope(width: usize, signals: usize, line: LineMode) -> Scope {
    let clock = VirtualClock::new();
    let mut scope = Scope::new("render", width, 150, Arc::new(clock));
    let vars: Vec<IntVar> = (0..signals)
        .map(|i| {
            let v = IntVar::new(0);
            scope
                .add_signal(
                    format!("s{i}"),
                    v.clone().into(),
                    SigConfig::default().with_line(line),
                )
                .unwrap();
            v
        })
        .collect();
    let period = TimeDelta::from_millis(10);
    scope.set_polling_mode(period).unwrap();
    scope.start();
    // Fill the whole history so the render draws a full trace.
    for k in 0..width as u64 + 8 {
        for (i, v) in vars.iter().enumerate() {
            v.set((((k + i as u64) * 13) % 100) as i64);
        }
        let now = TimeStamp::ZERO + period.saturating_mul(k + 1);
        scope.tick(&TickInfo {
            now,
            scheduled: now,
            missed: 0,
        });
    }
    scope
}

fn bench_render_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("render/width");
    for width in [160usize, 640, 1280] {
        let scope = full_scope(width, 2, LineMode::Line);
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::from_parameter(width), &scope, |b, scope| {
            b.iter(|| grender::render_scope(scope));
        });
    }
    group.finish();
}

fn bench_render_signals(c: &mut Criterion) {
    let mut group = c.benchmark_group("render/signals");
    for n in [1usize, 4, 16] {
        let scope = full_scope(640, n, LineMode::Line);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scope, |b, scope| {
            b.iter(|| grender::render_scope(scope));
        });
    }
    group.finish();
}

fn bench_line_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("render/line_mode");
    for mode in LineMode::ALL {
        let scope = full_scope(640, 2, mode);
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &scope,
            |b, scope| {
                b.iter(|| grender::render_scope(scope));
            },
        );
    }
    group.finish();
}

/// Steady-state one-column advance: full redraw vs the frame cache's
/// scroll blit. Each iteration ticks once so the incremental path does
/// real work instead of returning the cached frame.
fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("render/incremental");
    let period = TimeDelta::from_millis(10);
    for width in [160usize, 640, 1280] {
        let mut scope = full_scope(width, 4, LineMode::Line);
        let mut k = width as u64 + 8;
        let mut tick = move |scope: &mut Scope| {
            k += 1;
            let now = TimeStamp::ZERO + period.saturating_mul(k + 1);
            scope.tick(&TickInfo {
                now,
                scheduled: now,
                missed: 0,
            });
        };
        group.bench_function(BenchmarkId::new("full", width), |b| {
            b.iter(|| {
                tick(&mut scope);
                grender::render_scope(&scope).width()
            });
        });
        let mut cache = grender::FrameCache::new();
        cache.render(&scope);
        group.bench_function(BenchmarkId::new("blit", width), |b| {
            b.iter(|| {
                tick(&mut scope);
                cache.render(&scope).width()
            });
        });
    }
    group.finish();
}

fn bench_svg_vs_raster(c: &mut Criterion) {
    let scope = full_scope(640, 2, LineMode::Line);
    let mut group = c.benchmark_group("render/backend");
    group.bench_function("raster_ppm", |b| {
        b.iter(|| grender::render_scope(&scope).to_ppm().len());
    });
    group.bench_function("svg", |b| {
        b.iter(|| grender::render_scope_svg(&scope).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_render_width,
    bench_render_signals,
    bench_line_modes,
    bench_incremental,
    bench_svg_vs_raster
);
criterion_main!(benches);
