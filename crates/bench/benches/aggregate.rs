//! Ablation: §4.2 event aggregation vs plain sample-and-hold, and the
//! cost of each aggregation function.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gel::TimeDelta;
use gscope::{Aggregation, EventAccumulator};

/// Raw accumulator cost: push a burst of events and close the interval.
fn bench_aggregation_functions(c: &mut Criterion) {
    const EVENTS: usize = 1000;
    let period = TimeDelta::from_millis(50);
    let values: Vec<f64> = (0..EVENTS)
        .map(|i| (i as f64 * 0.37).sin() * 100.0)
        .collect();
    let mut group = c.benchmark_group("aggregate/interval_1000_events");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for agg in Aggregation::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(agg.name()), &agg, |b, &agg| {
            let mut acc = EventAccumulator::new(agg);
            b.iter(|| {
                for &v in &values {
                    acc.push(v);
                }
                criterion::black_box(acc.finish_interval(period))
            });
        });
    }
    group.finish();
}

/// End-to-end: a scope tick over an event-driven signal at varying
/// event rates, versus the polled (sample-and-hold) baseline.
fn bench_event_signal_tick(c: &mut Criterion) {
    use gel::{TickInfo, TimeStamp};
    use gscope::{IntVar, Scope, SigConfig, SigSource};
    use std::sync::Arc;
    let period = TimeDelta::from_millis(50);
    let mut group = c.benchmark_group("aggregate/tick");
    group.bench_function("polled_baseline", |b| {
        let clock = gel::VirtualClock::new();
        let mut scope = Scope::new("p", 640, 100, Arc::new(clock));
        scope
            .add_signal("s", IntVar::new(1).into(), SigConfig::default())
            .unwrap();
        scope.set_polling_mode(period).unwrap();
        scope.start();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let now = TimeStamp::ZERO + period.saturating_mul(k);
            scope.tick(&TickInfo {
                now,
                scheduled: now,
                missed: 0,
            });
        });
    });
    for events_per_tick in [10usize, 100, 1000] {
        group.throughput(Throughput::Elements(events_per_tick as u64));
        group.bench_with_input(
            BenchmarkId::new("events_per_tick", events_per_tick),
            &events_per_tick,
            |b, &n| {
                let clock = gel::VirtualClock::new();
                let mut scope = Scope::new("e", 640, 100, Arc::new(clock));
                scope
                    .add_signal(
                        "s",
                        SigSource::Events,
                        SigConfig::default().with_aggregation(Aggregation::Rate),
                    )
                    .unwrap();
                let sink = scope.event_sink("s").unwrap();
                scope.set_polling_mode(period).unwrap();
                scope.start();
                let mut k = 0u64;
                b.iter(|| {
                    k += 1;
                    for i in 0..n {
                        sink.push(i as f64);
                    }
                    let now = TimeStamp::ZERO + period.saturating_mul(k);
                    scope.tick(&TickInfo {
                        now,
                        scheduled: now,
                        missed: 0,
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregation_functions,
    bench_event_signal_tick
);
criterion_main!(benches);
