//! Overhead of the gtel hot path — the telemetry must be cheap enough
//! to leave on in release builds (the ISSUE's ~100ns/op bar), since
//! every scope tick, loop iteration, and network pump records into it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gtel::{monotonic_ns, HistogramStat, LatencyHistogram, Registry, TraceLog};

/// Raw metric ops through cached handles — the shape all instrumented
/// code uses (resolve once at construction, record with relaxed
/// atomics).
fn bench_metric_ops(c: &mut Criterion) {
    let registry = Registry::shared();
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let histogram = registry.histogram("bench.histogram");

    let mut group = c.benchmark_group("telemetry/ops");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 1.0;
            gauge.set(criterion::black_box(v));
        });
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            histogram.record(criterion::black_box(v & 0xFFFF));
        });
    });
    group.bench_function("monotonic_ns", |b| {
        b.iter(|| criterion::black_box(monotonic_ns()));
    });
    group.finish();
}

/// Contended recording: the histogram is designed to take concurrent
/// writers without locks; measure one thread's throughput while three
/// others hammer the same handle.
fn bench_contended_histogram(c: &mut Criterion) {
    let histogram = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..3 {
        let h = Arc::clone(&histogram);
        let s = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut v = 1u64;
            while !s.load(std::sync::atomic::Ordering::Relaxed) {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(v & 0xFFFFF);
            }
        }));
    }
    let mut group = c.benchmark_group("telemetry/contended");
    group.throughput(Throughput::Elements(1));
    group.bench_function("histogram_record_4_threads", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            histogram.record(criterion::black_box(v & 0xFFFFF));
        });
    });
    group.finish();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
}

/// Read-side costs: snapshotting a populated registry and sampling a
/// metric through the self-scoping `sampler` closure (what a FUNC
/// signal pays per scope tick).
fn bench_read_side(c: &mut Criterion) {
    let registry = Registry::shared();
    for i in 0..8 {
        registry.counter(&format!("bench.read.c{i}")).add(i);
        registry
            .histogram(&format!("bench.read.h{i}"))
            .record(1 << i);
    }
    let mut sampler = registry
        .sampler("bench.read.h3", HistogramStat::P99)
        .expect("registered");

    let mut group = c.benchmark_group("telemetry/read");
    group.bench_function("registry_snapshot_16_metrics", |b| {
        b.iter(|| criterion::black_box(registry.snapshot()));
    });
    group.bench_function("sampler_poll", |b| {
        b.iter(|| criterion::black_box(sampler()));
    });
    group.bench_function("histogram_snapshot", |b| {
        let h = registry.histogram("bench.read.h3");
        b.iter(|| criterion::black_box(h.snapshot()));
    });
    group.finish();
}

/// Trace-ring cost: bounded event log writes (mutex push + pop).
fn bench_trace_log(c: &mut Criterion) {
    let log = TraceLog::new(4096);
    let mut group = c.benchmark_group("telemetry/trace");
    group.throughput(Throughput::Elements(1));
    group.bench_function("event", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 1.0;
            log.event("bench.event", criterion::black_box(v));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_metric_ops,
    bench_contended_histogram,
    bench_read_side,
    bench_trace_log
);
criterion_main!(benches);
