//! Frequency-view cost (§3.1): FFT size sweep and the FFT-vs-naive-DFT
//! speedup that justifies implementing Cooley–Tukey at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdsp::{dft_naive, fft_real, power_spectrum, Complex, SpectrumConfig, Window};

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            (2.0 * std::f64::consts::PI * 13.0 * t).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 31.0 * t).cos()
        })
        .collect()
}

fn bench_fft_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/sizes");
    for log_n in [6u32, 8, 10, 12] {
        let n = 1usize << log_n;
        let xs = signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| fft_real(xs).unwrap());
        });
    }
    group.finish();
}

fn bench_fft_vs_naive(c: &mut Criterion) {
    let n = 256;
    let xs: Vec<Complex> = signal(n).iter().map(|&v| Complex::from_real(v)).collect();
    let mut group = c.benchmark_group("fft/vs_naive_256");
    group.bench_function("fft", |b| {
        b.iter(|| {
            let mut buf = xs.clone();
            gdsp::fft(&mut buf).unwrap();
            buf
        });
    });
    group.bench_function("naive_dft", |b| {
        b.iter(|| dft_naive(&xs));
    });
    group.finish();
}

fn bench_spectrum_pipeline(c: &mut Criterion) {
    let xs = signal(512);
    let mut group = c.benchmark_group("fft/spectrum_512");
    for window in Window::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(window.name()),
            &window,
            |b, &window| {
                let cfg = SpectrumConfig {
                    window,
                    remove_dc: true,
                    ..Default::default()
                };
                b.iter(|| power_spectrum(&xs, cfg).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft_sizes,
    bench_fft_vs_naive,
    bench_spectrum_pipeline
);
criterion_main!(benches);
