/*
 * gscope.h — C bindings for the gscope software-oscilloscope library.
 *
 * Rust reproduction of "Gscope: A Visualization Tool for Time-Sensitive
 * Software" (Goel & Walpole, USENIX FREENIX 2002). Link against the
 * staticlib/cdylib produced by `cargo build -p gscope-capi`.
 *
 * All functions return GSCOPE_OK (0) on success or a negative status;
 * gscope_error_message() describes the most recent error on the calling
 * thread. Handles are not thread-safe: confine each to one thread or
 * lock externally.
 */

#ifndef GSCOPE_H
#define GSCOPE_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define GSCOPE_OK                   0
#define GSCOPE_ERR_NULL            -1
#define GSCOPE_ERR_UTF8            -2
#define GSCOPE_ERR_SCOPE           -3
#define GSCOPE_ERR_RANGE           -4
#define GSCOPE_ERR_UNKNOWN_SIGNAL  -5
#define GSCOPE_ERR_IO              -6

/* Event aggregation codes for gscope_add_event_signal (paper §4.2). */
#define GSCOPE_AGG_HOLD     0u
#define GSCOPE_AGG_MAX      1u
#define GSCOPE_AGG_MIN      2u
#define GSCOPE_AGG_SUM      3u
#define GSCOPE_AGG_RATE     4u
#define GSCOPE_AGG_AVERAGE  5u
#define GSCOPE_AGG_EVENTS   6u
#define GSCOPE_AGG_ANY      7u

typedef struct GscopeHandle GscopeHandle;

/* Lifecycle. `use_virtual_clock` selects a manually advanced clock
 * (drive with gscope_tick_at) vs the system clock (gscope_tick). */
GscopeHandle *gscope_new(const char *name, uint32_t width, uint32_t height,
                         int32_t use_virtual_clock);
void gscope_free(GscopeHandle *handle);

/* Signals. Value signals are written with gscope_set_value; event
 * signals accumulate gscope_push_event per polling interval. */
int32_t gscope_add_signal(GscopeHandle *handle, const char *name,
                          double min, double max);
int32_t gscope_add_event_signal(GscopeHandle *handle, const char *name,
                                double min, double max, uint32_t aggregation);
int32_t gscope_set_value(GscopeHandle *handle, const char *name, double value);
int32_t gscope_push_event(GscopeHandle *handle, const char *name, double value);

/* Acquisition. */
int32_t gscope_set_period_ms(GscopeHandle *handle, uint64_t period_ms);
int32_t gscope_tick(GscopeHandle *handle);                    /* system clock */
int32_t gscope_tick_at(GscopeHandle *handle, uint64_t now_ms); /* virtual clock */

/* Readout (the Value button). */
int32_t gscope_value(GscopeHandle *handle, const char *name, double *out);

/* Rendering: binary PPM (P6). Free the buffer with gscope_buffer_free. */
uint8_t *gscope_render_ppm(GscopeHandle *handle, size_t *out_len);
void gscope_buffer_free(uint8_t *ptr, size_t len);

/* Display transform (the zoom/bias widgets). */
int32_t gscope_set_zoom(GscopeHandle *handle, double zoom);  /* [0.01, 100] */
int32_t gscope_set_bias(GscopeHandle *handle, double bias);  /* [-1, 1] */

/* Recording to the paper's §3.3 tuple text format. */
int32_t gscope_record_start(GscopeHandle *handle, const char *path);
int32_t gscope_record_stop(GscopeHandle *handle);
int32_t gscope_dump_tuples(GscopeHandle *handle, const char *path);

/* Most recent error on this thread (valid until the next failure). */
const char *gscope_error_message(void);

#ifdef __cplusplus
}
#endif

#endif /* GSCOPE_H */
