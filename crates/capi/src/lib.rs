//! `gscope-capi` — a C ABI for the gscope library.
//!
//! §6 of the paper lists missing "bindings for languages other than C"
//! as future work; since this reproduction's native language is Rust,
//! the binding that unlocks other languages is the C ABI below. It
//! wraps a scope, its signals, and rendering behind an opaque handle
//! with integer status codes, so C, Python (ctypes/cffi), or anything
//! else with an FFI can embed a scope.
//!
//! # Conventions
//!
//! * All functions return [`GSCOPE_OK`] (0) on success or a negative
//!   status; [`gscope_error_message`] describes the most recent error
//!   on the calling thread.
//! * Strings are NUL-terminated UTF-8; the library copies them, never
//!   retains caller pointers.
//! * The handle is **not** thread-safe from C: confine each handle to
//!   one thread or lock externally (the Rust API offers `SharedScope`
//!   for multi-threaded use).
//!
//! # Safety
//!
//! Every `unsafe` block here trusts only the documented contracts of
//! the C caller: valid, NUL-terminated string pointers; handle
//! pointers previously returned by [`gscope_new`] and not yet freed;
//! out-pointers valid for a single write.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ffi::{c_char, CStr, CString};
use std::sync::Arc;

use gel::{Clock, SystemClock, TickInfo, TimeDelta, TimeStamp, VirtualClock};
use gscope::{Aggregation, FloatVar, Scope, SigConfig, SigSource};

/// Success.
pub const GSCOPE_OK: i32 = 0;
/// A pointer argument was null.
pub const GSCOPE_ERR_NULL: i32 = -1;
/// A string argument was not valid UTF-8.
pub const GSCOPE_ERR_UTF8: i32 = -2;
/// The gscope library rejected the operation (see the error message).
pub const GSCOPE_ERR_SCOPE: i32 = -3;
/// An argument was out of range.
pub const GSCOPE_ERR_RANGE: i32 = -4;
/// The named signal does not exist on this handle.
pub const GSCOPE_ERR_UNKNOWN_SIGNAL: i32 = -5;
/// I/O failure (recording).
pub const GSCOPE_ERR_IO: i32 = -6;

thread_local! {
    static LAST_ERROR: RefCell<CString> = RefCell::new(CString::default());
}

fn set_error(msg: impl std::fmt::Display) {
    let text = format!("{msg}").replace('\0', " ");
    LAST_ERROR.with(|e| {
        *e.borrow_mut() = CString::new(text).unwrap_or_default();
    });
}

/// Returns a pointer to a NUL-terminated description of the calling
/// thread's most recent error. Valid until the next failing call on
/// this thread.
#[no_mangle]
pub extern "C" fn gscope_error_message() -> *const c_char {
    LAST_ERROR.with(|e| e.borrow().as_ptr())
}

enum SignalBacking {
    Value(FloatVar),
    Events(gscope::EventSink),
}

/// The opaque scope handle behind the C API.
pub struct GscopeHandle {
    scope: Scope,
    clock: ClockKind,
    backings: HashMap<String, SignalBacking>,
}

enum ClockKind {
    System(Arc<SystemClock>),
    Virtual(VirtualClock),
}

impl ClockKind {
    fn now(&self) -> TimeStamp {
        match self {
            ClockKind::System(c) => c.now(),
            ClockKind::Virtual(c) => c.now(),
        }
    }
}

/// # Safety
///
/// `ptr` must be non-null and NUL-terminated.
unsafe fn cstr<'a>(ptr: *const c_char) -> Result<&'a str, i32> {
    if ptr.is_null() {
        set_error("null string pointer");
        return Err(GSCOPE_ERR_NULL);
    }
    // SAFETY: non-null, NUL-terminated per this function's contract.
    unsafe { CStr::from_ptr(ptr) }.to_str().map_err(|_| {
        set_error("string is not valid UTF-8");
        GSCOPE_ERR_UTF8
    })
}

/// # Safety
///
/// `handle` must be a live pointer from [`gscope_new`].
unsafe fn deref<'a>(handle: *mut GscopeHandle) -> Result<&'a mut GscopeHandle, i32> {
    if handle.is_null() {
        set_error("null scope handle");
        return Err(GSCOPE_ERR_NULL);
    }
    // SAFETY: live handle per this function's contract.
    Ok(unsafe { &mut *handle })
}

/// Creates a scope. `use_virtual_clock != 0` selects a manually
/// advanced clock (drive it with [`gscope_tick_at`]); otherwise the
/// system clock is used (drive with [`gscope_tick`]).
///
/// Returns null on failure.
///
/// # Safety
///
/// `name` must be a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_new(
    name: *const c_char,
    width: u32,
    height: u32,
    use_virtual_clock: i32,
) -> *mut GscopeHandle {
    // SAFETY: forwarded caller contract.
    let Ok(name) = (unsafe { cstr(name) }) else {
        return std::ptr::null_mut();
    };
    if width == 0 || height == 0 {
        set_error("width and height must be non-zero");
        return std::ptr::null_mut();
    }
    let (clock, clock_arc): (ClockKind, Arc<dyn Clock>) = if use_virtual_clock != 0 {
        let v = VirtualClock::new();
        (ClockKind::Virtual(v.clone()), Arc::new(v))
    } else {
        let s = Arc::new(SystemClock::new());
        (ClockKind::System(Arc::clone(&s)), s)
    };
    let mut scope = Scope::new(name, width as usize, height as usize, clock_arc);
    if scope.set_polling_mode(TimeDelta::from_millis(50)).is_err() {
        set_error("default polling mode rejected");
        return std::ptr::null_mut();
    }
    scope.start();
    Box::into_raw(Box::new(GscopeHandle {
        scope,
        clock,
        backings: HashMap::new(),
    }))
}

/// Destroys a handle from [`gscope_new`]. Null is ignored.
///
/// # Safety
///
/// `handle` must be null or a live pointer from [`gscope_new`]; it must
/// not be used afterwards.
#[no_mangle]
pub unsafe extern "C" fn gscope_free(handle: *mut GscopeHandle) {
    if !handle.is_null() {
        // SAFETY: ownership returns to Rust exactly once per contract.
        drop(unsafe { Box::from_raw(handle) });
    }
}

/// Adds a value-backed signal displayed over `[min, max]`. Write it
/// with [`gscope_set_value`].
///
/// # Safety
///
/// `handle` live; `name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_add_signal(
    handle: *mut GscopeHandle,
    name: *const c_char,
    min: f64,
    max: f64,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let name = match unsafe { cstr(name) } {
        Ok(s) => s.to_owned(),
        Err(e) => return e,
    };
    let var = FloatVar::new(0.0);
    let config = SigConfig::default().with_range(min, max);
    match h.scope.add_signal(name.clone(), var.clone().into(), config) {
        Ok(()) => {
            h.backings.insert(name, SignalBacking::Value(var));
            GSCOPE_OK
        }
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_SCOPE
        }
    }
}

/// Adds an event-driven signal (§4.2). `aggregation`: 0 hold, 1 max,
/// 2 min, 3 sum, 4 rate, 5 average, 6 events, 7 any-event. Feed it
/// with [`gscope_push_event`].
///
/// # Safety
///
/// `handle` live; `name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_add_event_signal(
    handle: *mut GscopeHandle,
    name: *const c_char,
    min: f64,
    max: f64,
    aggregation: u32,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let name = match unsafe { cstr(name) } {
        Ok(s) => s.to_owned(),
        Err(e) => return e,
    };
    let Some(&agg) = Aggregation::ALL.get(aggregation as usize) else {
        set_error(format!("aggregation code {aggregation} out of range"));
        return GSCOPE_ERR_RANGE;
    };
    let config = SigConfig::default()
        .with_range(min, max)
        .with_aggregation(agg);
    match h.scope.add_signal(name.clone(), SigSource::Events, config) {
        Ok(()) => {
            let sink = h.scope.event_sink(&name).expect("just added");
            h.backings.insert(name, SignalBacking::Events(sink));
            GSCOPE_OK
        }
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_SCOPE
        }
    }
}

/// Sets a value-backed signal's current value.
///
/// # Safety
///
/// `handle` live; `name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_set_value(
    handle: *mut GscopeHandle,
    name: *const c_char,
    value: f64,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let name = match unsafe { cstr(name) } {
        Ok(s) => s,
        Err(e) => return e,
    };
    match h.backings.get(name) {
        Some(SignalBacking::Value(var)) => {
            var.set(value);
            GSCOPE_OK
        }
        Some(SignalBacking::Events(_)) => {
            set_error(format!("{name} is an event signal; use gscope_push_event"));
            GSCOPE_ERR_SCOPE
        }
        None => {
            set_error(format!("no signal named {name}"));
            GSCOPE_ERR_UNKNOWN_SIGNAL
        }
    }
}

/// Pushes one event into an event-driven signal.
///
/// # Safety
///
/// `handle` live; `name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_push_event(
    handle: *mut GscopeHandle,
    name: *const c_char,
    value: f64,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let name = match unsafe { cstr(name) } {
        Ok(s) => s,
        Err(e) => return e,
    };
    match h.backings.get(name) {
        Some(SignalBacking::Events(sink)) => {
            sink.push(value);
            GSCOPE_OK
        }
        Some(SignalBacking::Value(_)) => {
            set_error(format!("{name} is a value signal; use gscope_set_value"));
            GSCOPE_ERR_SCOPE
        }
        None => {
            set_error(format!("no signal named {name}"));
            GSCOPE_ERR_UNKNOWN_SIGNAL
        }
    }
}

/// Sets the polling period in milliseconds.
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_set_period_ms(handle: *mut GscopeHandle, period_ms: u64) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    match h.scope.set_period(TimeDelta::from_millis(period_ms)) {
        Ok(()) => GSCOPE_OK,
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_RANGE
        }
    }
}

/// Polls once at the clock's current time (system-clock handles).
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_tick(handle: *mut GscopeHandle) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    let now = h.clock.now();
    h.scope.tick(&TickInfo {
        now,
        scheduled: now,
        missed: 0,
    });
    GSCOPE_OK
}

/// Advances a virtual-clock handle to `now_ms` and polls once.
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_tick_at(handle: *mut GscopeHandle, now_ms: u64) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    let t = TimeStamp::from_millis(now_ms);
    match &h.clock {
        ClockKind::Virtual(v) => {
            if t < v.now() {
                set_error("time must not go backwards");
                return GSCOPE_ERR_RANGE;
            }
            v.set(t);
        }
        ClockKind::System(_) => {
            set_error("gscope_tick_at requires a virtual-clock handle");
            return GSCOPE_ERR_SCOPE;
        }
    }
    h.scope.tick(&TickInfo {
        now: t,
        scheduled: t,
        missed: 0,
    });
    GSCOPE_OK
}

/// Reads a signal's most recent raw value into `out`. Returns
/// [`GSCOPE_ERR_SCOPE`] if the signal has no value yet.
///
/// # Safety
///
/// `handle` live; `name` valid string; `out` valid for one `f64` write.
#[no_mangle]
pub unsafe extern "C" fn gscope_value(
    handle: *mut GscopeHandle,
    name: *const c_char,
    out: *mut f64,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let name = match unsafe { cstr(name) } {
        Ok(s) => s,
        Err(e) => return e,
    };
    if out.is_null() {
        set_error("null out pointer");
        return GSCOPE_ERR_NULL;
    }
    match h.scope.value_readout(name) {
        Ok(Some(v)) => {
            // SAFETY: `out` is valid for one write per contract.
            unsafe { *out = v };
            GSCOPE_OK
        }
        Ok(None) => {
            set_error(format!("{name} has no samples yet"));
            GSCOPE_ERR_SCOPE
        }
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_UNKNOWN_SIGNAL
        }
    }
}

/// Renders the widget as binary PPM into a freshly allocated buffer.
/// Writes the buffer length to `out_len`; free with
/// [`gscope_buffer_free`]. Returns null on failure.
///
/// # Safety
///
/// `handle` live; `out_len` valid for one write.
#[no_mangle]
pub unsafe extern "C" fn gscope_render_ppm(
    handle: *mut GscopeHandle,
    out_len: *mut usize,
) -> *mut u8 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(_) => return std::ptr::null_mut(),
    };
    if out_len.is_null() {
        set_error("null out_len pointer");
        return std::ptr::null_mut();
    }
    let ppm = grender::render_scope(&h.scope).to_ppm().into_boxed_slice();
    // SAFETY: `out_len` is valid for one write per contract.
    unsafe { *out_len = ppm.len() };
    Box::into_raw(ppm) as *mut u8
}

/// Frees a buffer returned by [`gscope_render_ppm`].
///
/// # Safety
///
/// `(ptr, len)` must come from [`gscope_render_ppm`], freed only once.
#[no_mangle]
pub unsafe extern "C" fn gscope_buffer_free(ptr: *mut u8, len: usize) {
    if !ptr.is_null() {
        // SAFETY: reconstructs the exact boxed slice allocated above.
        drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) });
    }
}

/// Sets the zoom factor (legal in `[0.01, 100]`).
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_set_zoom(handle: *mut GscopeHandle, zoom: f64) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    match h.scope.set_zoom(zoom) {
        Ok(()) => GSCOPE_OK,
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_RANGE
        }
    }
}

/// Sets the bias (legal in `[-1, 1]`).
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_set_bias(handle: *mut GscopeHandle, bias: f64) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    match h.scope.set_bias(bias) {
        Ok(()) => GSCOPE_OK,
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_RANGE
        }
    }
}

/// Writes the currently displayed histories to `path` as §3.3 tuples
/// (the "print what's on screen" export).
///
/// # Safety
///
/// `handle` live; `path` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_dump_tuples(handle: *mut GscopeHandle, path: *const c_char) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let path = match unsafe { cstr(path) } {
        Ok(s) => s,
        Err(e) => return e,
    };
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            set_error(format!("cannot create {path}: {e}"));
            return GSCOPE_ERR_IO;
        }
    };
    match h.scope.dump_tuples(std::io::BufWriter::new(file)) {
        Ok(_) => GSCOPE_OK,
        Err(e) => {
            set_error(e);
            GSCOPE_ERR_IO
        }
    }
}

/// Starts recording sampled tuples to `path` (§3.3 text format).
///
/// # Safety
///
/// `handle` live; `path` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn gscope_record_start(
    handle: *mut GscopeHandle,
    path: *const c_char,
) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // SAFETY: forwarded caller contract.
    let path = match unsafe { cstr(path) } {
        Ok(s) => s,
        Err(e) => return e,
    };
    match std::fs::File::create(path) {
        Ok(f) => {
            h.scope.start_recording(std::io::BufWriter::new(f));
            GSCOPE_OK
        }
        Err(e) => {
            set_error(format!("cannot create {path}: {e}"));
            GSCOPE_ERR_IO
        }
    }
}

/// Stops recording, flushing the file.
///
/// # Safety
///
/// `handle` live.
#[no_mangle]
pub unsafe extern "C" fn gscope_record_stop(handle: *mut GscopeHandle) -> i32 {
    // SAFETY: forwarded caller contract.
    let h = match unsafe { deref(handle) } {
        Ok(h) => h,
        Err(e) => return e,
    };
    // stop_recording already flushed (and latched any flush error on
    // the scope); nothing further to do with the returned sink.
    let _ = h.scope.stop_recording();
    GSCOPE_OK
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    fn c(s: &str) -> CString {
        CString::new(s).unwrap()
    }

    #[test]
    fn lifecycle_through_the_c_abi() {
        // SAFETY: test passes valid pointers throughout.
        unsafe {
            let h = gscope_new(c("capi").as_ptr(), 64, 48, 1);
            assert!(!h.is_null());
            assert_eq!(
                gscope_add_signal(h, c("temp").as_ptr(), 0.0, 100.0),
                GSCOPE_OK
            );
            assert_eq!(gscope_set_period_ms(h, 50), GSCOPE_OK);
            for i in 1..=20u64 {
                assert_eq!(gscope_set_value(h, c("temp").as_ptr(), i as f64), GSCOPE_OK);
                assert_eq!(gscope_tick_at(h, i * 50), GSCOPE_OK);
            }
            let mut v = 0.0;
            assert_eq!(gscope_value(h, c("temp").as_ptr(), &mut v), GSCOPE_OK);
            assert_eq!(v, 20.0);
            let mut len = 0usize;
            let buf = gscope_render_ppm(h, &mut len);
            assert!(!buf.is_null());
            assert!(len > 100);
            assert_eq!(std::slice::from_raw_parts(buf, 2), b"P6");
            gscope_buffer_free(buf, len);
            gscope_free(h);
        }
    }

    #[test]
    fn event_signals_aggregate() {
        // SAFETY: valid pointers throughout.
        unsafe {
            let h = gscope_new(c("ev").as_ptr(), 32, 32, 1);
            // Aggregation 3 = Sum.
            assert_eq!(
                gscope_add_event_signal(h, c("bytes").as_ptr(), 0.0, 1e6, 3),
                GSCOPE_OK
            );
            assert_eq!(gscope_push_event(h, c("bytes").as_ptr(), 100.0), GSCOPE_OK);
            assert_eq!(gscope_push_event(h, c("bytes").as_ptr(), 250.0), GSCOPE_OK);
            assert_eq!(gscope_tick_at(h, 50), GSCOPE_OK);
            let mut v = 0.0;
            assert_eq!(gscope_value(h, c("bytes").as_ptr(), &mut v), GSCOPE_OK);
            assert_eq!(v, 350.0);
            // Wrong API for the signal kind is a clean error.
            assert_eq!(
                gscope_set_value(h, c("bytes").as_ptr(), 1.0),
                GSCOPE_ERR_SCOPE
            );
            gscope_free(h);
        }
    }

    #[test]
    fn error_paths_set_messages() {
        // SAFETY: deliberately passes nulls where the API must catch
        // them, and valid pointers elsewhere.
        unsafe {
            assert!(gscope_new(std::ptr::null(), 10, 10, 1).is_null());
            let h = gscope_new(c("err").as_ptr(), 10, 10, 1);
            assert_eq!(
                gscope_set_value(h, c("nope").as_ptr(), 1.0),
                GSCOPE_ERR_UNKNOWN_SIGNAL
            );
            let msg = CStr::from_ptr(gscope_error_message());
            assert!(msg.to_string_lossy().contains("nope"));
            assert_eq!(gscope_set_period_ms(h, 0), GSCOPE_ERR_RANGE);
            assert_eq!(
                gscope_add_event_signal(h, c("x").as_ptr(), 0.0, 1.0, 99),
                GSCOPE_ERR_RANGE
            );
            // Duplicate signal name.
            assert_eq!(gscope_add_signal(h, c("a").as_ptr(), 0.0, 1.0), GSCOPE_OK);
            assert_eq!(
                gscope_add_signal(h, c("a").as_ptr(), 0.0, 1.0),
                GSCOPE_ERR_SCOPE
            );
            // Time must be monotone.
            assert_eq!(gscope_tick_at(h, 100), GSCOPE_OK);
            assert_eq!(gscope_tick_at(h, 50), GSCOPE_ERR_RANGE);
            gscope_free(h);
            // Freeing null is a no-op.
            gscope_free(std::ptr::null_mut());
        }
    }

    #[test]
    fn recording_through_the_c_abi() {
        let path = std::env::temp_dir().join("gscope_capi_test.tuples");
        let path_c = c(path.to_str().unwrap());
        // SAFETY: valid pointers throughout.
        unsafe {
            let h = gscope_new(c("rec").as_ptr(), 32, 32, 1);
            gscope_add_signal(h, c("v").as_ptr(), 0.0, 10.0);
            assert_eq!(gscope_record_start(h, path_c.as_ptr()), GSCOPE_OK);
            for i in 1..=4u64 {
                gscope_set_value(h, c("v").as_ptr(), i as f64);
                gscope_tick_at(h, i * 50);
            }
            assert_eq!(gscope_record_stop(h), GSCOPE_OK);
            gscope_free(h);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains(" v"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn zoom_bias_and_dump_via_c_abi() {
        let path = std::env::temp_dir().join("gscope_capi_dump.tuples");
        let path_c = c(path.to_str().unwrap());
        // SAFETY: valid pointers throughout.
        unsafe {
            let h = gscope_new(c("zb").as_ptr(), 32, 32, 1);
            gscope_add_signal(h, c("v").as_ptr(), 0.0, 10.0);
            assert_eq!(gscope_set_zoom(h, 2.0), GSCOPE_OK);
            assert_eq!(gscope_set_zoom(h, 0.0), GSCOPE_ERR_RANGE);
            assert_eq!(gscope_set_bias(h, -0.5), GSCOPE_OK);
            assert_eq!(gscope_set_bias(h, 3.0), GSCOPE_ERR_RANGE);
            for i in 1..=3u64 {
                gscope_set_value(h, c("v").as_ptr(), i as f64);
                gscope_tick_at(h, i * 50);
            }
            assert_eq!(gscope_dump_tuples(h, path_c.as_ptr()), GSCOPE_OK);
            gscope_free(h);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn system_clock_handle_ticks_in_real_time() {
        // SAFETY: valid pointers throughout.
        unsafe {
            let h = gscope_new(c("rt").as_ptr(), 32, 32, 0);
            gscope_add_signal(h, c("v").as_ptr(), 0.0, 10.0);
            gscope_set_value(h, c("v").as_ptr(), 7.0);
            assert_eq!(gscope_tick(h), GSCOPE_OK);
            let mut v = 0.0;
            assert_eq!(gscope_value(h, c("v").as_ptr(), &mut v), GSCOPE_OK);
            assert_eq!(v, 7.0);
            // tick_at is rejected on a system-clock handle.
            assert_eq!(gscope_tick_at(h, 1), GSCOPE_ERR_SCOPE);
            gscope_free(h);
        }
    }
}
