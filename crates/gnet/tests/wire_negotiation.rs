//! Wire-protocol negotiation: binary is opt-in per connection and
//! every mix of peers converges on a protocol both sides speak.
//!
//! - binary client ↔ binary server: HELLO/WELCOME upgrade, DATA frames
//!   both ways;
//! - binary-offering client → legacy text server: no WELCOME ever
//!   arrives, the client stays on text and interoperates;
//! - text-only legacy client (raw socket) → sharded server: lines in,
//!   lines out, no frame sentinel on the wire;
//! - property: the binary batch codec is tuple-space-identical to the
//!   §3.3 text codec for arbitrary tuples.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gel::TimeStamp;
use gnet::wire::{self, BatchEncoder, Msg, WireRec};
use gnet::{Protocol, ScopeClient, ScopeServer, StreamEvent};
use gscope::Tuple;
use proptest::prelude::*;

/// Pumps both clients and the server until `done` or a deadline.
fn pump_until(
    server: &mut ScopeServer,
    clients: &mut [&mut ScopeClient],
    mut done: impl FnMut(&mut [&mut ScopeClient]) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        let _ = server.poll();
        for c in clients.iter_mut() {
            let _ = c.pump();
        }
        if done(clients) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("pump_until: condition not reached within deadline");
}

#[test]
fn binary_client_negotiates_and_streams_frames() {
    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();

    let mut rx = ScopeClient::connect_binary(addr).unwrap();
    rx.subscribe();
    let mut tx = ScopeClient::connect_binary(addr).unwrap();

    // Both ends upgrade once the server answers HELLO with WELCOME.
    pump_until(&mut server, &mut [&mut rx, &mut tx], |cs| {
        cs.iter().all(|c| c.negotiated() == Protocol::Binary)
    });
    assert!(rx
        .take_events()
        .iter()
        .any(|e| matches!(e, StreamEvent::Negotiated(Protocol::Binary))));

    for i in 0..100u64 {
        tx.send_at(TimeStamp::from_micros(1_000 + i), "neg.sig", i as f64);
    }
    let mut got: Vec<Tuple> = Vec::new();
    pump_until(&mut server, &mut [&mut rx, &mut tx], |cs| {
        got.extend(cs[0].take_received());
        got.len() >= 100
    });
    assert_eq!(got.len(), 100);
    for (i, t) in got.iter().enumerate() {
        assert_eq!(t.time.as_micros(), 1_000 + i as u64);
        assert_eq!(t.value, i as f64);
        assert_eq!(t.name.as_deref(), Some("neg.sig"));
    }

    // The upgrade is per-connection state the server reports back.
    let infos = server.client_stats();
    assert_eq!(infos.len(), 2);
    assert!(infos.iter().all(|c| c.protocol == Protocol::Binary));
    assert_eq!(server.stats().protocol_errors, 0);
}

#[test]
fn binary_offer_falls_back_to_text_against_legacy_server() {
    // A legacy server: plain socket that never answers HELLO and
    // speaks only §3.3 text lines.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mut client = ScopeClient::connect_binary(addr).unwrap();
    let (mut legacy, _) = listener.accept().unwrap();
    legacy.set_nonblocking(true).unwrap();

    // The client may send tuples immediately; until WELCOME arrives
    // they must go out as text so a legacy peer can read them.
    client.send_at(TimeStamp::from_micros(5_000), "fallback", 1.5);
    let _ = client.pump();

    let mut wire_bytes = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        let _ = client.pump();
        match legacy.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => wire_bytes.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) => panic!("legacy read: {e}"),
        }
        if wire_bytes.ends_with(b"\n") && wire_bytes.windows(8).any(|w| w == b"fallback") {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // The HELLO frame is the only binary on the wire; everything else
    // is parseable text. A legacy text server skips the HELLO bytes
    // as one unparseable line (frames never contain '\n' by framing,
    // so it cannot eat the tuples that follow).
    let text_start = wire_bytes
        .iter()
        .position(|&b| b != wire::FRAME_SENTINEL)
        .unwrap();
    let (msg, consumed) = wire::split_message(&wire_bytes).unwrap().unwrap();
    assert!(matches!(
        msg,
        Msg::Frame {
            op: wire::OP_HELLO,
            ..
        }
    ));
    let text = std::str::from_utf8(&wire_bytes[consumed..]).unwrap();
    assert!(text_start > 0);
    assert!(text.contains("fallback"), "tuples stay text: {text:?}");
    let tuple_line = text.lines().find(|l| l.contains("fallback")).unwrap();
    let parsed = Tuple::parse_line(tuple_line, 1).unwrap();
    assert_eq!(parsed.time.as_micros(), 5_000);
    assert_eq!(parsed.value, 1.5);

    // The legacy server answers in text; the client — still without a
    // WELCOME — parses it and reports the un-upgraded protocol.
    legacy.write_all(b"7000 2.25 from_legacy\n").unwrap();
    legacy.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut got = Vec::new();
    while Instant::now() < deadline && got.is_empty() {
        let _ = client.pump();
        got.extend(client.take_received());
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(client.negotiated(), Protocol::Text);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].name.as_deref(), Some("from_legacy"));
    assert_eq!(got[0].value, 2.25);
}

#[test]
fn text_only_legacy_client_speaks_lines_both_ways() {
    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();

    // Raw sockets: what `nc` would do.
    let mut sub = TcpStream::connect(addr).unwrap();
    sub.set_nonblocking(true).unwrap();
    sub.write_all(b"!sub\n").unwrap();
    let mut tx = TcpStream::connect(addr).unwrap();

    // Let the server adopt both connections and process the !sub
    // before any tuples arrive, so the fan-out sees a subscriber.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && server.client_count() < 2 {
        let _ = server.poll();
        std::thread::sleep(Duration::from_millis(1));
    }
    for _ in 0..20 {
        let _ = server.poll();
    }

    tx.write_all(b"100 1 legacy.sig\n200 2 legacy.sig\n")
        .unwrap();
    tx.flush().unwrap();

    let mut bytes = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        let _ = server.poll();
        match sub.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) => panic!("subscriber read: {e}"),
        }
        if bytes.iter().filter(|&&b| b == b'\n').count() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Never a frame sentinel toward a client that did not HELLO.
    assert!(!bytes.contains(&wire::FRAME_SENTINEL), "{bytes:?}");
    let text = std::str::from_utf8(&bytes).unwrap();
    let lines: Vec<Tuple> = text
        .lines()
        .map(|l| Tuple::parse_line(l, 1).unwrap())
        .collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0].time.as_micros(), 100_000, "§3.3 times are ms");
    assert_eq!(lines[1].value, 2.0);
    assert_eq!(lines[0].name.as_deref(), Some("legacy.sig"));

    let stats = server.stats();
    assert_eq!(stats.tuples_received, 2);
    assert_eq!(stats.parse_errors, 0);
    assert_eq!(stats.protocol_errors, 0);
}

/// Reads whatever `sock` has buffered without blocking.
fn read_available(sock: &mut TcpStream, sink: &mut Vec<u8>) {
    let mut buf = [0u8; 4096];
    loop {
        match sock.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => sink.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) => panic!("read: {e}"),
        }
    }
}

#[test]
fn v1_peer_sees_byte_identical_server_wire() {
    // A v1 peer: speaks the binary framing but advertises flags=0 (the
    // only value the old code ever put in that byte). Today's server
    // must answer with the exact WELCOME bytes the old server sent and
    // never emit a v2 opcode (PING, DATA_ORIGIN) at it.
    let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();

    let mut v1 = TcpStream::connect(addr).unwrap();
    v1.set_nonblocking(true).unwrap();
    let mut hello = Vec::new();
    wire::frame_hello(&mut hello, 0); // flags=0 == v1 byte stream
    assert_eq!(hello, [wire::FRAME_SENTINEL, 3, wire::OP_HELLO, 1, 0]);
    v1.write_all(&hello).unwrap();
    let mut sub = Vec::new();
    wire::frame_arg(&mut sub, wire::OP_SUB, 0);
    v1.write_all(&sub).unwrap();

    // A modern producer with every v2 feature enabled feeds the hub.
    let mut tx = ScopeClient::connect_binary(addr).unwrap();
    tx.set_node_id(7);
    tx.set_ping_interval_us(1);
    pump_until(&mut server, &mut [&mut tx], |cs| {
        cs[0].negotiated() == Protocol::Binary
    });
    for i in 0..10u64 {
        tx.send_at(TimeStamp::from_micros(1_000 + i), "v1.sig", i as f64);
    }

    let mut wire_bytes = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut tuples = 0usize;
    let mut ops = Vec::new();
    while Instant::now() < deadline && tuples < 10 {
        let _ = server.poll();
        let _ = tx.pump();
        read_available(&mut v1, &mut wire_bytes);
        ops.clear();
        tuples = 0;
        let mut rest: &[u8] = &wire_bytes;
        while let Ok(Some((msg, consumed))) = wire::split_message(rest) {
            if let Msg::Frame { op, body } = msg {
                ops.push(op);
                if op == wire::OP_DATA {
                    let mut recs = Vec::new();
                    wire::decode_data(body, &mut recs).unwrap();
                    tuples += recs.len();
                }
            }
            rest = &rest[consumed..];
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(tuples, 10, "v1 subscriber did not get the data");
    // First reply is the WELCOME the old server would have sent, byte
    // for byte: negotiated caps are 0 & LOCAL_CAPS == 0.
    assert_eq!(
        &wire_bytes[..5],
        [wire::FRAME_SENTINEL, 3, wire::OP_WELCOME, 1, 0]
    );
    // And nothing newer than v1 ever reaches this connection, even
    // though the same hub runs clock sync against the producer.
    assert!(
        ops.iter()
            .all(|&op| op == wire::OP_WELCOME || op == wire::OP_DATA),
        "v2 opcode leaked to a v1 peer: {ops:?}"
    );
}

#[test]
fn v2_client_against_v1_server_stays_byte_identical() {
    // A v1 server: answers HELLO with the old WELCOME (flags=0). The
    // modern client — node id set, sub-microsecond ping interval —
    // must mask its features off and put exactly the old client's
    // bytes on the wire: plain DATA frames, no PING, no origin header.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mut client = ScopeClient::connect_binary(addr).unwrap();
    client.set_node_id(9);
    client.set_ping_interval_us(1);
    let (mut v1_server, _) = listener.accept().unwrap();
    v1_server.set_nonblocking(true).unwrap();

    // Consume the HELLO, answer like the old server did.
    let mut rx = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && rx.len() < 5 {
        let _ = client.pump();
        read_available(&mut v1_server, &mut rx);
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        &rx[..5],
        [wire::FRAME_SENTINEL, 3, wire::OP_HELLO, 1, wire::LOCAL_CAPS]
    );
    rx.clear();
    v1_server
        .write_all(&[wire::FRAME_SENTINEL, 3, wire::OP_WELCOME, 1, 0])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && client.negotiated() != Protocol::Binary {
        let _ = client.pump();
        std::thread::sleep(Duration::from_millis(1));
    }

    // Same tuples through a reference v1 encoder for comparison.
    let mut expected = Vec::new();
    let mut enc = BatchEncoder::new();
    for i in 0..5u64 {
        client.send_at(TimeStamp::from_micros(2_000 + i), "compat.sig", i as f64);
        enc.push(2_000 + i, i as f64, Some(&Arc::from("compat.sig")));
    }
    enc.frame_into(&mut expected);

    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && rx.len() < expected.len() {
        let _ = client.pump();
        read_available(&mut v1_server, &mut rx);
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        rx, expected,
        "v2 client's wire bytes differ from a v1 client's"
    );
}

fn finite_value() -> impl Strategy<Value = f64> {
    prop_oneof![-1e9..1e9f64, Just(0.0), Just(-0.0), -1.0..1.0f64]
}

proptest! {
    // The binary codec must agree with the text codec tuple-for-tuple:
    // same microsecond times, bit-identical values, same names. This
    // is what lets a shard encode a batch once and fan it out to a
    // mixed population of text and binary subscribers.
    #[test]
    fn binary_batch_round_trip_matches_text_codec(
        times in proptest::collection::vec(0u64..10_000_000_000, 1..50),
        values in proptest::collection::vec(finite_value(), 50),
        names in proptest::collection::vec(
            proptest::option::of("[a-zA-Z][a-zA-Z0-9_.]{0,12}"), 50),
    ) {
        let mut times = times;
        times.sort_unstable();
        let tuples: Vec<(u64, f64, Option<Arc<str>>)> = times
            .iter()
            .zip(&values)
            .zip(&names)
            .map(|((&t, &v), n)| (t, v, n.as_deref().map(Arc::from)))
            .collect();

        // Binary: one DATA frame through the real framing layer.
        let mut enc = BatchEncoder::new();
        for (t, v, n) in &tuples {
            enc.push(*t, *v, n.as_ref());
        }
        let mut framed = Vec::new();
        enc.frame_into(&mut framed);
        let (msg, consumed) = wire::split_message(&framed).unwrap().unwrap();
        prop_assert_eq!(consumed, framed.len());
        let mut recs: Vec<WireRec> = Vec::new();
        match msg {
            Msg::Frame { op, body } => {
                prop_assert_eq!(op, wire::OP_DATA);
                wire::decode_data(body, &mut recs).unwrap();
            }
            Msg::Line(_) => prop_assert!(false, "expected a frame"),
        }

        // Text: the same tuples through the §3.3 line codec.
        let mut line = Vec::new();
        prop_assert_eq!(recs.len(), tuples.len());
        for (rec, (t, v, n)) in recs.iter().zip(&tuples) {
            line.clear();
            gscope::write_tuple_line(
                &mut line,
                TimeStamp::from_micros(*t),
                *v,
                n.as_deref(),
            );
            let text = std::str::from_utf8(&line).unwrap();
            let parsed = Tuple::parse_line(text.trim_end(), 1).unwrap();
            prop_assert_eq!(rec.time_us, parsed.time.as_micros());
            prop_assert_eq!(rec.time_us, *t);
            prop_assert_eq!(rec.value.to_bits(), parsed.value.to_bits());
            prop_assert_eq!(rec.name.as_deref(), parsed.name.as_deref());
            prop_assert_eq!(rec.name.as_deref(), n.as_deref());
        }
    }

    // The origin header must survive a merged stream of batches whose
    // clocks run backwards relative to each other — exactly what a hub
    // shard sees when several producers share one socket buffer. Every
    // header field (including the u64 extremes) and every tuple must
    // come back bit-exact, batch boundaries preserved.
    #[test]
    fn origin_header_round_trips_merged_non_monotone_batches(
        batches in proptest::collection::vec(
            (
                // Origin fields: cover 0, small, and u64::MAX.
                prop_oneof![Just(0u64), 1u64..1_000, Just(u64::MAX)],
                prop_oneof![0u64..10_000_000_000, Just(u64::MAX)],
                prop_oneof![Just(0u64), 1u64..u64::MAX],
                // Per-batch tuple times: sorted within, free across.
                proptest::collection::vec(0u64..10_000_000_000, 1..20),
                proptest::collection::vec(finite_value(), 20),
            ),
            1..6,
        ),
    ) {
        // One byte stream holding every batch back to back; times are
        // non-monotone across batch boundaries by construction.
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for (node_id, send_us, span_id, times, values) in &batches {
            let mut times = times.clone();
            times.sort_unstable();
            let origin = wire::Origin {
                node_id: *node_id,
                send_us: *send_us,
                span_id: *span_id,
            };
            let mut enc = BatchEncoder::new();
            let tuples: Vec<(u64, f64)> = times
                .iter()
                .zip(values)
                .map(|(&t, &v)| (t, v))
                .collect();
            for (t, v) in &tuples {
                enc.push(*t, *v, Some(&Arc::from("origin.sig")));
            }
            enc.frame_into_origin(&mut stream, &origin);
            expected.push((origin, tuples));
        }

        // Decode the merged stream frame by frame.
        let mut rest: &[u8] = &stream;
        let mut decoded = Vec::new();
        while let Some((msg, consumed)) = wire::split_message(rest).unwrap() {
            match msg {
                Msg::Frame { op, body } => {
                    prop_assert_eq!(op, wire::OP_DATA_ORIGIN);
                    let (origin, used) = wire::decode_origin(body).unwrap();
                    let mut recs: Vec<WireRec> = Vec::new();
                    wire::decode_data(&body[used..], &mut recs).unwrap();
                    decoded.push((origin, recs));
                }
                Msg::Line(_) => prop_assert!(false, "expected a frame"),
            }
            rest = &rest[consumed..];
        }
        prop_assert!(rest.is_empty(), "trailing bytes after merged stream");
        prop_assert_eq!(decoded.len(), expected.len());
        for ((origin, recs), (want_origin, want_tuples)) in decoded.iter().zip(&expected) {
            prop_assert_eq!(origin, want_origin);
            prop_assert_eq!(recs.len(), want_tuples.len());
            for (rec, (t, v)) in recs.iter().zip(want_tuples) {
                prop_assert_eq!(rec.time_us, *t);
                prop_assert_eq!(rec.value.to_bits(), v.to_bits());
                prop_assert_eq!(rec.name.as_deref(), Some("origin.sig"));
            }
        }
    }
}
