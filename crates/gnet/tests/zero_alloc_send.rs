//! Proves the client send path is allocation-free in steady state and
//! byte-identical to the legacy `to_line()`-based encoder.
//!
//! The whole test binary runs under a counting wrapper around the
//! system allocator; after warming the connection to steady-state
//! buffer capacities, a burst of sends must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};

use gel::TimeStamp;
use gnet::ScopeClient;
use gscope::Tuple;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A loopback server end the client can connect to; the test drains it
/// so the client's writes always make progress.
fn loopback_client() -> (ScopeClient, std::net::TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = ScopeClient::connect(addr).expect("connect");
    let (server_end, _) = listener.accept().expect("accept");
    (client, server_end)
}

#[test]
fn steady_state_send_does_not_allocate() {
    let (mut client, _server_end) = loopback_client();

    // Warm-up: grow the out-buffer and encoding scratch to their
    // steady-state capacities with the exact byte load the measured
    // burst will queue (so no capacity growth can hide in the burst).
    for i in 200..400u64 {
        client.send_at(TimeStamp::from_millis(i), "net.zero_alloc", i as f64 * 0.5);
    }
    assert!(client.pending_bytes() > 0, "warm-up must have queued bytes");
    client.flush_blocking().expect("flush warm-up");
    assert_eq!(client.pending_bytes(), 0);

    // Measured burst: with the buffers warm and the queue drained,
    // sends must be pure formatting + copy — no Tuple, no String, no
    // buffer growth.

    let before = allocations();
    for i in 200..400u64 {
        client.send_at(TimeStamp::from_millis(i), "net.zero_alloc", i as f64 * 0.5);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state sends must not touch the allocator"
    );
}

#[test]
fn send_parts_bytes_match_legacy_encoding() {
    let (mut client, mut server_end) = loopback_client();
    server_end
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");

    let tuples: Vec<Tuple> = (0..50u64)
        .map(|i| {
            if i % 5 == 0 {
                Tuple::unnamed(TimeStamp::from_micros(i * 1_234), i as f64 / 8.0)
            } else {
                Tuple::new(
                    TimeStamp::from_micros(i * 1_234),
                    (i as f64) * -3.75 + 0.001,
                    format!("sig{}", i % 3),
                )
            }
        })
        .collect();

    // The legacy wire encoding: one to_line() String + '\n' per tuple.
    let mut expected = Vec::new();
    for t in &tuples {
        expected.extend_from_slice(t.to_line().as_bytes());
        expected.push(b'\n');
    }

    for t in &tuples {
        client.send(t);
    }
    client.flush_blocking().expect("flush");
    assert_eq!(client.stats().bytes_sent, expected.len() as u64);

    let mut got = vec![0u8; expected.len()];
    server_end.read_exact(&mut got).expect("read");
    assert_eq!(
        got, expected,
        "wire bytes must be identical to the legacy encoder"
    );
}
