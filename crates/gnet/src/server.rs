//! The gscope server library (§4.4).
//!
//! "The server receives data from one or more clients asynchronously
//! and buffers the data. It then displays these BUFFER signals to one
//! or more scopes with a user-specified delay. Data arriving at the
//! server after this delay is not buffered but dropped immediately."
//!
//! The server is single-threaded and I/O-driven: [`ScopeServer::poll`]
//! accepts pending connections and reads whatever every client socket
//! has, parses complete tuple lines, and pushes them into the attached
//! scopes' buffers (whose delay implements the late-drop rule). Wire it
//! to a `gel` main loop with [`attach_server`].

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use gel::{Continue, IoPoll, MainLoop, SourceId, TimeDelta, TimeStamp};
use gscope::{ScopeError, SharedScope, SigConfig, SigSource, StatsExport, Tuple, TupleSource};
use gstore::{Store, StoreReader};
use gtel::{Counter, Gauge, Registry};
use parking_lot::Mutex;

/// Counters describing server activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Clients that disconnected (or errored).
    pub disconnects: u64,
    /// Tuples parsed and delivered to scope buffers.
    pub tuples_received: u64,
    /// Lines that failed to parse (skipped).
    pub parse_errors: u64,
    /// Tuples rejected by every attached scope (late or no scope).
    pub tuples_dropped: u64,
    /// Tuples teed into the attached store.
    pub tuples_stored: u64,
    /// Tuples the store rejected as time-regressive — the storage
    /// analogue of the buffer's late-drop rule (§4.4).
    pub store_drops: u64,
    /// Store write/read failures (the server keeps serving).
    pub store_errors: u64,
    /// Tuples replayed out of the store by [`ScopeServer::catch_up`].
    pub catch_up_tuples: u64,
}

impl StatsExport for ServerStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.connections as f64, "net.server.connections"),
            Tuple::new(now, self.disconnects as f64, "net.server.disconnects"),
            Tuple::new(now, self.tuples_received as f64, "net.server.tuples_in"),
            Tuple::new(now, self.parse_errors as f64, "net.server.parse_errors"),
            Tuple::new(now, self.tuples_dropped as f64, "net.server.tuples_dropped"),
            Tuple::new(now, self.tuples_stored as f64, "net.server.tuples_stored"),
            Tuple::new(now, self.store_drops as f64, "net.server.store_drops"),
            Tuple::new(now, self.store_errors as f64, "net.server.store_errors"),
            Tuple::new(
                now,
                self.catch_up_tuples as f64,
                "net.server.catch_up_tuples",
            ),
        ]
    }
}

/// Cached gtel handles for one [`ScopeServer`].
#[derive(Debug)]
struct ServerTelemetry {
    registry: Arc<Registry>,
    /// `net.server.connections` — connections accepted.
    connections: Arc<Counter>,
    /// `net.server.disconnects` — clients lost.
    disconnects: Arc<Counter>,
    /// `net.server.tuples_in` — tuples parsed and delivered.
    tuples_in: Arc<Counter>,
    /// `net.server.parse_errors` — undecodable lines skipped.
    parse_errors: Arc<Counter>,
    /// `net.server.tuples_dropped` — tuples every scope rejected.
    tuples_dropped: Arc<Counter>,
    /// `net.server.clients` — currently connected clients.
    clients: Arc<Gauge>,
    /// `net.server.tuples_stored` — tuples teed into the store.
    tuples_stored: Arc<Counter>,
    /// `net.server.store_drops` — time-regressive tuples not stored.
    store_drops: Arc<Counter>,
    /// `net.server.store_errors` — store failures survived.
    store_errors: Arc<Counter>,
    /// `net.server.catch_up_tuples` — history replayed to scopes.
    catch_up: Arc<Counter>,
}

impl ServerTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        ServerTelemetry {
            connections: registry.counter("net.server.connections"),
            disconnects: registry.counter("net.server.disconnects"),
            tuples_in: registry.counter("net.server.tuples_in"),
            parse_errors: registry.counter("net.server.parse_errors"),
            tuples_dropped: registry.counter("net.server.tuples_dropped"),
            clients: registry.gauge("net.server.clients"),
            tuples_stored: registry.counter("net.server.tuples_stored"),
            store_drops: registry.counter("net.server.store_drops"),
            store_errors: registry.counter("net.server.store_errors"),
            catch_up: registry.counter("net.server.catch_up_tuples"),
            registry,
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        ServerTelemetry::new(Registry::shared())
    }
}

struct ClientConn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Partial line carried over between reads.
    partial: Vec<u8>,
}

/// A non-blocking tuple-stream server feeding one or more scopes.
pub struct ScopeServer {
    listener: TcpListener,
    clients: Vec<ClientConn>,
    scopes: Vec<SharedScope>,
    /// Create missing `BUFFER` signals on attached scopes for new names.
    auto_register: bool,
    /// Optional persistent tee: every live tuple is appended here, and
    /// [`ScopeServer::catch_up`] replays recent history out of it.
    store: Option<Store>,
    stats: ServerStats,
    telemetry: ServerTelemetry,
}

impl ScopeServer {
    /// Binds a server socket (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ScopeServer {
            listener,
            clients: Vec::new(),
            scopes: Vec::new(),
            auto_register: true,
            store: None,
            stats: ServerStats::default(),
            telemetry: ServerTelemetry::default(),
        })
    }

    /// The registry this server's `net.server.*` metrics live in.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// Re-homes the server's metrics into `registry` (e.g. a registry
    /// shared with the scope and main loop for one combined snapshot).
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = ServerTelemetry::new(registry);
    }

    /// The bound address (for handing to clients).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Attaches a scope: received tuples are pushed into its buffer.
    pub fn add_scope(&mut self, scope: SharedScope) {
        self.scopes.push(scope);
    }

    /// Attaches a scope and immediately replays the last `window` of
    /// stored history into every attached scope, so its display starts
    /// populated instead of blank. No-op without a store. The window
    /// must fit inside the scopes' delay, or the buffers' late-drop
    /// rule (§4.4) discards the replayed history again.
    ///
    /// Returns the number of tuples replayed.
    pub fn add_scope_with_catch_up(&mut self, scope: SharedScope, window: TimeDelta) -> u64 {
        self.scopes.push(scope);
        self.catch_up(window)
    }

    /// Installs a persistent store: from now on every delivered tuple
    /// is also appended to it (the tee), and [`ScopeServer::catch_up`]
    /// can replay recent history. Replaces any previous store.
    pub fn set_store(&mut self, store: Store) {
        self.store = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Detaches and returns the store (flush/close is the caller's).
    pub fn take_store(&mut self) -> Option<Store> {
        self.store.take()
    }

    /// Flushes the store tee so readers (and a crash) see everything
    /// received so far. Returns false (and counts a store error) on
    /// failure; the server keeps running either way.
    pub fn flush_store(&mut self) -> bool {
        match self.store.as_mut().map(Store::flush) {
            None | Some(Ok(())) => true,
            Some(Err(_)) => {
                self.stats.store_errors += 1;
                self.telemetry.store_errors.inc();
                false
            }
        }
    }

    /// Replays the last `window` of stored history (relative to the
    /// newest stored frame) into the attached scopes. The replay reads
    /// the store through its seek index, so catch-up cost scales with
    /// the window, not with the total history size.
    ///
    /// Returns the number of tuples replayed (0 without a store).
    pub fn catch_up(&mut self, window: TimeDelta) -> u64 {
        let Some(store) = self.store.as_mut() else {
            return 0;
        };
        if store.flush().is_err() {
            self.stats.store_errors += 1;
            self.telemetry.store_errors.inc();
            return 0;
        }
        let Some(newest) = store.last_time() else {
            return 0; // empty store: nothing to catch up on
        };
        let from = newest.saturating_sub(window);
        let dir = store.dir().to_path_buf();
        let mut reader = match StoreReader::open(&dir).and_then(|mut r| {
            r.seek(from)?;
            Ok(r)
        }) {
            Ok(r) => r,
            Err(_) => {
                self.stats.store_errors += 1;
                self.telemetry.store_errors.inc();
                return 0;
            }
        };
        let mut replayed = 0u64;
        loop {
            match reader.next_tuple() {
                Ok(Some(t)) => {
                    self.push_to_scopes(&t);
                    replayed += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    self.stats.store_errors += 1;
                    self.telemetry.store_errors.inc();
                    break;
                }
            }
        }
        self.stats.catch_up_tuples += replayed;
        self.telemetry.catch_up.add(replayed);
        replayed
    }

    /// Enables or disables automatic creation of `BUFFER` signals for
    /// unseen signal names (default on).
    pub fn set_auto_register(&mut self, on: bool) {
        self.auto_register = on;
    }

    /// Returns server statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn accept_pending(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.clients.push(ClientConn {
                        stream,
                        peer,
                        partial: Vec::new(),
                    });
                    self.stats.connections += 1;
                    self.telemetry.connections.inc();
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    /// Pushes one tuple into every attached scope's buffer (creating
    /// the `BUFFER` signal first when auto-registration is on).
    fn push_to_scopes(&self, tuple: &Tuple) -> bool {
        let mut accepted = false;
        for scope in &self.scopes {
            let mut guard = scope.lock();
            if self.auto_register {
                let name = tuple.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
                if guard.signal(name).is_none() {
                    // A concurrent registration shows up as a duplicate;
                    // either way the signal exists afterwards.
                    let _ = guard.add_signal(name, SigSource::Buffer, SigConfig::default());
                }
            }
            if guard.buffer().push(tuple.clone()) {
                accepted = true;
            }
        }
        accepted
    }

    fn deliver(&mut self, tuple: Tuple) {
        if let Some(store) = self.store.as_mut() {
            match store.append(tuple.time, tuple.value, tuple.name.as_deref()) {
                Ok(()) => {
                    self.stats.tuples_stored += 1;
                    self.telemetry.tuples_stored.inc();
                }
                Err(ScopeError::TupleOrder { .. }) => {
                    // Clients interleave; a tuple older than the store's
                    // watermark is dropped from storage only, mirroring
                    // the buffer's late-drop rule.
                    self.stats.store_drops += 1;
                    self.telemetry.store_drops.inc();
                }
                Err(_) => {
                    self.stats.store_errors += 1;
                    self.telemetry.store_errors.inc();
                }
            }
        }
        let accepted = self.push_to_scopes(&tuple);
        self.stats.tuples_received += 1;
        self.telemetry.tuples_in.inc();
        if !accepted {
            self.stats.tuples_dropped += 1;
            self.telemetry.tuples_dropped.inc();
        }
    }

    fn read_clients(&mut self) -> bool {
        let mut any = false;
        let mut buf = [0u8; 4096];
        let mut i = 0;
        while i < self.clients.len() {
            let mut dead = false;
            loop {
                match self.clients[i].stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        self.clients[i].partial.extend_from_slice(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            // Parse complete lines straight out of the accumulated
            // bytes: names borrow the receive buffer and are interned
            // on delivery, so steady-state ingestion allocates nothing
            // per tuple. The trailing partial line stays buffered.
            let mut pending = std::mem::take(&mut self.clients[i].partial);
            let mut consumed = 0;
            let mut lineno = 0;
            while let Some(pos) = pending[consumed..].iter().position(|&b| b == b'\n') {
                let line = &pending[consumed..consumed + pos];
                consumed += pos + 1;
                lineno += 1;
                let parsed = std::str::from_utf8(line).ok().and_then(|s| {
                    let trimmed = s.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        return Some(None);
                    }
                    Tuple::parse_raw(trimmed, lineno).ok().map(Some)
                });
                match parsed {
                    Some(Some(raw)) => self.deliver(raw.to_tuple()),
                    Some(None) => {} // blank or comment line
                    None => {
                        self.stats.parse_errors += 1;
                        self.telemetry.parse_errors.inc();
                    }
                }
            }
            pending.drain(..consumed);
            self.clients[i].partial = pending;
            if dead {
                let _ = self.clients[i].peer;
                self.clients.swap_remove(i);
                self.stats.disconnects += 1;
                self.telemetry.disconnects.inc();
                any = true;
            } else {
                i += 1;
            }
        }
        any
    }

    /// Accepts pending connections and drains readable sockets.
    ///
    /// Returns [`IoPoll::Worked`] if anything happened — the shape a
    /// `gel` I/O watch expects.
    pub fn poll(&mut self) -> IoPoll {
        let begin_ns = gtel::fast_now_ns();
        let mut any = self.accept_pending();
        any |= self.read_clients();
        self.telemetry.clients.set_count(self.clients.len());
        if any {
            // Recorded only when work happened: idle polls run every
            // loop iteration and would drown the span ring.
            gtel::complete_span("net.server.poll", self.stats.tuples_received, begin_ns);
            IoPoll::Worked
        } else {
            IoPoll::Idle
        }
    }
}

/// Installs a shared server as an I/O watch on a main loop — the
/// single-threaded I/O-driven usage of §4.4.
pub fn attach_server(server: &Arc<Mutex<ScopeServer>>, ml: &mut MainLoop) -> SourceId {
    let server = Arc::clone(server);
    ml.add_io_watch(Box::new(move || server.lock().poll()))
}

/// Installs a shared client's pump as an I/O watch on a main loop.
///
/// The watch removes itself when the connection dies.
pub fn attach_client(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
) -> SourceId {
    let client = Arc::clone(client);
    ml.add_io_watch(Box::new(move || client.lock().pump()))
}

/// Convenience: installs a periodic timeout that samples `f` every
/// `period` and streams the value as `name` — a remote sensor in a few
/// lines.
pub fn stream_periodic<F>(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
    name: &str,
    period: TimeDelta,
    mut f: F,
) -> SourceId
where
    F: FnMut() -> f64 + Send + 'static,
{
    let client = Arc::clone(client);
    let name = name.to_owned();
    ml.add_timeout(
        period,
        Box::new(move |tick| {
            let mut c = client.lock();
            if c.is_closed() {
                return Continue::Remove;
            }
            c.send_at(tick.now, &name, f());
            c.pump();
            Continue::Keep
        }),
    )
}
