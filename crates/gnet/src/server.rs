//! The gscope server library (§4.4).
//!
//! "The server receives data from one or more clients asynchronously
//! and buffers the data. It then displays these BUFFER signals to one
//! or more scopes with a user-specified delay. Data arriving at the
//! server after this delay is not buffered but dropped immediately."
//!
//! The server is single-threaded and I/O-driven: [`ScopeServer::poll`]
//! accepts pending connections and reads whatever every client socket
//! has, parses complete tuple lines, and pushes them into the attached
//! scopes' buffers (whose delay implements the late-drop rule). Wire it
//! to a `gel` main loop with [`attach_server`].

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use gel::{Continue, IoPoll, MainLoop, SourceId, TimeDelta, TimeStamp};
use gscope::{SharedScope, SigConfig, SigSource, StatsExport, Tuple};
use gtel::{Counter, Gauge, Registry};
use parking_lot::Mutex;

/// Counters describing server activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Clients that disconnected (or errored).
    pub disconnects: u64,
    /// Tuples parsed and delivered to scope buffers.
    pub tuples_received: u64,
    /// Lines that failed to parse (skipped).
    pub parse_errors: u64,
    /// Tuples rejected by every attached scope (late or no scope).
    pub tuples_dropped: u64,
}

impl StatsExport for ServerStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.connections as f64, "net.server.connections"),
            Tuple::new(now, self.disconnects as f64, "net.server.disconnects"),
            Tuple::new(now, self.tuples_received as f64, "net.server.tuples_in"),
            Tuple::new(now, self.parse_errors as f64, "net.server.parse_errors"),
            Tuple::new(now, self.tuples_dropped as f64, "net.server.tuples_dropped"),
        ]
    }
}

/// Cached gtel handles for one [`ScopeServer`].
#[derive(Debug)]
struct ServerTelemetry {
    registry: Arc<Registry>,
    /// `net.server.connections` — connections accepted.
    connections: Arc<Counter>,
    /// `net.server.disconnects` — clients lost.
    disconnects: Arc<Counter>,
    /// `net.server.tuples_in` — tuples parsed and delivered.
    tuples_in: Arc<Counter>,
    /// `net.server.parse_errors` — undecodable lines skipped.
    parse_errors: Arc<Counter>,
    /// `net.server.tuples_dropped` — tuples every scope rejected.
    tuples_dropped: Arc<Counter>,
    /// `net.server.clients` — currently connected clients.
    clients: Arc<Gauge>,
}

impl ServerTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        ServerTelemetry {
            connections: registry.counter("net.server.connections"),
            disconnects: registry.counter("net.server.disconnects"),
            tuples_in: registry.counter("net.server.tuples_in"),
            parse_errors: registry.counter("net.server.parse_errors"),
            tuples_dropped: registry.counter("net.server.tuples_dropped"),
            clients: registry.gauge("net.server.clients"),
            registry,
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        ServerTelemetry::new(Registry::shared())
    }
}

struct ClientConn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Partial line carried over between reads.
    partial: Vec<u8>,
}

/// A non-blocking tuple-stream server feeding one or more scopes.
pub struct ScopeServer {
    listener: TcpListener,
    clients: Vec<ClientConn>,
    scopes: Vec<SharedScope>,
    /// Create missing `BUFFER` signals on attached scopes for new names.
    auto_register: bool,
    stats: ServerStats,
    telemetry: ServerTelemetry,
}

impl ScopeServer {
    /// Binds a server socket (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ScopeServer {
            listener,
            clients: Vec::new(),
            scopes: Vec::new(),
            auto_register: true,
            stats: ServerStats::default(),
            telemetry: ServerTelemetry::default(),
        })
    }

    /// The registry this server's `net.server.*` metrics live in.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// Re-homes the server's metrics into `registry` (e.g. a registry
    /// shared with the scope and main loop for one combined snapshot).
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = ServerTelemetry::new(registry);
    }

    /// The bound address (for handing to clients).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Attaches a scope: received tuples are pushed into its buffer.
    pub fn add_scope(&mut self, scope: SharedScope) {
        self.scopes.push(scope);
    }

    /// Enables or disables automatic creation of `BUFFER` signals for
    /// unseen signal names (default on).
    pub fn set_auto_register(&mut self, on: bool) {
        self.auto_register = on;
    }

    /// Returns server statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn accept_pending(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.clients.push(ClientConn {
                        stream,
                        peer,
                        partial: Vec::new(),
                    });
                    self.stats.connections += 1;
                    self.telemetry.connections.inc();
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    fn deliver(&mut self, tuple: Tuple) {
        let mut accepted = false;
        for scope in &self.scopes {
            let mut guard = scope.lock();
            if self.auto_register {
                let name = tuple.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
                if guard.signal(name).is_none() {
                    // A concurrent registration shows up as a duplicate;
                    // either way the signal exists afterwards.
                    let _ = guard.add_signal(name, SigSource::Buffer, SigConfig::default());
                }
            }
            if guard.buffer().push(tuple.clone()) {
                accepted = true;
            }
        }
        self.stats.tuples_received += 1;
        self.telemetry.tuples_in.inc();
        if !accepted {
            self.stats.tuples_dropped += 1;
            self.telemetry.tuples_dropped.inc();
        }
    }

    fn read_clients(&mut self) -> bool {
        let mut any = false;
        let mut buf = [0u8; 4096];
        let mut i = 0;
        while i < self.clients.len() {
            let mut dead = false;
            loop {
                match self.clients[i].stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        self.clients[i].partial.extend_from_slice(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            // Parse complete lines straight out of the accumulated
            // bytes: names borrow the receive buffer and are interned
            // on delivery, so steady-state ingestion allocates nothing
            // per tuple. The trailing partial line stays buffered.
            let mut pending = std::mem::take(&mut self.clients[i].partial);
            let mut consumed = 0;
            let mut lineno = 0;
            while let Some(pos) = pending[consumed..].iter().position(|&b| b == b'\n') {
                let line = &pending[consumed..consumed + pos];
                consumed += pos + 1;
                lineno += 1;
                let parsed = std::str::from_utf8(line).ok().and_then(|s| {
                    let trimmed = s.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        return Some(None);
                    }
                    Tuple::parse_raw(trimmed, lineno).ok().map(Some)
                });
                match parsed {
                    Some(Some(raw)) => self.deliver(raw.to_tuple()),
                    Some(None) => {} // blank or comment line
                    None => {
                        self.stats.parse_errors += 1;
                        self.telemetry.parse_errors.inc();
                    }
                }
            }
            pending.drain(..consumed);
            self.clients[i].partial = pending;
            if dead {
                let _ = self.clients[i].peer;
                self.clients.swap_remove(i);
                self.stats.disconnects += 1;
                self.telemetry.disconnects.inc();
                any = true;
            } else {
                i += 1;
            }
        }
        any
    }

    /// Accepts pending connections and drains readable sockets.
    ///
    /// Returns [`IoPoll::Worked`] if anything happened — the shape a
    /// `gel` I/O watch expects.
    pub fn poll(&mut self) -> IoPoll {
        let mut any = self.accept_pending();
        any |= self.read_clients();
        self.telemetry.clients.set_count(self.clients.len());
        if any {
            IoPoll::Worked
        } else {
            IoPoll::Idle
        }
    }
}

/// Installs a shared server as an I/O watch on a main loop — the
/// single-threaded I/O-driven usage of §4.4.
pub fn attach_server(server: &Arc<Mutex<ScopeServer>>, ml: &mut MainLoop) -> SourceId {
    let server = Arc::clone(server);
    ml.add_io_watch(Box::new(move || server.lock().poll()))
}

/// Installs a shared client's pump as an I/O watch on a main loop.
///
/// The watch removes itself when the connection dies.
pub fn attach_client(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
) -> SourceId {
    let client = Arc::clone(client);
    ml.add_io_watch(Box::new(move || client.lock().pump()))
}

/// Convenience: installs a periodic timeout that samples `f` every
/// `period` and streams the value as `name` — a remote sensor in a few
/// lines.
pub fn stream_periodic<F>(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
    name: &str,
    period: TimeDelta,
    mut f: F,
) -> SourceId
where
    F: FnMut() -> f64 + Send + 'static,
{
    let client = Arc::clone(client);
    let name = name.to_owned();
    ml.add_timeout(
        period,
        Box::new(move |tick| {
            let mut c = client.lock();
            if c.is_closed() {
                return Continue::Remove;
            }
            c.send_at(tick.now, &name, f());
            c.pump();
            Continue::Keep
        }),
    )
}
