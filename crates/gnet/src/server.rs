//! The gscope server library (§4.4), scaled out.
//!
//! "The server receives data from one or more clients asynchronously
//! and buffers the data. It then displays these BUFFER signals to one
//! or more scopes with a user-specified delay. Data arriving at the
//! server after this delay is not buffered but dropped immediately."
//!
//! [`ScopeServer`] is now a facade over a sharded streaming hub (see
//! [`crate::shard`]): the acceptor pins each connection to one of N
//! per-core shards, and each shard runs its own readiness-driven
//! non-blocking loop. Two ways to drive it:
//!
//! * **Inline** — [`ScopeServer::poll`] accepts and cycles every shard
//!   on the caller's thread, exactly like the old single-threaded
//!   server (and [`attach_server`] wires the acceptor and each shard
//!   to a `gel` main loop as *independent* watches, so no lock is held
//!   across the whole poll).
//! * **Threaded** — [`ScopeServer::spawn_shards`] starts one thread
//!   per shard plus an acceptor; each shard blocks in its own `epoll`
//!   wait. This is the thread-per-core mode the 10k-client benchmark
//!   runs.
//!
//! Clients may speak the §3.3 text protocol or negotiate the binary
//! frame protocol ([`crate::wire`]); subscribers under backpressure
//! are demoted to store-backed catch-up instead of growing an
//! unbounded queue.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use gel::{Continue, IoPoll, MainLoop, SourceId, TimeDelta, TimeStamp};
use gscope::{StatsExport, Tuple};
use gstore::Store;
use gtel::Registry;
use parking_lot::Mutex;

use crate::shard::{catch_up_scopes, cycle, HubShared, ServerTelemetry, Shard};
pub use crate::shard::{ClientInfo, HubConfig};
use crate::wire::StreamConn;
use gscope::SharedScope;

/// Counters describing server activity, aggregated across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Clients that disconnected (or errored).
    pub disconnects: u64,
    /// Tuples parsed and delivered to scope buffers.
    pub tuples_received: u64,
    /// Lines that failed to parse (skipped).
    pub parse_errors: u64,
    /// Protocol violations: broken frames, bad commands, runaway
    /// unframed input. Frame-level violations kill the connection.
    pub protocol_errors: u64,
    /// Tuples rejected by every attached scope (late or no scope).
    pub tuples_dropped: u64,
    /// Tuples teed into the attached store.
    pub tuples_stored: u64,
    /// Tuples the store rejected as time-regressive — the storage
    /// analogue of the buffer's late-drop rule (§4.4).
    pub store_drops: u64,
    /// Store write/read failures (the server keeps serving).
    pub store_errors: u64,
    /// Tuples replayed out of the store — by [`ScopeServer::catch_up`]
    /// or to backpressured subscribers catching up.
    pub catch_up_tuples: u64,
    /// Tuples queued out to live subscribers.
    pub tuples_out: u64,
    /// Bytes written to subscriber sockets.
    pub bytes_out: u64,
    /// Output-queue overflow (shed) events.
    pub shed_events: u64,
    /// Tuples discarded by those sheds (queued but never written) —
    /// the term that makes per-client output accounting reconcile:
    /// `tuples_out - tuples_shed - queue_tuples` is exactly what was
    /// written toward subscribers.
    pub tuples_shed: u64,
    /// Subscribers demoted to store-backed catch-up.
    pub catch_ups_entered: u64,
    /// Catch-ups that finished and rejoined the live feed.
    pub catch_ups_completed: u64,
}

impl StatsExport for ServerStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.connections as f64, "net.server.connections"),
            Tuple::new(now, self.disconnects as f64, "net.server.disconnects"),
            Tuple::new(now, self.tuples_received as f64, "net.server.tuples_in"),
            Tuple::new(now, self.parse_errors as f64, "net.server.parse_errors"),
            Tuple::new(
                now,
                self.protocol_errors as f64,
                "net.server.protocol_errors",
            ),
            Tuple::new(now, self.tuples_dropped as f64, "net.server.tuples_dropped"),
            Tuple::new(now, self.tuples_stored as f64, "net.server.tuples_stored"),
            Tuple::new(now, self.store_drops as f64, "net.server.store_drops"),
            Tuple::new(now, self.store_errors as f64, "net.server.store_errors"),
            Tuple::new(
                now,
                self.catch_up_tuples as f64,
                "net.server.catch_up_tuples",
            ),
            Tuple::new(now, self.tuples_out as f64, "net.server.tuples_out"),
            Tuple::new(now, self.bytes_out as f64, "net.server.bytes_out"),
            Tuple::new(now, self.shed_events as f64, "net.server.sheds"),
            Tuple::new(now, self.tuples_shed as f64, "net.server.tuples_shed"),
            Tuple::new(now, self.catch_ups_entered as f64, "net.server.catch_ups"),
            Tuple::new(
                now,
                self.catch_ups_completed as f64,
                "net.server.catch_ups_completed",
            ),
        ]
    }
}

/// A sharded, non-blocking tuple-stream hub feeding one or more scopes
/// (and optionally a persistent store), serving text and binary
/// subscribers with per-client backpressure.
pub struct ScopeServer {
    listener: Arc<TcpListener>,
    shared: Arc<HubShared>,
    shards: Vec<Arc<Shard>>,
    running: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ScopeServer {
    /// Binds a server socket (use port 0 for an ephemeral port) with
    /// default [`HubConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        ScopeServer::with_config(addr, HubConfig::default())
    }

    /// Binds a server socket with explicit hub tuning.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn with_config(addr: impl ToSocketAddrs, cfg: HubConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(HubShared::new(cfg));
        let n = cfg.effective_shards();
        let shards: Vec<Arc<Shard>> = (0..n).map(|id| Arc::new(Shard::new(id))).collect();
        shared
            .shards
            .set(shards.clone())
            .unwrap_or_else(|_| unreachable!("fresh hub"));
        Ok(ScopeServer {
            listener: Arc::new(listener),
            shared,
            shards,
            running: Arc::new(AtomicBool::new(false)),
            threads: Vec::new(),
        })
    }

    /// The registry this server's `net.server.*` metrics live in.
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.tel.read().registry)
    }

    /// Re-homes the server's metrics into `registry` (e.g. a registry
    /// shared with the scope and main loop for one combined snapshot).
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        *self.shared.tel.write() = ServerTelemetry::new(registry);
    }

    /// The bound address (for handing to clients).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of shards serving this hub.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Attaches a scope: received tuples are pushed into its buffer.
    pub fn add_scope(&mut self, scope: SharedScope) {
        self.shared.scopes.write().push(scope);
    }

    /// Attaches a scope and immediately replays the last `window` of
    /// stored history into every attached scope, so its display starts
    /// populated instead of blank. No-op without a store. The window
    /// must fit inside the scopes' delay, or the buffers' late-drop
    /// rule (§4.4) discards the replayed history again.
    ///
    /// Returns the number of tuples replayed.
    pub fn add_scope_with_catch_up(&mut self, scope: SharedScope, window: TimeDelta) -> u64 {
        self.shared.scopes.write().push(scope);
        catch_up_scopes(&self.shared, window)
    }

    /// Installs a persistent store: from now on every delivered tuple
    /// is also appended to it (the tee), [`ScopeServer::catch_up`] can
    /// replay recent history, and backpressured subscribers catch up
    /// from it instead of dropping data. Replaces any previous store.
    pub fn set_store(&mut self, store: Store) {
        *self.shared.store.lock() = Some(store);
        self.shared.store_present.store(true, Ordering::Release);
    }

    /// Runs `f` against the attached store, if any.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut Store) -> R) -> Option<R> {
        self.shared.store.lock().as_mut().map(f)
    }

    /// Detaches and returns the store (flush/close is the caller's).
    pub fn take_store(&mut self) -> Option<Store> {
        self.shared.store_present.store(false, Ordering::Release);
        self.shared.store_dirty.store(false, Ordering::Release);
        self.shared.store.lock().take()
    }

    /// Flushes the store tee so readers (and a crash) see everything
    /// received so far. Returns false (and counts a store error) on
    /// failure; the server keeps running either way.
    pub fn flush_store(&mut self) -> bool {
        let ok = {
            let mut guard = self.shared.store.lock();
            match guard.as_mut().map(Store::flush) {
                None | Some(Ok(())) => true,
                Some(Err(_)) => false,
            }
        };
        if ok {
            self.shared.store_dirty.store(false, Ordering::Release);
        } else {
            self.shared
                .counters
                .store_errors
                .fetch_add(1, Ordering::Relaxed);
            self.shared.tel.read().store_errors.inc();
        }
        ok
    }

    /// Replays the last `window` of stored history (relative to the
    /// newest stored frame) into the attached scopes. The replay reads
    /// the store through its seek index, so catch-up cost scales with
    /// the window, not with the total history size.
    ///
    /// Returns the number of tuples replayed (0 without a store).
    pub fn catch_up(&mut self, window: TimeDelta) -> u64 {
        catch_up_scopes(&self.shared, window)
    }

    /// Enables or disables automatic creation of `BUFFER` signals for
    /// unseen signal names (default on).
    pub fn set_auto_register(&mut self, on: bool) {
        self.shared.auto_register.store(on, Ordering::Relaxed);
    }

    /// Returns server statistics, aggregated across all shards.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            connections: c.connections.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            tuples_received: c.tuples_received.load(Ordering::Relaxed),
            parse_errors: c.parse_errors.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            tuples_dropped: c.tuples_dropped.load(Ordering::Relaxed),
            tuples_stored: c.tuples_stored.load(Ordering::Relaxed),
            store_drops: c.store_drops.load(Ordering::Relaxed),
            store_errors: c.store_errors.load(Ordering::Relaxed),
            catch_up_tuples: c.catch_up_tuples.load(Ordering::Relaxed),
            tuples_out: c.tuples_out.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            shed_events: c.shed_events.load(Ordering::Relaxed),
            tuples_shed: c.tuples_shed.load(Ordering::Relaxed),
            catch_ups_entered: c.catch_ups_entered.load(Ordering::Relaxed),
            catch_ups_completed: c.catch_ups_completed.load(Ordering::Relaxed),
        }
    }

    /// Number of connected clients across all shards.
    pub fn client_count(&self) -> usize {
        self.shared.client_count.load(Ordering::Relaxed)
    }

    /// Per-client counters for every connection, across all shards —
    /// the view that makes one misbehaving client stand out from the
    /// aggregate stats.
    pub fn client_stats(&self) -> Vec<ClientInfo> {
        self.shards.iter().flat_map(|s| s.client_stats()).collect()
    }

    /// Hands a pre-established connection (e.g. a `netsim` shaped
    /// link) to the hub; it is pinned to a shard like an accepted
    /// socket.
    pub fn add_conn(&self, conn: Box<dyn StreamConn>) {
        self.shared.pin_connection(conn);
    }

    fn accept_pending(&self) -> bool {
        accept_into(&self.listener, &self.shared)
    }

    /// Accepts pending connections and cycles every shard once on the
    /// calling thread (inline mode).
    ///
    /// Returns [`IoPoll::Worked`] if anything happened — the shape a
    /// `gel` I/O watch expects.
    pub fn poll(&mut self) -> IoPoll {
        let mut any = self.accept_pending();
        for shard in &self.shards {
            any |= cycle(shard, &self.shared, 0);
        }
        if any {
            IoPoll::Worked
        } else {
            IoPoll::Idle
        }
    }

    /// Starts thread-per-core mode: one thread per shard (each parked
    /// in its own `epoll` wait) plus an acceptor thread. Idempotent.
    /// Threads stop when the server drops. Inline [`ScopeServer::poll`]
    /// remains safe to call concurrently (shards are mutex-protected)
    /// but is pointless once threads run.
    pub fn spawn_shards(&mut self) {
        if self.running.swap(true, Ordering::AcqRel) {
            return;
        }
        for shard in &self.shards {
            let shard = Arc::clone(shard);
            let shared = Arc::clone(&self.shared);
            let running = Arc::clone(&self.running);
            self.threads.push(
                std::thread::Builder::new()
                    .name(format!("gnet-shard-{}", shard.id))
                    .spawn(move || {
                        let pacing = std::time::Duration::from_micros(shared.cfg.scan_pacing_us);
                        while running.load(Ordering::Acquire) {
                            let worked = cycle(&shard, &shared, 1);
                            if !worked {
                                // Without a kernel poller the cycle
                                // returns immediately; don't spin.
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            } else if shard.scan_mode.load(Ordering::Relaxed) && !pacing.is_zero() {
                                // Hint-scanned clients have no kernel
                                // wakeup: pause so arrivals batch
                                // instead of re-scanning immediately.
                                std::thread::sleep(pacing);
                            }
                        }
                    })
                    .expect("spawn shard thread"),
            );
        }
        let listener = Arc::clone(&self.listener);
        let shared = Arc::clone(&self.shared);
        let running = Arc::clone(&self.running);
        self.threads.push(
            std::thread::Builder::new()
                .name("gnet-acceptor".to_owned())
                .spawn(move || {
                    while running.load(Ordering::Acquire) {
                        if !accept_into(&listener, &shared) {
                            std::thread::sleep(std::time::Duration::from_micros(500));
                        }
                    }
                })
                .expect("spawn acceptor thread"),
        );
    }

    /// True when [`ScopeServer::spawn_shards`] threads are running.
    pub fn threaded(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }
}

impl Drop for ScopeServer {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Installs a shared server on a main loop: one I/O watch per shard
/// plus an acceptor watch, each locking only its own shard's state —
/// no lock is held across the whole poll, so several loop workers (or
/// a threaded loop) can drive different shards concurrently.
///
/// Returns the acceptor's [`SourceId`] (removing it stops new
/// connections; shard watches stay).
pub fn attach_server(server: &Arc<Mutex<ScopeServer>>, ml: &mut MainLoop) -> SourceId {
    let (listener, shared, shards) = {
        let guard = server.lock();
        (
            Arc::clone(&guard.listener),
            Arc::clone(&guard.shared),
            guard.shards.clone(),
        )
    };
    // Acceptor first: connections accepted this iteration are adopted
    // by the shard watches dispatched right after it.
    let acceptor = {
        let shared = Arc::clone(&shared);
        ml.add_io_watch(Box::new(move || {
            if accept_into(&listener, &shared) {
                IoPoll::Worked
            } else {
                IoPoll::Idle
            }
        }))
    };
    for shard in shards {
        let shared = Arc::clone(&shared);
        ml.add_io_watch(Box::new(move || {
            if cycle(&shard, &shared, 0) {
                IoPoll::Worked
            } else {
                IoPoll::Idle
            }
        }));
    }
    acceptor
}

/// Drains the listener into the hub, pinning each connection to a
/// shard. Returns true when any connection was accepted (recorded as
/// a `net.server.accept` span so accept cost shows up in traces).
fn accept_into(listener: &TcpListener, shared: &HubShared) -> bool {
    let begin_ns = gtel::fast_now_ns();
    let mut accepted = 0u64;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                shared.pin_connection(Box::new(stream));
                accepted += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    if accepted > 0 {
        gtel::complete_span("net.server.accept", accepted, begin_ns);
    }
    accepted > 0
}

/// Installs a shared client's pump as an I/O watch on a main loop.
///
/// The watch removes itself when the connection dies.
pub fn attach_client(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
) -> SourceId {
    let client = Arc::clone(client);
    ml.add_io_watch(Box::new(move || client.lock().pump()))
}

/// Convenience: installs a periodic timeout that samples `f` every
/// `period` and streams the value as `name` — a remote sensor in a few
/// lines.
pub fn stream_periodic<F>(
    client: &Arc<Mutex<crate::client::ScopeClient>>,
    ml: &mut MainLoop,
    name: &str,
    period: TimeDelta,
    mut f: F,
) -> SourceId
where
    F: FnMut() -> f64 + Send + 'static,
{
    let client = Arc::clone(client);
    let name = name.to_owned();
    ml.add_timeout(
        period,
        Box::new(move |tick| {
            let mut c = client.lock();
            if c.is_closed() {
                return Continue::Remove;
            }
            c.send_at(tick.now, &name, f());
            c.pump();
            Continue::Keep
        }),
    )
}
